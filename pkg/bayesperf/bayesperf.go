// Package bayesperf is the embeddable public surface of the BayesPerf
// pipeline (Banerjee, Jha, Kalbarczyk, Iyer — ASPLOS'21): build a Session
// with functional options, hand it a Source of multiplexed counter
// intervals, and get back one unified Report with raw, windowed and
// corrected estimates plus derived-event posteriors.
//
//	spec, _ := bayesperf.LoadSpecFile("zen.json")
//	sess, _ := bayesperf.New(bayesperf.WithSpec(spec), bayesperf.WithDerived(true))
//	src := bayesperf.NewSimSource(sess.Catalog(), bayesperf.DefaultWorkload(100),
//		bayesperf.DefaultMuxConfig(), 42)
//	rep, _ := sess.RunStream(src)
//	ipc := rep.Stream.DerivedCorrected[0] // per-interval posterior series
//
// Catalogs are data: a uarch.Spec (re-exported here) describes events,
// counter constraints, invariants and derived metrics, round-trips through
// JSON, and resolves by name via the registry (RegisterCatalog /
// LookupCatalog / CatalogNames). Sample sources are pluggable: anything
// implementing Source — the simulated SimSource and the streaming
// measure.Sampler ship in-tree, and a live perf-event reader is a third
// implementation, not a rewrite.
package bayesperf

import (
	"fmt"
	"io"
	"math"
	"time"

	"bayesperf/internal/graph"
	"bayesperf/internal/measure"
	"bayesperf/internal/obs"
	"bayesperf/internal/rng"
	"bayesperf/internal/stream"
	"bayesperf/internal/uarch"
)

// Re-exported vocabulary types. These are aliases, so values flow freely
// between the facade and code that (inside this module) uses the internal
// packages directly.
type (
	// Catalog is one CPU's event model: events, counter-placement
	// constraints, invariants, derived metrics.
	Catalog = uarch.Catalog
	// EventID indexes an event within its catalog.
	EventID = uarch.EventID
	// Spec is the JSON-serializable data form of a Catalog.
	Spec = uarch.Spec
	// Interval is one sampling interval's live counter readings.
	Interval = measure.IntervalSample
	// Workload is a phase-structured simulated workload.
	Workload = measure.Workload
	// MuxConfig is the multiplexed-measurement observation model.
	MuxConfig = measure.MuxConfig
	// Trace is a ground-truth per-event time series.
	Trace = measure.Trace
	// Scheduler decides which event group owns the PMU each interval.
	Scheduler = measure.Scheduler
	// Sampler is the streaming simulated source (implements Source).
	Sampler = measure.Sampler
	// StreamResult is the stitched per-interval output of a streamed run.
	StreamResult = stream.Result
	// Config is the resolved engine configuration (window/hop/workers/
	// inference budget/observation model), as returned by Session.Config.
	Config = stream.Config
	// MetricsRegistry collects the pipeline's instrumentation (counters,
	// gauges, latency histograms, span traces) across every layer of a run;
	// see WithMetrics. Snapshot it with WritePrometheus/WriteJSON/Snapshot.
	MetricsRegistry = obs.Registry
	// MetricLabel is one constant label on a registered instrument.
	MetricLabel = obs.Label
)

// NewMetricsRegistry returns an empty metrics registry to hand to
// WithMetrics. One registry can serve any number of sessions and runs;
// instruments aggregate across them.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultWorkload returns the three-phase evaluation workload.
func DefaultWorkload(intervalsPerPhase int) Workload {
	return measure.DefaultWorkload(intervalsPerPhase)
}

// DefaultMuxConfig returns the paper's perf-stat-like observation model.
func DefaultMuxConfig() MuxConfig { return measure.DefaultMuxConfig() }

// LoadSpec decodes a catalog spec from JSON.
func LoadSpec(r io.Reader) (Spec, error) { return uarch.LoadSpec(r) }

// LoadSpecFile reads a catalog spec from a JSON file.
func LoadSpecFile(path string) (Spec, error) { return uarch.LoadSpecFile(path) }

// RegisterCatalog adds a named spec to the catalog registry.
func RegisterCatalog(name string, s Spec) error { return uarch.Register(name, s) }

// LookupCatalog returns a registered spec by name ("skylake", "power9", …).
func LookupCatalog(name string) (Spec, bool) { return uarch.Lookup(name) }

// CatalogNames returns every registered catalog name, sorted.
func CatalogNames() []string { return uarch.Names() }

// GroundTruth simulates the workload on the catalog's idealized core.
func GroundTruth(cat *Catalog, wl Workload, seed uint64) *Trace {
	return measure.GroundTruth(cat, wl, rng.New(seed))
}

// ValidateModels checks that every event in the catalog declares a
// ground-truth model over known primitives, so the simulated sources
// (NewSimSource, GroundTruth) cannot panic on it. Call it after loading a
// spec from untrusted input before building simulated sources; catalogs
// fed only by real measurement sources do not need models.
func ValidateModels(cat *Catalog) error { return measure.ValidateModels(cat) }

// SchedulerKind selects the multiplexing policy a Session assigns to
// sources that do not bring their own scheduler.
type SchedulerKind int

const (
	// RoundRobin cycles the event groups evenly — perf's default policy.
	RoundRobin SchedulerKind = iota
	// Adaptive steers multiplexing slots toward the groups whose events
	// the posterior is least certain about (the paper's §5 feedback loop).
	Adaptive
)

// Session owns the graph and stream plumbing of one correction pipeline
// configuration. Build it once with New and functional options, then call
// RunBatch or RunStream any number of times; each run is independent.
type Session struct {
	cat     *Catalog
	cfg     stream.Config
	sched   SchedulerKind
	derived bool
	obs     *obs.Registry
}

// Option configures a Session.
type Option func(*Session) error

// New builds a Session from the default configuration (24-interval windows
// sliding by 4, round-robin multiplexing, 1% measurement noise) and the
// given options.
func New(opts ...Option) (*Session, error) {
	s := &Session{cfg: stream.DefaultConfig()}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// WithCatalog binds the session to a catalog. Optional: a session without a
// catalog adopts the catalog of the first source it runs.
func WithCatalog(c *Catalog) Option {
	return func(s *Session) error {
		if c == nil {
			return fmt.Errorf("bayesperf: WithCatalog(nil)")
		}
		s.cat = c
		return nil
	}
}

// WithSpec binds the session to the catalog a spec describes.
func WithSpec(spec Spec) Option {
	return func(s *Session) error {
		cat, err := spec.Catalog()
		if err != nil {
			return err
		}
		s.cat = cat
		return nil
	}
}

// WithCatalogFile binds the session to a catalog loaded from a JSON spec
// file.
func WithCatalogFile(path string) Option {
	return func(s *Session) error {
		spec, err := uarch.LoadSpecFile(path)
		if err != nil {
			return err
		}
		return WithSpec(spec)(s)
	}
}

// WithWindow sets the streaming inference window length in intervals.
func WithWindow(n int) Option {
	return func(s *Session) error {
		s.cfg.Window = n
		return nil
	}
}

// WithHop sets the stride between consecutive streaming windows.
func WithHop(n int) Option {
	return func(s *Session) error {
		s.cfg.Hop = n
		return nil
	}
}

// WithWorkers sets the number of parallel EP engines (0 = all cores,
// capped at 8).
func WithWorkers(n int) Option {
	return func(s *Session) error {
		s.cfg.Workers = n
		return nil
	}
}

// WithBatch sets how many streaming windows each EP engine fuses into one
// compiled-plan inference call (0 = default 8). Batch width never changes
// a posterior bit — each lane runs the identical per-window arithmetic —
// it only amortizes the message-schedule walk across more windows.
func WithBatch(n int) Option {
	return func(s *Session) error {
		if n < 0 {
			return fmt.Errorf("bayesperf: negative batch width %d", n)
		}
		s.cfg.Batch = n
		return nil
	}
}

// WithCovariance switches derived-event posterior stds from the diagonal
// delta method to clique-covariance-aware propagation: input pairs that
// share a microarchitectural invariant contribute their factor-graph
// posterior correlation to the delta method's cross terms, in both batch
// reports and the streamed per-interval std series.
func WithCovariance(on bool) Option {
	return func(s *Session) error {
		s.cfg.Covariance = on
		return nil
	}
}

// WithFastMath switches inference (batch and stream) to the fused fast-math
// message schedule: per-relation cavity gathers collapse from O(k²) to O(k)
// and, on CPUs with AVX2+FMA, the sweep runs four windows per instruction.
// Posteriors agree with the exact kernel to a tight relative tolerance
// instead of bit for bit (the accuracy-delta tests pin the drift); results
// remain deterministic across worker counts and batch widths. Composes with
// WithCovariance.
func WithFastMath(on bool) Option {
	return func(s *Session) error {
		s.cfg.FastMath = on
		return nil
	}
}

// WithInference sets the per-inference budget: maximum message-passing
// sweeps and the convergence tolerance on posterior means (zero keeps the
// respective default).
func WithInference(maxIter int, tol float64) Option {
	return func(s *Session) error {
		if maxIter > 0 {
			s.cfg.MaxIter = maxIter
		}
		if tol > 0 {
			s.cfg.Tol = tol
		}
		return nil
	}
}

// WithScheduler selects the multiplexing policy assigned to sources that do
// not bring their own scheduler (see SimSource.SetScheduler).
func WithScheduler(kind SchedulerKind) Option {
	return func(s *Session) error {
		if kind != RoundRobin && kind != Adaptive {
			return fmt.Errorf("bayesperf: unknown scheduler kind %d", kind)
		}
		s.sched = kind
		return nil
	}
}

// WithGumbelReject toggles CounterMiner-style Gumbel outlier rejection in
// the observation model.
func WithGumbelReject(on bool) Option {
	return func(s *Session) error {
		s.cfg.Mux.GumbelReject = on
		return nil
	}
}

// WithDerived toggles derived-event evaluation in stream reports (the
// DTW-aligned derived error columns; the per-interval derived posterior
// series in Report.Stream are always produced).
func WithDerived(on bool) Option {
	return func(s *Session) error {
		s.derived = on
		return nil
	}
}

// WithNoise sets the relative per-interval measurement noise of the
// observation model.
func WithNoise(frac float64) Option {
	return func(s *Session) error {
		if frac < 0 {
			return fmt.Errorf("bayesperf: negative noise fraction %v", frac)
		}
		s.cfg.Mux.NoiseFrac = frac
		return nil
	}
}

// WithOutliers configures injected corrupted readings: each counted value
// is, with probability prob, inflated by mag×.
func WithOutliers(prob, mag float64) Option {
	return func(s *Session) error {
		s.cfg.Mux.OutlierProb = prob
		s.cfg.Mux.OutlierMag = mag
		return nil
	}
}

// WithMetrics attaches a metrics registry to the session: every subsequent
// run records its pipeline instrumentation there — session run counters and
// durations, stream stage latencies and batch fill ratios, graph
// sweep/convergence/kernel counters, measurement-layer drop and rejection
// counters, and (adaptive runs) scheduler epoch decisions. Nil detaches.
// Results are bitwise identical with metrics on or off.
func WithMetrics(r *MetricsRegistry) Option {
	return func(s *Session) error {
		s.obs = r
		return nil
	}
}

// WithMux replaces the whole observation model.
func WithMux(m MuxConfig) Option {
	return func(s *Session) error {
		s.cfg.Mux = m
		return nil
	}
}

// Catalog returns the session's bound catalog (nil until bound).
func (s *Session) Catalog() *Catalog { return s.cat }

// Config returns the resolved streaming configuration.
func (s *Session) Config() Config { return s.cfg.WithDefaults() }

// bindCatalog resolves the catalog for a run: the session's, or — when the
// session has none — the source's. A bound session rejects sources bound to
// a different catalog, since EventIDs would not align; distinct instances
// are accepted only when their event lists match name for name (e.g. the
// builder catalog vs. its spec-loaded twin).
func (s *Session) bindCatalog(src Source) (*Catalog, error) {
	sc := src.Catalog()
	if s.cat == nil {
		if sc == nil {
			return nil, fmt.Errorf("bayesperf: neither session nor source is bound to a catalog")
		}
		s.cat = sc
		return sc, nil
	}
	if sc == nil || sc == s.cat {
		return s.cat, nil
	}
	if sc.Arch != s.cat.Arch || sc.NumEvents() != s.cat.NumEvents() {
		return nil, fmt.Errorf("bayesperf: source catalog %s does not match session catalog %s", sc.Arch, s.cat.Arch)
	}
	for id := range sc.Events {
		if sc.Events[id].Name != s.cat.Events[id].Name {
			return nil, fmt.Errorf("bayesperf: source catalog %s does not match session catalog %s: event %d is %q vs %q",
				sc.Arch, s.cat.Arch, id, sc.Events[id].Name, s.cat.Events[id].Name)
		}
	}
	return s.cat, nil
}

// newScheduler builds the session's configured scheduler over the catalog.
func (s *Session) newScheduler(cat *Catalog) Scheduler {
	if s.sched == Adaptive {
		return measure.NewAdaptive(cat, s.cfg.WithDefaults().Window)
	}
	return measure.NewRoundRobin(cat)
}

// prepare binds the catalog, injects the session's scheduler into sources
// that accept one, and rejects simulated sources whose observation model
// diverges from the session's: the engine derives observation stds and
// Gumbel thresholds from its own MuxConfig, so a source sampling under a
// different noise model would silently mis-weight every estimate.
func (s *Session) prepare(src Source) (*Catalog, error) {
	cat, err := s.bindCatalog(src)
	if err != nil {
		return nil, err
	}
	if sim, ok := src.(*SimSource); ok {
		if sim.mux != s.cfg.Mux {
			return nil, fmt.Errorf("bayesperf: source observation model differs from the session's — build the source with the session's MuxConfig (or align the session via WithMux)")
		}
		if sim.sched == nil {
			sim.SetScheduler(s.newScheduler(cat))
		}
	}
	return cat, nil
}

// sourceScheduler reports the scheduler actually driving the source, when
// the source exposes one.
func sourceScheduler(src Source) Scheduler {
	if sg, ok := src.(interface{ Scheduler() Scheduler }); ok {
		return sg.Scheduler()
	}
	return nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// sessionMetrics is the session layer's instrument set for one run mode.
// The zero value (no registry) is a free no-op set.
type sessionMetrics struct {
	runs      *obs.Counter
	seconds   *obs.Histogram
	intervals *obs.Counter
}

// sessionMetrics registers the session-layer instruments for a run mode
// ("batch" | "stream") on the session's registry.
func (s *Session) sessionMetrics(mode string) sessionMetrics {
	if s.obs == nil {
		return sessionMetrics{}
	}
	return sessionMetrics{
		runs: s.obs.Counter("bayesperf_session_runs_total",
			"Session runs started, by mode.", obs.Label{Key: "mode", Value: mode}),
		seconds: s.obs.Histogram("bayesperf_session_run_seconds",
			"Wall-clock duration of whole session runs, by mode.",
			obs.LatencyBuckets(), obs.Label{Key: "mode", Value: mode}),
		intervals: s.obs.Counter("bayesperf_session_intervals_total",
			"Interval samples consumed across all session runs."),
	}
}

// RunBatch drains the source and corrects whole-run totals: per-event §4.2
// extrapolated estimates from the counted intervals, one factor-graph
// inference over them, and derived-event posteriors. Sources exposing
// ground truth (SimSource, Sampler) additionally get raw/corrected error
// columns in the report.
func (s *Session) RunBatch(src Source) (*Report, error) {
	cat, err := s.prepare(src)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg.WithDefaults()
	sm := s.sessionMetrics("batch")
	mm := measure.NewMetrics(s.obs)
	sm.runs.Inc()
	start := time.Now()

	xs := make([][]float64, cat.NumEvents())
	intervals := 0
	for {
		iv, ok := src.Next()
		if !ok {
			break
		}
		for i, id := range iv.Events {
			if id < 0 || int(id) >= len(xs) {
				return nil, fmt.Errorf("bayesperf: source emitted event %d outside catalog %s", id, cat.Arch)
			}
			if v := iv.Values[i]; finite(v) {
				xs[id] = append(xs[id], v)
			} else {
				mm.DroppedNonFinite.Inc()
			}
		}
		intervals++
	}
	if intervals == 0 {
		return nil, fmt.Errorf("bayesperf: source produced no intervals")
	}
	sm.intervals.Add(uint64(intervals))

	est := measure.EstimateSamples(xs, intervals, cfg.Mux)
	var rejected uint64
	for id := range est {
		rejected += uint64(est[id].Rejected)
	}
	if rejected > 0 {
		mm.GumbelRejected.Add(rejected)
	}
	g := graph.Build(cat)
	g.SetFastMath(cfg.FastMath)
	g.SetMetrics(graph.NewMetrics(s.obs))
	for id := range est {
		if est[id].N > 0 {
			g.Observe(EventID(id), est[id].Total, est[id].Std)
		}
	}
	post := g.Infer(cfg.MaxIter, cfg.Tol)
	sm.seconds.Observe(time.Since(start).Seconds())
	return s.batchReport(cat, src, est, &post, intervals), nil
}

// RunStream feeds the source through the sliding-window correction engine
// and returns the stitched per-interval posterior series (Report.Stream)
// plus, for truth-exposing sources, the DTW-aligned error of the three
// estimators. With an Adaptive scheduler the epoch feedback loop closes
// automatically.
func (s *Session) RunStream(src Source) (*Report, error) {
	cat, err := s.prepare(src)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg.WithDefaults()
	cfg.Metrics = s.obs
	if n, ok := src.(interface{ Intervals() int }); ok {
		cfg.SizeHint = n.Intervals()
	}
	sched := sourceScheduler(src)
	sm := s.sessionMetrics("stream")
	sm.runs.Inc()

	start := time.Now()
	res := stream.Run(cat, src, sched, cfg)
	dur := time.Since(start)
	if res.Intervals == 0 {
		return nil, fmt.Errorf("bayesperf: source produced no intervals")
	}
	sm.intervals.Add(uint64(res.Intervals))
	sm.seconds.Observe(dur.Seconds())
	return s.streamReport(cat, src, sched, res, dur)
}
