package bayesperf_test

import (
	"bytes"
	"strings"
	"testing"

	"bayesperf/internal/uarch"
	"bayesperf/pkg/bayesperf"
)

// TestSessionWithMetrics runs both session modes with one shared registry
// and checks the report threading plus the cross-layer coverage of the
// snapshot — every instrumented layer must contribute at least one sample.
func TestSessionWithMetrics(t *testing.T) {
	cat := uarch.Skylake()
	wl := bayesperf.DefaultWorkload(60)
	mux := bayesperf.DefaultMuxConfig()
	reg := bayesperf.NewMetricsRegistry()

	batchSess, err := bayesperf.New(
		bayesperf.WithCatalog(cat),
		bayesperf.WithMux(mux),
		bayesperf.WithMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := batchSess.RunBatch(bayesperf.NewSimSource(cat, wl, mux, 42))
	if err != nil {
		t.Fatal(err)
	}
	if batch.Metrics != reg {
		t.Error("batch Report.Metrics does not echo the WithMetrics registry")
	}
	if batch.TotalSweeps != batch.Iters {
		t.Errorf("batch TotalSweeps = %d, want Iters %d", batch.TotalSweeps, batch.Iters)
	}
	if batch.Converged != (batch.UnconvergedWindows == 0) {
		t.Errorf("batch UnconvergedWindows=%d inconsistent with Converged=%v",
			batch.UnconvergedWindows, batch.Converged)
	}

	streamSess, err := bayesperf.New(
		bayesperf.WithCatalog(cat),
		bayesperf.WithMux(mux),
		bayesperf.WithScheduler(bayesperf.Adaptive),
		bayesperf.WithMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := streamSess.RunStream(bayesperf.NewSimSource(cat, wl, mux, 42))
	if err != nil {
		t.Fatal(err)
	}
	if stream.Metrics != reg {
		t.Error("stream Report.Metrics does not echo the WithMetrics registry")
	}
	if stream.UnconvergedWindows > stream.Windows {
		t.Errorf("UnconvergedWindows %d > Windows %d", stream.UnconvergedWindows, stream.Windows)
	}
	if stream.TotalSweeps <= 0 {
		t.Errorf("stream TotalSweeps = %d, want > 0", stream.TotalSweeps)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	// One family per instrumented layer: the tentpole's coverage claim.
	for _, name := range []string{
		"bayesperf_session_runs_total",
		"bayesperf_stream_windows_total",
		"bayesperf_measure_dropped_nonfinite_total",
		"bayesperf_graph_sweeps_total",
		"bayesperf_sched_reprioritizations_total",
	} {
		if !strings.Contains(text, "\n"+name) {
			t.Errorf("layer metric %s missing from the session snapshot", name)
		}
	}
	snap := reg.Snapshot()
	runs := snap.Find("bayesperf_session_runs_total", bayesperf.MetricLabel{Key: "mode", Value: "batch"})
	if runs == nil || runs.Value != 1 {
		t.Errorf("batch run counter = %+v, want 1", runs)
	}
	runs = snap.Find("bayesperf_session_runs_total", bayesperf.MetricLabel{Key: "mode", Value: "stream"})
	if runs == nil || runs.Value != 1 {
		t.Errorf("stream run counter = %+v, want 1", runs)
	}
}

// TestSessionMetricsBitIdentical pins WithMetrics's documented invariant:
// the corrected outputs are bitwise identical with and without a registry.
func TestSessionMetricsBitIdentical(t *testing.T) {
	cat := uarch.Skylake()
	wl := bayesperf.DefaultWorkload(40)
	mux := bayesperf.DefaultMuxConfig()

	run := func(opts ...bayesperf.Option) *bayesperf.Report {
		t.Helper()
		sess, err := bayesperf.New(append([]bayesperf.Option{
			bayesperf.WithCatalog(cat), bayesperf.WithMux(mux),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.RunBatch(bayesperf.NewSimSource(cat, wl, mux, 7))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run()
	instr := run(bayesperf.WithMetrics(bayesperf.NewMetricsRegistry()))
	for i := range plain.Events {
		if plain.Events[i].Mean != instr.Events[i].Mean || plain.Events[i].Std != instr.Events[i].Std {
			t.Fatalf("event %s: WithMetrics changed the posterior", plain.Events[i].Name)
		}
	}
}
