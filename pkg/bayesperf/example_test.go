package bayesperf_test

import (
	"fmt"

	"bayesperf/pkg/bayesperf"
)

// Example is the README's embedding walkthrough: load a catalog defined
// purely in JSON, build a Session, stream a simulated source through it,
// and read the corrected per-interval series back. A real deployment swaps
// NewSimSource for any type implementing bayesperf.Source (for example a
// perf-event reader).
func Example() {
	spec, err := bayesperf.LoadSpecFile("../../examples/catalogs/zen.json")
	if err != nil {
		panic(err)
	}
	sess, err := bayesperf.New(
		bayesperf.WithSpec(spec),
		bayesperf.WithWindow(16),
		bayesperf.WithHop(4),
		bayesperf.WithWorkers(2),
		bayesperf.WithDerived(true),
	)
	if err != nil {
		panic(err)
	}
	src := bayesperf.NewSimSource(sess.Catalog(), bayesperf.DefaultWorkload(40),
		bayesperf.DefaultMuxConfig(), 7)
	rep, err := sess.RunStream(src)
	if err != nil {
		panic(err)
	}
	// rep.Stream.Corrected[id] is the corrected per-interval series of
	// event id; rep.Stream.DerivedCorrected[0] the first derived metric's.
	fmt.Printf("%s: %d intervals in %d windows, corrected beats naive: %v\n",
		rep.Arch, rep.Intervals, rep.Windows, rep.Improved())
	// Output: x86_64-zen3: 120 intervals in 27 windows, corrected beats naive: true
}
