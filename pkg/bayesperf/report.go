package bayesperf

import (
	"time"

	"bayesperf/internal/graph"
	"bayesperf/internal/measure"
	"bayesperf/internal/stats"
	"bayesperf/internal/stream"
	"bayesperf/internal/timeseries"
)

// Relative-error floors, shared with the CLI's historical behavior:
// event totals here are ≥10⁵ so a floor of 1 never distorts a real error,
// while derived values are O(0.01–10) ratios and use tighter guards.
const (
	eventRelErrFloor          = 1.0
	derivedRelErrFloor        = 1e-9
	derivedAlignedRelErrFloor = 1e-3
)

// EventReport is one event's outcome in a batch run.
type EventReport struct {
	Name     string
	Fixed    bool
	Coverage float64 // fraction of intervals the event was counted in
	Raw      float64 // inverse-coverage extrapolated total (perf's scaling)
	Mean     float64 // posterior mean total
	Std      float64 // posterior std

	// Truth-based columns, valid iff Report.HasTruth.
	Truth   float64
	RawErr  float64
	CorrErr float64
}

// DerivedReport is one derived event's posterior in a batch run.
type DerivedReport struct {
	Name string
	Mean float64 // formula at the posterior mean
	Std  float64 // delta-method posterior std
	Raw  float64 // formula at the raw extrapolated totals

	// Truth-based columns, valid iff Report.HasTruth.
	Truth   float64
	RawErr  float64
	CorrErr float64
}

// DerivedStreamReport is one derived event's DTW-aligned streaming outcome
// (truth-exposing sources with WithDerived only).
type DerivedStreamReport struct {
	Name             string
	NaiveAligned     float64
	WindowedAligned  float64
	CorrectedAligned float64
	MeanPostStd      float64 // mean per-interval delta-method posterior std
	MinPostStd       float64 // smallest emitted std (stays > 0)
}

// Report is the unified outcome of a Session run. Batch runs fill the
// whole-run sections (Events, Derived, the totals errors); stream runs fill
// Stream plus the aligned-error sections. Truth-based fields are only
// meaningful when HasTruth is set (the source implements TruthSource).
type Report struct {
	Arch      string
	Intervals int
	Groups    int  // multiplexing groups of the source's scheduler (0 if unknown)
	FastMath  bool // inference ran the fast-math kernel (WithFastMath)
	HasTruth  bool

	// Metrics echoes the registry attached via WithMetrics (nil without
	// one): the full pipeline instrumentation of every run recorded there.
	Metrics *MetricsRegistry
	// UnconvergedWindows counts inference windows that exhausted the sweep
	// budget (a batch run is one window; stream runs count per window).
	UnconvergedWindows int
	// TotalSweeps is the message-passing sweep total across all windows.
	TotalSweeps int

	// Batch: whole-run totals after one inference pass.
	Iters     int
	Converged bool
	Events    []EventReport
	Derived   []DerivedReport
	// Mean relative totals error over all events (HasTruth only).
	RawMeanErr  float64
	CorrMeanErr float64

	// Stream: stitched per-interval posterior series and run telemetry.
	Windows    int
	Duration   time.Duration
	Stream     *StreamResult
	PostRelStd float64 // pooled posterior relative std (scheduler metric)
	SlotMoves  int     // adaptive slot moves (0 under round-robin)

	// DTW-aligned per-interval error vs. truth, mean over events
	// (stream + HasTruth only).
	NaiveAligned     float64
	WindowedAligned  float64
	CorrectedAligned float64
	// Whole-run error of the summed corrected series (stream + HasTruth).
	CorrTotalsErr float64

	// Derived-event streaming evaluation (stream + HasTruth + WithDerived).
	DerivedStream           []DerivedStreamReport
	DerivedNaiveAligned     float64
	DerivedWindowedAligned  float64
	DerivedCorrectedAligned float64
}

// Improved reports the pipeline's headline verdict: the corrected estimate
// beat the raw multiplexed one. For batch reports that is the totals error;
// for stream reports the DTW-aligned per-interval error versus the naive
// sample-and-hold stream. Only meaningful with HasTruth.
func (r *Report) Improved() bool {
	if r.Stream != nil {
		return r.CorrectedAligned < r.NaiveAligned
	}
	return r.CorrMeanErr < r.RawMeanErr
}

// groupCount reads the source's scheduler group count when exposed.
func groupCount(src Source) int {
	if sched := sourceScheduler(src); sched != nil {
		return len(sched.Groups())
	}
	return 0
}

// batchReport assembles the whole-run report from the estimates and the
// posterior.
func (s *Session) batchReport(cat *Catalog, src Source, est []measure.Sample,
	post *graph.Result, intervals int) *Report {

	rep := &Report{
		Arch:        cat.Arch,
		Intervals:   intervals,
		Groups:      groupCount(src),
		FastMath:    s.cfg.FastMath,
		Iters:       post.Iters,
		Converged:   post.Converged,
		Metrics:     s.obs,
		TotalSweeps: post.Iters,
	}
	if !post.Converged {
		rep.UnconvergedWindows = 1
	}
	var truth []float64
	if ts, ok := src.(TruthSource); ok {
		truth = ts.Truth().Totals()
		rep.HasTruth = true
	}

	rawTotals := make([]float64, len(est))
	var raw, corr stats.Running
	for id := range est {
		ev := cat.Event(EventID(id))
		rawTotals[id] = est[id].Total
		er := EventReport{
			Name:     ev.Name,
			Fixed:    ev.Fixed,
			Coverage: float64(est[id].N) / float64(intervals),
			Raw:      est[id].Total,
			Mean:     post.Mean[id],
			Std:      post.Std[id],
		}
		if truth != nil {
			er.Truth = truth[id]
			er.RawErr = stats.RelErr(est[id].Total, truth[id], eventRelErrFloor)
			er.CorrErr = stats.RelErr(post.Mean[id], truth[id], eventRelErrFloor)
			raw.Add(er.RawErr)
			corr.Add(er.CorrErr)
		}
		rep.Events = append(rep.Events, er)
	}
	if truth != nil {
		rep.RawMeanErr = raw.Mean()
		rep.CorrMeanErr = corr.Mean()
	}

	for i := range cat.Derived {
		d := &cat.Derived[i]
		// WithCovariance: feed the delta method the clique posterior
		// covariances instead of treating the inputs as independent.
		var mean, std float64
		if s.cfg.Covariance {
			mean, std = post.DerivedPosteriorCov(d)
		} else {
			mean, std = post.DerivedPosterior(d)
		}
		dr := DerivedReport{
			Name: d.Name,
			Mean: mean,
			Std:  std,
			Raw:  cat.EvalDerived(d, rawTotals),
		}
		if truth != nil {
			dr.Truth = cat.EvalDerived(d, truth)
			dr.RawErr = stats.RelErr(dr.Raw, dr.Truth, derivedRelErrFloor)
			dr.CorrErr = stats.RelErr(mean, dr.Truth, derivedRelErrFloor)
		}
		rep.Derived = append(rep.Derived, dr)
	}
	return rep
}

// streamReport assembles the streaming report, evaluating the aligned
// errors against ground truth when the source exposes it.
func (s *Session) streamReport(cat *Catalog, src Source, sched Scheduler,
	res *stream.Result, dur time.Duration) (*Report, error) {

	rep := &Report{
		Arch:               cat.Arch,
		Intervals:          res.Intervals,
		Groups:             groupCount(src),
		FastMath:           s.cfg.FastMath,
		Windows:            res.Windows,
		Duration:           dur,
		Converged:          res.AllConverged,
		Stream:             res,
		PostRelStd:         res.PostRelStd.Mean(),
		Metrics:            s.obs,
		UnconvergedWindows: res.Unconverged,
		TotalSweeps:        res.TotalSweeps,
	}
	if ad, ok := sched.(*measure.AdaptiveScheduler); ok {
		rep.SlotMoves = ad.Moves()
	}
	ts, ok := src.(TruthSource)
	if !ok {
		return rep, nil
	}
	tr := ts.Truth()
	rep.HasTruth = true
	band := tr.Intervals() / 4

	var err error
	if rep.NaiveAligned, err = alignedMean(tr, res.NaiveRaw, band); err != nil {
		return nil, err
	}
	if rep.WindowedAligned, err = alignedMean(tr, res.WindowedRaw, band); err != nil {
		return nil, err
	}
	if rep.CorrectedAligned, err = alignedMean(tr, res.Corrected, band); err != nil {
		return nil, err
	}
	rep.CorrTotalsErr = totalsErr(tr, res.Corrected)

	// Derived-event streaming evaluation (§6.2) — only when asked for: it
	// costs one DTW alignment per estimator per derived event.
	if s.derived {
		if rep.DerivedStream, err = evalDerivedStream(cat, tr, res, band); err != nil {
			return nil, err
		}
		var dn, dw, dc stats.Running
		for _, row := range rep.DerivedStream {
			dn.Add(row.NaiveAligned)
			dw.Add(row.WindowedAligned)
			dc.Add(row.CorrectedAligned)
		}
		rep.DerivedNaiveAligned = dn.Mean()
		rep.DerivedWindowedAligned = dw.Mean()
		rep.DerivedCorrectedAligned = dc.Mean()
	}
	return rep, nil
}

// alignedMean computes the mean DTW-aligned relative error of the target
// series against the ground truth, over all events.
func alignedMean(tr *Trace, target []timeseries.Series, band int) (float64, error) {
	var errs stats.Running
	for id := range tr.Series {
		e, err := timeseries.AlignedRelError(tr.Series[id], target[id], band, eventRelErrFloor)
		if err != nil {
			return 0, err
		}
		errs.Add(e)
	}
	return errs.Mean(), nil
}

// totalsErr compares per-event series totals against the true totals.
func totalsErr(tr *Trace, series []timeseries.Series) float64 {
	truth := tr.Totals()
	var errs stats.Running
	for id := range truth {
		errs.Add(stats.RelErr(series[id].Sum(), truth[id], eventRelErrFloor))
	}
	return errs.Mean()
}

// evalDerivedStream scores the catalog's derived-event series from a
// finished stream result against the ground-truth trace. The derived
// definitions come from the session catalog — the one that sized the
// result's series — not the trace's, which bindCatalog only guarantees to
// be event-aligned; the truth series gather per-event inputs from the
// trace, where EventIDs do align.
func evalDerivedStream(cat *Catalog, tr *Trace, res *stream.Result, band int) ([]DerivedStreamReport, error) {
	rows := make([]DerivedStreamReport, 0, len(cat.Derived))
	for di := range cat.Derived {
		d := &cat.Derived[di]
		gather := make([]timeseries.Series, len(d.Inputs))
		for i, id := range d.Inputs {
			gather[i] = tr.Series[id]
		}
		truth := timeseries.Map(d.Eval, gather...)
		row := DerivedStreamReport{Name: d.Name}
		var err error
		if row.NaiveAligned, err = timeseries.AlignedRelError(truth, res.DerivedNaive[di], band, derivedAlignedRelErrFloor); err != nil {
			return nil, err
		}
		if row.WindowedAligned, err = timeseries.AlignedRelError(truth, res.DerivedWindowedRaw[di], band, derivedAlignedRelErrFloor); err != nil {
			return nil, err
		}
		if row.CorrectedAligned, err = timeseries.AlignedRelError(truth, res.DerivedCorrected[di], band, derivedAlignedRelErrFloor); err != nil {
			return nil, err
		}
		var stds stats.Running
		for _, v := range res.DerivedCorrectedStd[di] {
			stds.Add(v)
		}
		row.MeanPostStd = stds.Mean()
		row.MinPostStd = stds.Min()
		rows = append(rows, row)
	}
	return rows, nil
}
