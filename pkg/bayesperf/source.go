package bayesperf

import (
	"bayesperf/internal/measure"
	"bayesperf/internal/rng"
)

// Source is a stream of multiplexed counter intervals bound to a catalog:
// the pluggable measurement side of the pipeline. Two implementations ship
// in-tree — SimSource (simulated workload) and measure.Sampler (streaming
// simulator over an existing trace) — and a live perf-event reader is a
// third implementation of this interface, not a rewrite of the pipeline.
//
// Next returns one interval's counted events and values, then false at end
// of stream. Values index-parallel Events; non-finite values are treated as
// corrupted readings and dropped by the consumers. Catalog reports the
// catalog whose EventIDs the intervals are expressed in.
type Source interface {
	Catalog() *Catalog
	Next() (Interval, bool)
}

// TruthSource is the optional Source extension for simulated sources that
// know their ground truth; reports from such sources carry raw/corrected
// error columns.
type TruthSource interface {
	Source
	Truth() *Trace
}

// Compile-time checks: both shipped sources implement the interfaces.
var (
	_ TruthSource = (*SimSource)(nil)
	_ TruthSource = (*measure.Sampler)(nil)
)

// SimSource is the simulated measurement source: a ground-truth workload
// trace replayed through a multiplexing scheduler with measurement noise,
// exactly the stream a real PMU driver would deliver. Its scheduler is
// assigned lazily — by SetScheduler, or by the Session that runs it
// (WithScheduler) — so one source definition serves both policies.
type SimSource struct {
	tr    *Trace
	mux   MuxConfig
	seed  uint64
	sched Scheduler
	smp   *measure.Sampler
}

// NewSimSource simulates the workload on the catalog (seed-deterministic)
// and returns a source over the resulting multiplexed stream. The seed
// discipline matches the CLI: one split for the ground truth, one for the
// measurement stream, so equal seeds mean bit-equal pipelines.
func NewSimSource(cat *Catalog, wl Workload, mux MuxConfig, seed uint64) *SimSource {
	r := rng.New(seed)
	tr := measure.GroundTruth(cat, wl, r.Split())
	return NewTraceSource(tr, mux, r.Split().Uint64())
}

// NewTraceSource wraps an existing ground-truth trace as a source; seed
// drives the measurement noise stream.
func NewTraceSource(tr *Trace, mux MuxConfig, seed uint64) *SimSource {
	return &SimSource{tr: tr, mux: mux, seed: seed}
}

// Fork returns a fresh source over the same trace, noise seed and
// observation model, with no scheduler bound: the way to replay one
// simulated run under a different multiplexing policy (the two streams are
// identical except for the schedule).
func (s *SimSource) Fork() *SimSource {
	return &SimSource{tr: s.tr, mux: s.mux, seed: s.seed}
}

// SetScheduler binds the multiplexing scheduler. It must be called before
// the first Next (Sessions do it automatically; a bare source defaults to
// round-robin).
func (s *SimSource) SetScheduler(sched Scheduler) { s.sched = sched }

// Scheduler returns the bound scheduler (nil until bound).
func (s *SimSource) Scheduler() Scheduler { return s.sched }

// Catalog returns the catalog the source's trace is bound to.
func (s *SimSource) Catalog() *Catalog { return s.tr.Cat }

// Truth returns the ground-truth trace behind the stream.
func (s *SimSource) Truth() *Trace { return s.tr }

// Intervals returns the total stream length.
func (s *SimSource) Intervals() int { return s.tr.Intervals() }

// Next emits the next interval's multiplexed sample.
func (s *SimSource) Next() (Interval, bool) {
	if s.smp == nil {
		if s.sched == nil {
			s.sched = measure.NewRoundRobin(s.tr.Cat)
		}
		s.smp = measure.NewSampler(s.tr, s.mux, s.sched, rng.New(s.seed))
	}
	return s.smp.Next()
}
