package bayesperf_test

import (
	"strings"
	"testing"

	"bayesperf/internal/measure"
	"bayesperf/internal/rng"
	"bayesperf/internal/uarch"
	"bayesperf/pkg/bayesperf"
)

const zenSpecPath = "../../examples/catalogs/zen.json"

// TestBuilderAndSpecSessionsBitIdentical is the acceptance criterion at the
// Session level: the builder-based Skylake catalog and the registry's
// spec-loaded one produce bit-identical batch posteriors and bit-identical
// streamed corrected series for the same seed.
func TestBuilderAndSpecSessionsBitIdentical(t *testing.T) {
	builder := uarch.Skylake()
	spec, ok := bayesperf.LookupCatalog("skylake")
	if !ok {
		t.Fatal("skylake not in the registry")
	}
	fromSpec := spec.MustCatalog()
	wl := bayesperf.DefaultWorkload(50)
	mux := bayesperf.DefaultMuxConfig()

	runBoth := func(run func(cat *bayesperf.Catalog) *bayesperf.Report) (*bayesperf.Report, *bayesperf.Report) {
		return run(builder), run(fromSpec)
	}

	a, b := runBoth(func(cat *bayesperf.Catalog) *bayesperf.Report {
		sess, err := bayesperf.New(bayesperf.WithCatalog(cat), bayesperf.WithMux(mux))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.RunBatch(bayesperf.NewSimSource(cat, wl, mux, 42))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	})
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i].Mean != b.Events[i].Mean || a.Events[i].Std != b.Events[i].Std {
			t.Errorf("batch posterior differs for %s: %v±%v vs %v±%v", a.Events[i].Name,
				a.Events[i].Mean, a.Events[i].Std, b.Events[i].Mean, b.Events[i].Std)
		}
	}
	for i := range a.Derived {
		if a.Derived[i].Mean != b.Derived[i].Mean || a.Derived[i].Std != b.Derived[i].Std {
			t.Errorf("derived posterior differs for %s", a.Derived[i].Name)
		}
	}

	sa, sb := runBoth(func(cat *bayesperf.Catalog) *bayesperf.Report {
		sess, err := bayesperf.New(bayesperf.WithCatalog(cat), bayesperf.WithMux(mux),
			bayesperf.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.RunStream(bayesperf.NewSimSource(cat, wl, mux, 42))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	})
	for id := range sa.Stream.Corrected {
		for ti := range sa.Stream.Corrected[id] {
			if sa.Stream.Corrected[id][ti] != sb.Stream.Corrected[id][ti] {
				t.Fatalf("stream corrected series differs at event %d interval %d", id, ti)
			}
		}
	}
}

// TestZenJSONEndToEnd: the catalog defined purely in JSON — no Go changes —
// runs end to end through Session.RunStream with the corrected-beats-naive
// verdict holding, and through RunBatch with positive derived stds.
func TestZenJSONEndToEnd(t *testing.T) {
	spec, err := bayesperf.LoadSpecFile(zenSpecPath)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bayesperf.New(
		bayesperf.WithSpec(spec),
		bayesperf.WithDerived(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	cat := sess.Catalog()
	if err := measure.ValidateModels(cat); err != nil {
		t.Fatal(err)
	}
	wl := bayesperf.DefaultWorkload(100)
	mux := bayesperf.DefaultMuxConfig()

	rep, err := sess.RunStream(bayesperf.NewSimSource(cat, wl, mux, 42))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasTruth || !rep.Converged {
		t.Fatalf("zen stream run: truth=%v converged=%v", rep.HasTruth, rep.Converged)
	}
	if !rep.Improved() {
		t.Errorf("zen corrected aligned error %.4f%% not below naive %.4f%%",
			100*rep.CorrectedAligned, 100*rep.NaiveAligned)
	}
	if len(rep.DerivedStream) != len(cat.Derived) {
		t.Fatalf("%d derived stream rows, want %d", len(rep.DerivedStream), len(cat.Derived))
	}
	for _, row := range rep.DerivedStream {
		if row.MinPostStd <= 0 {
			t.Errorf("%s: min per-interval posterior std %v, want > 0", row.Name, row.MinPostStd)
		}
	}

	batch, err := sess.RunBatch(bayesperf.NewSimSource(cat, wl, mux, 42))
	if err != nil {
		t.Fatal(err)
	}
	if !batch.Improved() {
		t.Errorf("zen batch corrected err %.4f%% not below raw %.4f%%",
			100*batch.CorrMeanErr, 100*batch.RawMeanErr)
	}
	for _, d := range batch.Derived {
		if d.Std <= 0 {
			t.Errorf("%s: batch posterior std %v, want > 0", d.Name, d.Std)
		}
	}
}

const neoverseSpecPath = "../../examples/catalogs/neoverse.json"

// TestNeoverseJSONEndToEnd runs the ARM Neoverse-like JSON catalog through
// the whole pipeline alongside zen's test, with the compile/execute
// additions switched on: a wide window batch and clique-covariance-aware
// derived stds. The catalog must form ≥4 multiplex groups and both run
// modes must beat their raw baselines.
func TestNeoverseJSONEndToEnd(t *testing.T) {
	spec, err := bayesperf.LoadSpecFile(neoverseSpecPath)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bayesperf.New(
		bayesperf.WithSpec(spec),
		bayesperf.WithDerived(true),
		bayesperf.WithBatch(16),
		bayesperf.WithCovariance(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	cat := sess.Catalog()
	if err := measure.ValidateModels(cat); err != nil {
		t.Fatal(err)
	}
	wl := bayesperf.DefaultWorkload(100)
	mux := bayesperf.DefaultMuxConfig()

	rep, err := sess.RunStream(bayesperf.NewSimSource(cat, wl, mux, 42))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups < 4 {
		t.Fatalf("neoverse catalog forms %d multiplex groups, want >= 4", rep.Groups)
	}
	if !rep.HasTruth || !rep.Converged {
		t.Fatalf("neoverse stream run: truth=%v converged=%v", rep.HasTruth, rep.Converged)
	}
	if !rep.Improved() {
		t.Errorf("neoverse corrected aligned error %.4f%% not below naive %.4f%%",
			100*rep.CorrectedAligned, 100*rep.NaiveAligned)
	}
	if len(rep.DerivedStream) != len(cat.Derived) {
		t.Fatalf("%d derived stream rows, want %d", len(rep.DerivedStream), len(cat.Derived))
	}
	for _, row := range rep.DerivedStream {
		if row.MinPostStd <= 0 {
			t.Errorf("%s: min per-interval posterior std %v, want > 0", row.Name, row.MinPostStd)
		}
	}

	batch, err := sess.RunBatch(bayesperf.NewSimSource(cat, wl, mux, 42))
	if err != nil {
		t.Fatal(err)
	}
	if !batch.Improved() {
		t.Errorf("neoverse batch corrected err %.4f%% not below raw %.4f%%",
			100*batch.CorrMeanErr, 100*batch.RawMeanErr)
	}
	for _, d := range batch.Derived {
		if d.Std <= 0 {
			t.Errorf("%s: batch posterior std %v, want > 0", d.Name, d.Std)
		}
	}
}

// TestSessionBatchWidthInvariance is the WithBatch contract at the API
// surface: any batch width yields a bit-identical streamed report.
func TestSessionBatchWidthInvariance(t *testing.T) {
	cat := uarch.Skylake()
	wl := bayesperf.DefaultWorkload(40)
	mux := bayesperf.DefaultMuxConfig()
	run := func(batch int) *bayesperf.Report {
		sess, err := bayesperf.New(
			bayesperf.WithCatalog(cat),
			bayesperf.WithMux(mux),
			bayesperf.WithBatch(batch),
			bayesperf.WithCovariance(true),
			bayesperf.WithDerived(true),
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.RunStream(bayesperf.NewSimSource(cat, wl, mux, 11))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(1)
	for _, batch := range []int{4, 32} {
		rep := run(batch)
		if rep.CorrectedAligned != base.CorrectedAligned ||
			rep.WindowedAligned != base.WindowedAligned ||
			rep.DerivedCorrectedAligned != base.DerivedCorrectedAligned {
			t.Errorf("batch=%d: aligned errors diverged from batch=1", batch)
		}
		for id := range base.Stream.Corrected {
			for ti := range base.Stream.Corrected[id] {
				if rep.Stream.Corrected[id][ti] != base.Stream.Corrected[id][ti] {
					t.Fatalf("batch=%d: corrected[%d][%d] diverged", batch, id, ti)
				}
			}
		}
	}
}

// TestSessionCovarianceTightensCoupledStd: WithCovariance must change only
// the derived stds whose inputs share an invariant — and on the
// sum-coupled Branch_Misp_Rate it must not increase the reported batch
// std, while every mean stays put.
func TestSessionCovarianceTightensCoupledStd(t *testing.T) {
	cat := uarch.Skylake()
	wl := bayesperf.DefaultWorkload(60)
	mux := bayesperf.DefaultMuxConfig()
	run := func(cov bool) *bayesperf.Report {
		sess, err := bayesperf.New(
			bayesperf.WithCatalog(cat),
			bayesperf.WithMux(mux),
			bayesperf.WithCovariance(cov),
		)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.RunBatch(bayesperf.NewSimSource(cat, wl, mux, 42))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	diag := run(false)
	cov := run(true)
	changed := false
	for i := range diag.Derived {
		if cov.Derived[i].Mean != diag.Derived[i].Mean {
			t.Errorf("%s: covariance mode changed the posterior mean", diag.Derived[i].Name)
		}
		if cov.Derived[i].Std != diag.Derived[i].Std {
			changed = true
		}
		if cov.Derived[i].Std <= 0 {
			t.Errorf("%s: covariance-aware std %v, want > 0", cov.Derived[i].Name, cov.Derived[i].Std)
		}
		if diag.Derived[i].Name == "IPC" && cov.Derived[i].Std != diag.Derived[i].Std {
			t.Errorf("IPC inputs share no invariant on Skylake; std must not change")
		}
		// branch_breakdown couples misp positively with branches (the
		// sum), so the ratio's covariance-aware std must come in at or
		// below the diagonal — a sign flip in the plumbing would widen it.
		if diag.Derived[i].Name == "Branch_Misp_Rate" && cov.Derived[i].Std >= diag.Derived[i].Std {
			t.Errorf("Branch_Misp_Rate covariance-aware std %v not below diagonal %v",
				cov.Derived[i].Std, diag.Derived[i].Std)
		}
	}
	if !changed {
		t.Error("covariance mode changed no derived std at all")
	}
}

// TestWithBatchRejectsNegative: the option surface validates its input.
func TestWithBatchRejectsNegative(t *testing.T) {
	if _, err := bayesperf.New(bayesperf.WithBatch(-1)); err == nil {
		t.Error("WithBatch(-1) accepted")
	}
}

// TestSamplerIsASource: a bare measure.Sampler is the second shipped Source
// implementation; streaming it through a Session produces exactly the
// SimSource run (same trace, same seed, same scheduler).
func TestSamplerIsASource(t *testing.T) {
	cat := uarch.Skylake()
	wl := bayesperf.DefaultWorkload(40)
	mux := bayesperf.DefaultMuxConfig()

	sim := bayesperf.NewSimSource(cat, wl, mux, 7)
	sess, err := bayesperf.New(bayesperf.WithCatalog(cat), bayesperf.WithMux(mux))
	if err != nil {
		t.Fatal(err)
	}
	simRep, err := sess.RunStream(sim)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the identical stream as a raw Sampler (same seed discipline
	// as NewSimSource).
	r := rng.New(7)
	tr := measure.GroundTruth(cat, wl, r.Split())
	smp := measure.NewSampler(tr, mux, measure.NewRoundRobin(cat), rng.New(r.Split().Uint64()))

	sess2, err := bayesperf.New(bayesperf.WithCatalog(cat), bayesperf.WithMux(mux))
	if err != nil {
		t.Fatal(err)
	}
	smpRep, err := sess2.RunStream(smp)
	if err != nil {
		t.Fatal(err)
	}
	if !smpRep.HasTruth {
		t.Error("sampler source did not expose ground truth")
	}
	if smpRep.CorrectedAligned != simRep.CorrectedAligned || smpRep.Windows != simRep.Windows {
		t.Errorf("sampler-source run differs from sim-source run: %v/%d vs %v/%d",
			smpRep.CorrectedAligned, smpRep.Windows, simRep.CorrectedAligned, simRep.Windows)
	}
}

// TestSessionAdoptsSourceCatalog: a catalog-less session binds to the
// source's catalog; a bound session rejects mismatched sources.
func TestSessionAdoptsSourceCatalog(t *testing.T) {
	wl := bayesperf.DefaultWorkload(20)
	mux := bayesperf.DefaultMuxConfig()

	sess, err := bayesperf.New()
	if err != nil {
		t.Fatal(err)
	}
	src := bayesperf.NewSimSource(uarch.Power9(), wl, mux, 3)
	rep, err := sess.RunBatch(src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arch != "ppc64-power9" || sess.Catalog() == nil {
		t.Errorf("session did not adopt the source catalog (arch %q)", rep.Arch)
	}

	other := bayesperf.NewSimSource(uarch.Skylake(), wl, mux, 3)
	if _, err := sess.RunBatch(other); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("mismatched source accepted: %v", err)
	}
}

// TestSessionSchedulerOption: WithScheduler(Adaptive) closes the feedback
// loop (slot moves happen) and reports the adaptive telemetry.
func TestSessionSchedulerOption(t *testing.T) {
	cat := uarch.Skylake()
	wl := bayesperf.DefaultWorkload(100)
	mux := bayesperf.DefaultMuxConfig()

	sess, err := bayesperf.New(
		bayesperf.WithCatalog(cat),
		bayesperf.WithMux(mux),
		bayesperf.WithScheduler(bayesperf.Adaptive),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.RunStream(bayesperf.NewSimSource(cat, wl, mux, 42))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SlotMoves == 0 {
		t.Error("adaptive session made no slot moves")
	}
	if rep.Stream.Reprioritizations == 0 {
		t.Error("adaptive session never reprioritized")
	}
}

// TestSessionOptionErrors: invalid options fail at New, not at run time.
func TestSessionOptionErrors(t *testing.T) {
	cases := []struct {
		name string
		opt  bayesperf.Option
	}{
		{"nil catalog", bayesperf.WithCatalog(nil)},
		{"negative noise", bayesperf.WithNoise(-0.5)},
		{"unknown scheduler", bayesperf.WithScheduler(bayesperf.SchedulerKind(99))},
		{"missing catalog file", bayesperf.WithCatalogFile("/no/such/file.json")},
	}
	for _, tc := range cases {
		if _, err := bayesperf.New(tc.opt); err == nil {
			t.Errorf("%s: New accepted the option", tc.name)
		}
	}
}

// TestSessionRejectsMismatchedMux: a simulated source sampling under a
// different observation model than the session's is an error, not a silent
// mis-weighting of every estimate.
func TestSessionRejectsMismatchedMux(t *testing.T) {
	cat := uarch.Skylake()
	wl := bayesperf.DefaultWorkload(20)
	sess, err := bayesperf.New(bayesperf.WithCatalog(cat), bayesperf.WithNoise(0.05))
	if err != nil {
		t.Fatal(err)
	}
	src := bayesperf.NewSimSource(cat, wl, bayesperf.DefaultMuxConfig(), 3) // 1% noise
	if _, err := sess.RunBatch(src); err == nil || !strings.Contains(err.Error(), "observation model") {
		t.Errorf("diverging mux accepted: %v", err)
	}
}

// TestStreamDerivedUsesSessionCatalog: a session bound to a spec with a
// trimmed derived section must evaluate (and size) the derived stream rows
// from its own catalog, not the source's richer one.
func TestStreamDerivedUsesSessionCatalog(t *testing.T) {
	spec, ok := bayesperf.LookupCatalog("skylake")
	if !ok {
		t.Fatal("skylake not registered")
	}
	spec.Derived = spec.Derived[:1] // session knows only IPC
	sess, err := bayesperf.New(bayesperf.WithSpec(spec), bayesperf.WithDerived(true))
	if err != nil {
		t.Fatal(err)
	}
	// Source carries the full builder catalog (4 derived events); event
	// lists are identical so bindCatalog accepts it.
	mux := bayesperf.DefaultMuxConfig()
	src := bayesperf.NewSimSource(uarch.Skylake(), bayesperf.DefaultWorkload(30), mux, 5)
	rep, err := sess.RunStream(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DerivedStream) != 1 || rep.DerivedStream[0].Name != "IPC" {
		t.Fatalf("derived rows %+v, want exactly the session catalog's IPC", rep.DerivedStream)
	}
}

// TestValidateModelsExported: the polite model pre-check is reachable from
// the public API (external embedders cannot import internal/measure).
func TestValidateModelsExported(t *testing.T) {
	if err := bayesperf.ValidateModels(uarch.Skylake()); err != nil {
		t.Errorf("builder catalog failed model validation: %v", err)
	}
	spec, _ := bayesperf.LookupCatalog("skylake")
	spec.Events[0].Model = nil
	cat, err := spec.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if err := bayesperf.ValidateModels(cat); err == nil {
		t.Error("model-less catalog passed validation")
	}
}

// TestSessionEmptySource: zero intervals is an error, not a zero report.
func TestSessionEmptySource(t *testing.T) {
	cat := uarch.Skylake()
	mux := bayesperf.DefaultMuxConfig()
	wl := measure.Workload{Name: "empty"}
	sess, err := bayesperf.New(bayesperf.WithCatalog(cat))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunBatch(bayesperf.NewSimSource(cat, wl, mux, 1)); err == nil {
		t.Error("RunBatch on an empty source succeeded")
	}
	sess2, _ := bayesperf.New(bayesperf.WithCatalog(cat))
	if _, err := sess2.RunStream(bayesperf.NewSimSource(cat, wl, mux, 1)); err == nil {
		t.Error("RunStream on an empty source succeeded")
	}
}
