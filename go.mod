module bayesperf

go 1.22
