package measure

import (
	"math"

	"bayesperf/internal/rng"
	"bayesperf/internal/stats"
	"bayesperf/internal/uarch"
)

// Scheduler decides which programmable event group owns the PMU in each
// sampling interval. The round-robin policy is what perf implements; the
// adaptive policy closes the paper's §5 loop by steering slots toward the
// groups whose events the posterior is least certain about.
type Scheduler interface {
	// Groups returns the scheduled event groups. The slice is owned by the
	// scheduler and must not be mutated.
	Groups() [][]uarch.EventID
	// NextGroup returns the group live in the next interval and advances
	// the schedule.
	NextGroup() int
}

// RoundRobin cycles through the groups in order, giving every group the
// same share of intervals — perf's default multiplexing policy.
type RoundRobin struct {
	groups [][]uarch.EventID
	t      int
}

// NewRoundRobin builds a round-robin scheduler over the catalog's packed
// event groups.
func NewRoundRobin(cat *uarch.Catalog) *RoundRobin {
	return &RoundRobin{groups: scheduleGroups(cat)}
}

// Groups returns the scheduled event groups.
func (s *RoundRobin) Groups() [][]uarch.EventID { return s.groups }

// NextGroup returns t mod numGroups and advances.
func (s *RoundRobin) NextGroup() int {
	g := s.t % len(s.groups)
	s.t++
	return g
}

// AdaptiveScheduler allocates multiplexing slots by posterior uncertainty.
// The initial plan is a smooth interleave of an even split (exactly
// round-robin when the epoch divides evenly), and each Reprioritize edits
// it by at most one slot, so the schedule never jumps.
//
// The allocation descends the pooled posterior uncertainty by measured
// gradient. Under the §4.2 observation model a group observed n times per
// window contributes ∝ Σ_e relstd_e·c(n), c(n) = StudentTStdFactor(n−1)/√n
// — a curve with a cliff at n = 4, below which the t marginal has no
// finite variance. But an event's posterior does not track its own
// observation alone: the invariant network supplies precision too, and for
// strongly coupled events extra samples buy nothing. The graph exposes
// each event's sensitivity directly as ρ_e = (posteriorStd/obsStd)² — the
// fraction of posterior precision contributed by its own observation — so
// the marginal effect of a slot on group g is w_g·(1 − c(n±1)/c(n)) with
// w_g = Σ_e relstd_e·ρ_e. Each epoch the scheduler moves at most one slot
// from the group with the smallest marginal loss to the group with the
// largest marginal gain (with hysteresis), re-measuring before the next
// move: the gradient is only locally valid, and gentle self-correcting
// steps are what keep coupled catalogs from being driven into bad
// allocations. Equal or flat gradients leave the plan at round-robin.
type AdaptiveScheduler struct {
	groups   [][]uarch.EventID
	epochLen int
	plan     []int
	pos      int
	reprios  int
	moves    int
	slots    []int     // current per-group slot counts
	wHat     []float64 // EWMA of each group's Σ relstd·sensitivity
	wRaw     []float64 // EWMA of each group's Σ relstd (undiscounted)
}

// NewAdaptive builds an adaptive scheduler over the catalog's packed event
// groups. epochLen is the number of slots per plan — set it to the
// streaming inference window so one epoch's slot counts are one window's
// sample counts. Values below twice the group count leave no room to skew
// and are raised to 4× the group count.
func NewAdaptive(cat *uarch.Catalog, epochLen int) *AdaptiveScheduler {
	groups := scheduleGroups(cat)
	if epochLen < 2*len(groups) {
		epochLen = 4 * len(groups)
	}
	a := &AdaptiveScheduler{
		groups:   groups,
		epochLen: epochLen,
		slots:    make([]int, len(groups)),
		wHat:     make([]float64, len(groups)),
		wRaw:     make([]float64, len(groups)),
	}
	for i := 0; i < epochLen; i++ {
		a.slots[i%len(groups)]++
	}
	a.plan = interleave(a.slots, make([]int, 0, epochLen))
	return a
}

// Groups returns the scheduled event groups.
func (a *AdaptiveScheduler) Groups() [][]uarch.EventID { return a.groups }

// EpochLen returns the slot-plan length: callers should feed posterior
// uncertainty back via Reprioritize once per this many intervals.
func (a *AdaptiveScheduler) EpochLen() int { return a.epochLen }

// Reprioritizations returns how many times the plan has been rebuilt.
func (a *AdaptiveScheduler) Reprioritizations() int { return a.reprios }

// NextGroup returns the next slot of the current plan and advances.
func (a *AdaptiveScheduler) NextGroup() int {
	g := a.plan[a.pos%len(a.plan)]
	a.pos++
	return g
}

// hysteresis is the factor by which a slot move's estimated gain must
// exceed its estimated loss before the move is taken: the gradient is
// noisy, and a marginal move costs real measurement windows if it has to
// be walked back.
const hysteresis = 1.1

// Moves returns how many slot moves the gradient descent has made.
func (a *AdaptiveScheduler) Moves() int { return a.moves }

// Slots returns a copy of the current per-group slot allocation.
func (a *AdaptiveScheduler) Slots() []int { return append([]int(nil), a.slots...) }

// Reprioritize updates the slot plan from posterior marginals (indexed by
// EventID; ideally averaged over the last epoch's windows, see
// stream.Engine.EpochPosterior). std is the posterior std; obsStd is the
// matching observation std (0 where the event went unobserved), from which
// each event's sensitivity to its own sampling rate is measured. At most
// one slot moves per call, from the group whose marginal loss is smallest
// to the group whose marginal gain is largest, and only when the gain
// clears the loss by the hysteresis factor.
func (a *AdaptiveScheduler) Reprioritize(mean, std, obsStd []float64) {
	ng := len(a.groups)
	for gi, g := range a.groups {
		w, raw := 0.0, 0.0
		for _, id := range g {
			den := math.Abs(mean[id])
			if den < 1 {
				den = 1
			}
			rel := std[id] / den
			sens := 1.0 // unobserved: only more slots can produce an observation
			if obsStd[id] > 0 {
				r := std[id] / obsStd[id]
				sens = r * r
				if sens > 1 {
					sens = 1
				}
			}
			w += rel * sens
			raw += rel
		}
		if a.reprios == 0 {
			a.wHat[gi] = w
			a.wRaw[gi] = raw
		} else {
			a.wHat[gi] = 0.5*a.wHat[gi] + 0.5*w
			a.wRaw[gi] = 0.5*a.wRaw[gi] + 0.5*raw
		}
	}
	a.reprios++

	// The floor guarantees every group ≥ 4 samples per window (slots map
	// ~1:1 to window samples at the recommended epoch ≈ window, ±1 from
	// interleaving): below that the Student-t marginal loses finite
	// variance and the group's every event pays the 10× vagueness
	// fallback — no reallocation upside survives that.
	minSlots := 5
	for minSlots > 1 && minSlots*ng > a.epochLen {
		minSlots--
	}
	receiver, donor := -1, -1
	var bestGain, bestLoss float64
	for gi := 0; gi < ng; gi++ {
		c := samplesCost(a.slots[gi])
		// Gains are sensitivity-discounted (extra samples cannot tighten a
		// posterior the invariants already pin); losses are charged at the
		// full undiscounted uncertainty, because a donor's observations
		// also feed every coupled event's posterior through the network.
		gain := a.wHat[gi] * (1 - samplesCost(a.slots[gi]+1)/c)
		if receiver < 0 || gain > bestGain {
			receiver, bestGain = gi, gain
		}
		if a.slots[gi] <= minSlots {
			continue
		}
		loss := a.wRaw[gi] * (samplesCost(a.slots[gi]-1)/c - 1)
		if donor < 0 || loss < bestLoss {
			donor, bestLoss = gi, loss
		}
	}
	if receiver < 0 || donor < 0 || receiver == donor || bestGain <= hysteresis*bestLoss {
		return // flat gradient: keep the current plan
	}
	a.slots[receiver]++
	a.slots[donor]--
	a.moves++
	// Minimal-edit transition: flip exactly one donor occurrence to the
	// receiver instead of re-interleaving the whole plan. A full rebuild
	// phase-shifts every group's pattern, and a measurement window
	// straddling the transition can land on a group's sparse halves of
	// both patterns — one such starved window pays the full small-n
	// uncertainty penalty. The flipped occurrence is the donor slot
	// farthest (circularly) from the receiver's existing occurrences, so
	// the receiver's spacing stays near-even.
	L := len(a.plan)
	bestPos, bestDist := -1, -1
	for p, g := range a.plan {
		if g != donor {
			continue
		}
		d := L
		for q, h := range a.plan {
			if h != receiver {
				continue
			}
			dd := p - q
			if dd < 0 {
				dd = -dd
			}
			if L-dd < dd {
				dd = L - dd
			}
			if dd < d {
				d = dd
			}
		}
		if d > bestDist {
			bestPos, bestDist = p, d
		}
	}
	a.plan[bestPos] = receiver
}

// samplesCost is the §4.2 uncertainty of a group observed n times per
// window, up to the group's spread: StudentTStdFactor(ν = n−1)/√n, with
// the same ν ≤ 2 fallback TObsStd uses. The cliff between n = 3 and n = 4
// (no finite-variance t below ν = 3) is what makes lifting a group past 4
// samples so much more valuable than anything else.
func samplesCost(n int) float64 {
	f := stats.StudentTStdFactor(float64(n - 1))
	if math.IsInf(f, 1) {
		f = 10
	}
	return f / math.Sqrt(float64(n))
}

// interleave spreads each group's slots evenly across the epoch using
// smooth weighted round-robin: every step each group's credit grows by its
// slot count, the richest group (lowest index on ties) is emitted and pays
// back the total. Group g appears exactly slots[g] times.
func interleave(slots []int, plan []int) []int {
	total := 0
	for _, s := range slots {
		total += s
	}
	credit := make([]int, len(slots))
	for s := 0; s < total; s++ {
		best := -1
		for gi := range slots {
			credit[gi] += slots[gi]
			if best < 0 || credit[gi] > credit[best] {
				best = gi
			}
		}
		credit[best] -= total
		plan = append(plan, best)
	}
	return plan
}

// IntervalSample is one sampling interval's live counter readings: the
// events that were actually counted (fixed counters plus the live group)
// and their noisy per-interval values, parallel slices.
type IntervalSample struct {
	T      int
	Group  int // index into the scheduler's Groups; -1 if no group was live
	Events []uarch.EventID
	Values []float64
}

// Sampler turns a ground-truth trace into the live interval stream a
// multiplexed PMU would deliver: each interval it asks the scheduler which
// group owns the counters, reads fixed events plus that group with
// measurement noise (and optional injected outliers), and emits an
// IntervalSample. It is the streaming counterpart of Multiplex.
type Sampler struct {
	tr    *Trace
	cfg   MuxConfig
	sched Scheduler
	r     *rng.Rand
	fixed []uarch.EventID
	t     int
}

// NewSampler builds a sampler over the trace driven by the scheduler.
func NewSampler(tr *Trace, cfg MuxConfig, sched Scheduler, r *rng.Rand) *Sampler {
	return &Sampler{tr: tr, cfg: cfg, sched: sched, r: r, fixed: tr.Cat.FixedEvents()}
}

// Intervals returns the total stream length.
func (s *Sampler) Intervals() int { return s.tr.Intervals() }

// Catalog returns the catalog the sampler's trace is bound to. Together
// with Next, it makes a *Sampler directly usable as a pkg/bayesperf.Source.
func (s *Sampler) Catalog() *uarch.Catalog { return s.tr.Cat }

// Scheduler returns the multiplexing scheduler driving the sampler.
func (s *Sampler) Scheduler() Scheduler { return s.sched }

// Truth returns the ground-truth trace behind the simulated stream, for
// truth-based evaluation of the corrected output.
func (s *Sampler) Truth() *Trace { return s.tr }

// Next emits the next interval's sample, or ok=false at end of trace.
func (s *Sampler) Next() (sample IntervalSample, ok bool) {
	if s.t >= s.tr.Intervals() {
		return IntervalSample{}, false
	}
	gi := -1
	groups := s.sched.Groups()
	if len(groups) > 0 {
		gi = s.sched.NextGroup()
	}
	live := s.fixed
	if gi >= 0 {
		live = append(append(make([]uarch.EventID, 0, len(s.fixed)+len(groups[gi])), s.fixed...), groups[gi]...)
	}
	sample = IntervalSample{
		T:      s.t,
		Group:  gi,
		Events: live,
		Values: make([]float64, len(live)),
	}
	for i, id := range live {
		truth := s.tr.Series[id][s.t]
		noisy := truth * (1 + s.r.Gaussian(0, s.cfg.NoiseFrac))
		if noisy < 0 {
			noisy = 0
		}
		if s.cfg.OutlierProb > 0 && s.r.Float64() < s.cfg.OutlierProb {
			noisy *= 1 + s.cfg.OutlierMag
		}
		sample.Values[i] = noisy
	}
	s.t++
	return sample, true
}
