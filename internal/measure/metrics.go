package measure

import "bayesperf/internal/obs"

// Metrics is the measurement layer's instrument set: ingestion-quality
// counters shared by every consumer that estimates observations from raw
// readings (the stream engine's ingest loop and the Session batch drain).
// The zero value is metrics-off: nil instruments whose methods no-op.
type Metrics struct {
	// DroppedNonFinite counts NaN/Inf readings discarded at ingestion
	// before they can poison running sums or the factor graph.
	DroppedNonFinite *obs.Counter
	// GumbelRejected counts samples discarded by the Gumbel high-side
	// outlier test before mean/std estimation.
	GumbelRejected *obs.Counter
}

// NewMetrics registers the measure-layer instruments on r and returns the
// set; a nil registry returns the zero (metrics-off) set.
func NewMetrics(r *obs.Registry) Metrics {
	if r == nil {
		return Metrics{}
	}
	return Metrics{
		DroppedNonFinite: r.Counter("bayesperf_measure_dropped_nonfinite_total",
			"Non-finite (NaN/Inf) readings dropped at ingestion."),
		GumbelRejected: r.Counter("bayesperf_measure_gumbel_rejected_total",
			"Readings rejected by the Gumbel high-side outlier test."),
	}
}

// SchedMetrics is the scheduler layer's instrument set, recorded once per
// adaptive epoch. The zero value is metrics-off.
type SchedMetrics struct {
	// Reprioritizations counts epoch-boundary Reprioritize calls.
	Reprioritizations *obs.Counter
	// SlotMoves counts individual slot reassignments across all epochs.
	SlotMoves *obs.Counter
	// EpochRelStd observes the pooled posterior relative std handed to the
	// scheduler at each epoch — the uncertainty signal its decisions chase.
	EpochRelStd *obs.Histogram
}

// NewSchedMetrics registers the scheduler-layer instruments on r and
// returns the set; a nil registry returns the zero (metrics-off) set.
func NewSchedMetrics(r *obs.Registry) SchedMetrics {
	if r == nil {
		return SchedMetrics{}
	}
	return SchedMetrics{
		Reprioritizations: r.Counter("bayesperf_sched_reprioritizations_total",
			"Adaptive-scheduler epoch reprioritizations."),
		SlotMoves: r.Counter("bayesperf_sched_slot_moves_total",
			"Multiplexing slots moved between event groups by the adaptive scheduler."),
		EpochRelStd: r.Histogram("bayesperf_sched_epoch_posterior_relstd",
			"Pooled posterior relative std fed to the adaptive scheduler per epoch.",
			obs.ExponentialBuckets(1e-4, 4, 8)),
	}
}

// RecordEpoch folds one epoch-boundary reprioritization into the
// instruments: movesDelta is the slot moves this epoch, pooledRelStd the
// epoch's pooled posterior relative std.
func (m SchedMetrics) RecordEpoch(movesDelta int, pooledRelStd float64) {
	m.Reprioritizations.Inc()
	if movesDelta > 0 {
		m.SlotMoves.Add(uint64(movesDelta))
	}
	m.EpochRelStd.Observe(pooledRelStd)
}
