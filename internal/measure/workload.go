// Package measure implements BayesPerf's measurement layer: a
// phase-structured ground-truth workload generator and a round-robin
// counter-multiplexing simulator that reproduces the paper's observation
// model (§4.2) — scaled, noisy per-event estimates whose uncertainty comes
// from the Student-t marginal of the observed per-interval samples.
package measure

import (
	"fmt"
	"sort"

	"bayesperf/internal/rng"
	"bayesperf/internal/timeseries"
	"bayesperf/internal/uarch"
)

// Phase is one steady-state region of a workload. Rates are per sampling
// interval; fractions are of the phase's instruction stream. Within a phase
// every interval's primitives jitter around the phase means, but the
// catalogs' invariants hold exactly in every interval by construction.
type Phase struct {
	Name      string
	Intervals int
	InstRate  float64 // mean instructions per interval

	LoadFrac   float64 // fraction of instructions that are loads
	StoreFrac  float64 // fraction that are stores
	BranchFrac float64 // fraction that are branches
	MispRate   float64 // fraction of branches mispredicted

	L1MissRate float64 // fraction of loads missing the L1D
	L2HitFrac  float64 // fraction of L1 misses served by L2
	L3HitFrac  float64 // fraction of post-L2 misses served by L3

	BaseCPI float64 // cycles per instruction before memory penalties
	Jitter  float64 // relative per-interval noise on the phase rates
	// MemJitter multiplies Jitter for the cache-hierarchy draws (L1 miss
	// rate and L2/L3 hit fractions). Zero means 1 (uniform jitter). A
	// thrashing working set makes cache events far spikier than the
	// front-end stream — the asymmetry that uncertainty-driven
	// multiplexing exploits.
	MemJitter float64
}

// memJitter returns the effective cache-hierarchy jitter.
func (p Phase) memJitter() float64 {
	if p.MemJitter <= 0 {
		return p.Jitter
	}
	return p.Jitter * p.MemJitter
}

// Workload is a named sequence of phases.
type Workload struct {
	Name   string
	Phases []Phase
}

// Intervals returns the total number of sampling intervals.
func (w Workload) Intervals() int {
	n := 0
	for _, p := range w.Phases {
		n += p.Intervals
	}
	return n
}

// DefaultWorkload is the evaluation workload: a compute-bound phase, a
// memory-bound phase with heavy cache missing, and a branchy phase — the
// phase changes are what make naive multiplexed extrapolation err (§2).
func DefaultWorkload(intervalsPerPhase int) Workload {
	return Workload{
		Name: "compute-memory-branchy",
		Phases: []Phase{
			{
				Name: "compute", Intervals: intervalsPerPhase, InstRate: 5e6,
				LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.10, MispRate: 0.01,
				L1MissRate: 0.01, L2HitFrac: 0.85, L3HitFrac: 0.80,
				BaseCPI: 0.30, Jitter: 0.03,
			},
			{
				Name: "memory", Intervals: intervalsPerPhase, InstRate: 2e6,
				LoadFrac: 0.38, StoreFrac: 0.14, BranchFrac: 0.08, MispRate: 0.02,
				L1MissRate: 0.12, L2HitFrac: 0.55, L3HitFrac: 0.50,
				BaseCPI: 0.45, Jitter: 0.06,
			},
			{
				Name: "branchy", Intervals: intervalsPerPhase, InstRate: 3.5e6,
				LoadFrac: 0.18, StoreFrac: 0.07, BranchFrac: 0.28, MispRate: 0.08,
				L1MissRate: 0.02, L2HitFrac: 0.75, L3HitFrac: 0.65,
				BaseCPI: 0.40, Jitter: 0.04,
			},
		},
	}
}

// StreamWorkload is a stress workload for the streaming layer: the three
// default phases plus a cache-thrash phase whose working set no longer
// fits — cache-hierarchy rates stay high AND swing hard interval to
// interval (MemJitter), so measurement uncertainty concentrates in the
// cache event groups. The headline stream evaluation runs on
// DefaultWorkload (the thrash phase's wild per-interval swings make the
// DTW metric over-forgive a spiky raw trace); this one exists to validate
// the asymmetric-uncertainty regime itself — see
// TestStreamWorkloadThrashPhase.
func StreamWorkload(intervalsPerPhase int) Workload {
	wl := DefaultWorkload(intervalsPerPhase)
	wl.Name = "compute-memory-branchy-thrash"
	wl.Phases = append(wl.Phases, Phase{
		Name: "thrash", Intervals: intervalsPerPhase, InstRate: 1.5e6,
		LoadFrac: 0.42, StoreFrac: 0.16, BranchFrac: 0.07, MispRate: 0.03,
		L1MissRate: 0.25, L2HitFrac: 0.40, L3HitFrac: 0.35,
		BaseCPI: 0.50, Jitter: 0.05, MemJitter: 6,
	})
	return wl
}

// primitives are the machine-level quantities of one sampling interval from
// which every catalog event derives; building events from shared primitives
// is what makes the declared invariants hold exactly in the ground truth.
type primitives struct {
	loads, stores, branches, misp, other float64
	l1Hit, l1Miss, l2Hit, l3Hit, l3Miss  float64
	inst, cycles, refCycles, pendCycles  float64
}

// jittered draws a rate around mean with the phase's relative jitter,
// clamped positive.
func jittered(r *rng.Rand, mean, jitter float64) float64 {
	v := r.Gaussian(mean, jitter*mean)
	if v < 0 {
		return 0
	}
	return v
}

// drawPrimitives samples one interval of the phase.
func drawPrimitives(p Phase, r *rng.Rand) primitives {
	var pr primitives
	pr.inst = jittered(r, p.InstRate, p.Jitter)
	pr.loads = jittered(r, p.LoadFrac, p.Jitter) * pr.inst
	pr.stores = jittered(r, p.StoreFrac, p.Jitter) * pr.inst
	pr.branches = jittered(r, p.BranchFrac, p.Jitter) * pr.inst
	pr.other = pr.inst - pr.loads - pr.stores - pr.branches
	pr.misp = jittered(r, p.MispRate, p.Jitter) * pr.branches

	mj := p.memJitter()
	pr.l1Miss = jittered(r, p.L1MissRate, mj) * pr.loads
	pr.l1Hit = pr.loads - pr.l1Miss
	pr.l2Hit = jittered(r, p.L2HitFrac, mj) * pr.l1Miss
	rest := pr.l1Miss - pr.l2Hit
	pr.l3Hit = jittered(r, p.L3HitFrac, mj) * rest
	pr.l3Miss = rest - pr.l3Hit

	// Cycle model: base CPI plus idealized memory latencies (matching the
	// Backend_Bound derived-event weights in the Skylake catalog).
	pr.cycles = p.BaseCPI*pr.inst + 12*pr.l2Hit + 44*pr.l3Hit + 200*pr.l3Miss
	pr.refCycles = 0.94 * pr.cycles
	pr.pendCycles = 10 * pr.l1Miss
	return pr
}

// primOrder is the canonical evaluation order of the machine primitives.
// Model sums accumulate in this order — never in map order — so a
// multi-primitive event's value is deterministic and a spec-loaded catalog
// reproduces the builder catalog's ground truth bit for bit.
var primOrder = []string{
	"inst", "cycles", "ref_cycles", "pend_cycles",
	"loads", "stores", "branches", "misp", "other",
	"l1_hit", "l1_miss", "l2_hit", "l3_hit", "l3_miss",
}

// primValue maps one primitive name onto the interval's draw.
func primValue(name string, p primitives) (float64, bool) {
	switch name {
	case "inst":
		return p.inst, true
	case "cycles":
		return p.cycles, true
	case "ref_cycles":
		return p.refCycles, true
	case "pend_cycles":
		return p.pendCycles, true
	case "loads":
		return p.loads, true
	case "stores":
		return p.stores, true
	case "branches":
		return p.branches, true
	case "misp":
		return p.misp, true
	case "other":
		return p.other, true
	case "l1_hit":
		return p.l1Hit, true
	case "l1_miss":
		return p.l1Miss, true
	case "l2_hit":
		return p.l2Hit, true
	case "l3_hit":
		return p.l3Hit, true
	case "l3_miss":
		return p.l3Miss, true
	}
	return 0, false
}

// eventValue evaluates one catalog event's declared primitive model
// (Event.Model, Σ coeff·primitive) on the interval's draw. Events without a
// model — or with a key outside the primitive set, which the canonical-order
// walk would otherwise silently skip — panic, which the tests turn into a
// catalog/generator drift check; ValidateModels offers the polite,
// error-returning form of the same check for catalogs loaded from
// user-supplied JSON.
func eventValue(ev uarch.Event, p primitives) float64 {
	if len(ev.Model) == 0 {
		panic(fmt.Sprintf("measure: no ground-truth model for event %q", ev.Name))
	}
	var s float64
	matched := 0
	for _, name := range primOrder {
		coeff, ok := ev.Model[name]
		if !ok {
			continue
		}
		matched++
		v, _ := primValue(name, p)
		s += coeff * v
	}
	if matched != len(ev.Model) {
		var unknown []string
		for name := range ev.Model {
			if _, ok := primValue(name, p); !ok {
				unknown = append(unknown, name)
			}
		}
		sort.Strings(unknown)
		panic(fmt.Sprintf("measure: event %q model references unknown primitives %q (known: %v)",
			ev.Name, unknown, primOrder))
	}
	return s
}

// ValidateModels checks that every event in the catalog declares a
// ground-truth model over known primitives, so GroundTruth cannot panic on
// it. Call it after loading a catalog spec from untrusted input.
func ValidateModels(cat *uarch.Catalog) error {
	for _, ev := range cat.Events {
		if len(ev.Model) == 0 {
			return fmt.Errorf("measure: %s: event %s declares no ground-truth model", cat.Arch, ev.Name)
		}
		var unknown []string
		for name := range ev.Model {
			if _, ok := primValue(name, primitives{}); !ok {
				unknown = append(unknown, name)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			return fmt.Errorf("measure: %s: event %s references unknown primitives %q (known: %v)",
				cat.Arch, ev.Name, unknown, primOrder)
		}
	}
	return nil
}

// Trace is the ground-truth event trace of one workload run on one catalog:
// one uniformly sampled series per event, in EventID order.
type Trace struct {
	Cat    *uarch.Catalog
	Series []timeseries.Series
}

// GroundTruth simulates the workload on the catalog's idealized core,
// producing the polling-mode trace every event would show if the PMU had
// unlimited counters. All catalog invariants hold exactly in every interval.
func GroundTruth(cat *uarch.Catalog, wl Workload, r *rng.Rand) *Trace {
	tr := &Trace{Cat: cat, Series: make([]timeseries.Series, cat.NumEvents())}
	total := wl.Intervals()
	for i := range tr.Series {
		tr.Series[i] = make(timeseries.Series, 0, total)
	}
	for _, ph := range wl.Phases {
		for t := 0; t < ph.Intervals; t++ {
			p := drawPrimitives(ph, r)
			for id := range tr.Series {
				tr.Series[id] = append(tr.Series[id], eventValue(cat.Event(uarch.EventID(id)), p))
			}
		}
	}
	return tr
}

// Totals returns the whole-run true count per event.
func (t *Trace) Totals() []float64 {
	out := make([]float64, len(t.Series))
	for i, s := range t.Series {
		out[i] = s.Sum()
	}
	return out
}

// Intervals returns the trace length.
func (t *Trace) Intervals() int {
	if len(t.Series) == 0 {
		return 0
	}
	return len(t.Series[0])
}
