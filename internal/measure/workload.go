// Package measure implements BayesPerf's measurement layer: a
// phase-structured ground-truth workload generator and a round-robin
// counter-multiplexing simulator that reproduces the paper's observation
// model (§4.2) — scaled, noisy per-event estimates whose uncertainty comes
// from the Student-t marginal of the observed per-interval samples.
package measure

import (
	"fmt"

	"bayesperf/internal/rng"
	"bayesperf/internal/timeseries"
	"bayesperf/internal/uarch"
)

// Phase is one steady-state region of a workload. Rates are per sampling
// interval; fractions are of the phase's instruction stream. Within a phase
// every interval's primitives jitter around the phase means, but the
// catalogs' invariants hold exactly in every interval by construction.
type Phase struct {
	Name      string
	Intervals int
	InstRate  float64 // mean instructions per interval

	LoadFrac   float64 // fraction of instructions that are loads
	StoreFrac  float64 // fraction that are stores
	BranchFrac float64 // fraction that are branches
	MispRate   float64 // fraction of branches mispredicted

	L1MissRate float64 // fraction of loads missing the L1D
	L2HitFrac  float64 // fraction of L1 misses served by L2
	L3HitFrac  float64 // fraction of post-L2 misses served by L3

	BaseCPI float64 // cycles per instruction before memory penalties
	Jitter  float64 // relative per-interval noise on the phase rates
	// MemJitter multiplies Jitter for the cache-hierarchy draws (L1 miss
	// rate and L2/L3 hit fractions). Zero means 1 (uniform jitter). A
	// thrashing working set makes cache events far spikier than the
	// front-end stream — the asymmetry that uncertainty-driven
	// multiplexing exploits.
	MemJitter float64
}

// memJitter returns the effective cache-hierarchy jitter.
func (p Phase) memJitter() float64 {
	if p.MemJitter <= 0 {
		return p.Jitter
	}
	return p.Jitter * p.MemJitter
}

// Workload is a named sequence of phases.
type Workload struct {
	Name   string
	Phases []Phase
}

// Intervals returns the total number of sampling intervals.
func (w Workload) Intervals() int {
	n := 0
	for _, p := range w.Phases {
		n += p.Intervals
	}
	return n
}

// DefaultWorkload is the evaluation workload: a compute-bound phase, a
// memory-bound phase with heavy cache missing, and a branchy phase — the
// phase changes are what make naive multiplexed extrapolation err (§2).
func DefaultWorkload(intervalsPerPhase int) Workload {
	return Workload{
		Name: "compute-memory-branchy",
		Phases: []Phase{
			{
				Name: "compute", Intervals: intervalsPerPhase, InstRate: 5e6,
				LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.10, MispRate: 0.01,
				L1MissRate: 0.01, L2HitFrac: 0.85, L3HitFrac: 0.80,
				BaseCPI: 0.30, Jitter: 0.03,
			},
			{
				Name: "memory", Intervals: intervalsPerPhase, InstRate: 2e6,
				LoadFrac: 0.38, StoreFrac: 0.14, BranchFrac: 0.08, MispRate: 0.02,
				L1MissRate: 0.12, L2HitFrac: 0.55, L3HitFrac: 0.50,
				BaseCPI: 0.45, Jitter: 0.06,
			},
			{
				Name: "branchy", Intervals: intervalsPerPhase, InstRate: 3.5e6,
				LoadFrac: 0.18, StoreFrac: 0.07, BranchFrac: 0.28, MispRate: 0.08,
				L1MissRate: 0.02, L2HitFrac: 0.75, L3HitFrac: 0.65,
				BaseCPI: 0.40, Jitter: 0.04,
			},
		},
	}
}

// StreamWorkload is a stress workload for the streaming layer: the three
// default phases plus a cache-thrash phase whose working set no longer
// fits — cache-hierarchy rates stay high AND swing hard interval to
// interval (MemJitter), so measurement uncertainty concentrates in the
// cache event groups. The headline stream evaluation runs on
// DefaultWorkload (the thrash phase's wild per-interval swings make the
// DTW metric over-forgive a spiky raw trace); this one exists to validate
// the asymmetric-uncertainty regime itself — see
// TestStreamWorkloadThrashPhase.
func StreamWorkload(intervalsPerPhase int) Workload {
	wl := DefaultWorkload(intervalsPerPhase)
	wl.Name = "compute-memory-branchy-thrash"
	wl.Phases = append(wl.Phases, Phase{
		Name: "thrash", Intervals: intervalsPerPhase, InstRate: 1.5e6,
		LoadFrac: 0.42, StoreFrac: 0.16, BranchFrac: 0.07, MispRate: 0.03,
		L1MissRate: 0.25, L2HitFrac: 0.40, L3HitFrac: 0.35,
		BaseCPI: 0.50, Jitter: 0.05, MemJitter: 6,
	})
	return wl
}

// primitives are the machine-level quantities of one sampling interval from
// which every catalog event derives; building events from shared primitives
// is what makes the declared invariants hold exactly in the ground truth.
type primitives struct {
	loads, stores, branches, misp, other float64
	l1Hit, l1Miss, l2Hit, l3Hit, l3Miss  float64
	inst, cycles, refCycles, pendCycles  float64
}

// jittered draws a rate around mean with the phase's relative jitter,
// clamped positive.
func jittered(r *rng.Rand, mean, jitter float64) float64 {
	v := r.Gaussian(mean, jitter*mean)
	if v < 0 {
		return 0
	}
	return v
}

// drawPrimitives samples one interval of the phase.
func drawPrimitives(p Phase, r *rng.Rand) primitives {
	var pr primitives
	pr.inst = jittered(r, p.InstRate, p.Jitter)
	pr.loads = jittered(r, p.LoadFrac, p.Jitter) * pr.inst
	pr.stores = jittered(r, p.StoreFrac, p.Jitter) * pr.inst
	pr.branches = jittered(r, p.BranchFrac, p.Jitter) * pr.inst
	pr.other = pr.inst - pr.loads - pr.stores - pr.branches
	pr.misp = jittered(r, p.MispRate, p.Jitter) * pr.branches

	mj := p.memJitter()
	pr.l1Miss = jittered(r, p.L1MissRate, mj) * pr.loads
	pr.l1Hit = pr.loads - pr.l1Miss
	pr.l2Hit = jittered(r, p.L2HitFrac, mj) * pr.l1Miss
	rest := pr.l1Miss - pr.l2Hit
	pr.l3Hit = jittered(r, p.L3HitFrac, mj) * rest
	pr.l3Miss = rest - pr.l3Hit

	// Cycle model: base CPI plus idealized memory latencies (matching the
	// Backend_Bound derived-event weights in the Skylake catalog).
	pr.cycles = p.BaseCPI*pr.inst + 12*pr.l2Hit + 44*pr.l3Hit + 200*pr.l3Miss
	pr.refCycles = 0.94 * pr.cycles
	pr.pendCycles = 10 * pr.l1Miss
	return pr
}

// eventValue maps one catalog event name onto the interval's primitives.
// Event names are globally unique across the built-in catalogs, so a single
// mapping serves both; unknown names panic, which the tests turn into a
// catalog/generator drift check.
func eventValue(name string, p primitives) float64 {
	switch name {
	// Skylake.
	case "INST_RETIRED.ANY":
		return p.inst
	case "CPU_CLK_UNHALTED.THREAD":
		return p.cycles
	case "CPU_CLK_UNHALTED.REF_TSC":
		return p.refCycles
	case "MEM_INST_RETIRED.ALL_LOADS":
		return p.loads
	case "MEM_INST_RETIRED.ALL_STORES":
		return p.stores
	case "BR_INST_RETIRED.ALL_BRANCHES":
		return p.branches
	case "BR_MISP_RETIRED.ALL_BRANCHES":
		return p.misp
	case "BR_PRED_RETIRED.ALL_BRANCHES":
		return p.branches - p.misp
	case "INST_RETIRED.OTHER":
		return p.other
	case "MEM_LOAD_RETIRED.L1_HIT":
		return p.l1Hit
	case "MEM_LOAD_RETIRED.L1_MISS":
		return p.l1Miss
	case "MEM_LOAD_RETIRED.L2_HIT":
		return p.l2Hit
	case "MEM_LOAD_RETIRED.L3_HIT":
		return p.l3Hit
	case "MEM_LOAD_RETIRED.L3_MISS":
		return p.l3Miss
	case "L1D_PEND_MISS.PENDING":
		return p.pendCycles
	case "OFFCORE_RESPONSE.DEMAND_DATA_RD":
		return p.l3Hit + p.l3Miss
	case "OFFCORE_RESPONSE.DEMAND_DATA_RD.L3_MISS":
		return p.l3Miss
	// Power9.
	case "PM_INST_CMPL":
		return p.inst
	case "PM_RUN_CYC":
		return p.cycles
	case "PM_LD_CMPL":
		return p.loads
	case "PM_ST_CMPL":
		return p.stores
	case "PM_BR_CMPL":
		return p.branches
	case "PM_BR_MPRED_CMPL":
		return p.misp
	case "PM_INST_OTHER_CMPL":
		return p.other
	case "PM_LD_HIT_L1":
		return p.l1Hit
	case "PM_LD_MISS_L1":
		return p.l1Miss
	case "PM_DATA_FROM_L2":
		return p.l2Hit
	case "PM_DATA_FROM_L3":
		return p.l3Hit
	case "PM_DATA_FROM_MEM":
		return p.l3Miss
	}
	panic(fmt.Sprintf("measure: no ground-truth model for event %q", name))
}

// Trace is the ground-truth event trace of one workload run on one catalog:
// one uniformly sampled series per event, in EventID order.
type Trace struct {
	Cat    *uarch.Catalog
	Series []timeseries.Series
}

// GroundTruth simulates the workload on the catalog's idealized core,
// producing the polling-mode trace every event would show if the PMU had
// unlimited counters. All catalog invariants hold exactly in every interval.
func GroundTruth(cat *uarch.Catalog, wl Workload, r *rng.Rand) *Trace {
	tr := &Trace{Cat: cat, Series: make([]timeseries.Series, cat.NumEvents())}
	total := wl.Intervals()
	for i := range tr.Series {
		tr.Series[i] = make(timeseries.Series, 0, total)
	}
	for _, ph := range wl.Phases {
		for t := 0; t < ph.Intervals; t++ {
			p := drawPrimitives(ph, r)
			for id := range tr.Series {
				tr.Series[id] = append(tr.Series[id], eventValue(cat.Event(uarch.EventID(id)).Name, p))
			}
		}
	}
	return tr
}

// Totals returns the whole-run true count per event.
func (t *Trace) Totals() []float64 {
	out := make([]float64, len(t.Series))
	for i, s := range t.Series {
		out[i] = s.Sum()
	}
	return out
}

// Intervals returns the trace length.
func (t *Trace) Intervals() int {
	if len(t.Series) == 0 {
		return 0
	}
	return len(t.Series[0])
}
