package measure

import (
	"testing"

	"bayesperf/internal/rng"
	"bayesperf/internal/uarch"
)

// BenchmarkMultiplex tracks the batch measurement hot path: one full
// multiplexed run (group scheduling, per-interval sampling, Student-t std
// estimation) over the default three-phase workload.
func BenchmarkMultiplex(b *testing.B) {
	cat := uarch.Skylake()
	tr := GroundTruth(cat, DefaultWorkload(200), rng.New(1))
	cfg := DefaultMuxConfig()
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Multiplex(tr, cfg, r)
		if res.Est[0].Std <= 0 {
			b.Fatal("degenerate estimate")
		}
	}
}

// BenchmarkMultiplexGumbel measures the added cost of CounterMiner-style
// outlier rejection on the same run.
func BenchmarkMultiplexGumbel(b *testing.B) {
	cat := uarch.Skylake()
	tr := GroundTruth(cat, DefaultWorkload(200), rng.New(1))
	cfg := DefaultMuxConfig()
	cfg.OutlierProb = 0.02
	cfg.OutlierMag = 8
	cfg.GumbelReject = true
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Multiplex(tr, cfg, r)
		if res.Est[0].Std <= 0 {
			b.Fatal("degenerate estimate")
		}
	}
}

// BenchmarkSampler tracks the per-interval cost of the streaming sampler.
func BenchmarkSampler(b *testing.B) {
	cat := uarch.Skylake()
	tr := GroundTruth(cat, DefaultWorkload(200), rng.New(1))
	cfg := DefaultMuxConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smp := NewSampler(tr, cfg, NewRoundRobin(cat), rng.New(3))
		for {
			if _, ok := smp.Next(); !ok {
				break
			}
		}
	}
}
