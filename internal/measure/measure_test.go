package measure

import (
	"math"
	"testing"

	"bayesperf/internal/rng"
	"bayesperf/internal/stats"
	"bayesperf/internal/uarch"
)

// TestEstimateSamplesMatchesScalar: the batch estimator is one
// EstimateSample per event, bit for bit, including the never-counted zero
// Sample.
func TestEstimateSamplesMatchesScalar(t *testing.T) {
	cfg := DefaultMuxConfig()
	xss := [][]float64{
		{1e6, 1.1e6, 0.9e6},
		nil, // never counted
		{5e3},
		{2e6, 2e6, 2e6, 2e6, 2e6}, // full coverage
	}
	const intervals = 5
	got := EstimateSamples(xss, intervals, cfg)
	if len(got) != len(xss) {
		t.Fatalf("%d samples, want %d", len(got), len(xss))
	}
	for id, xs := range xss {
		want := EstimateSample(xs, intervals, cfg)
		if got[id] != want {
			t.Errorf("event %d: batch %+v != scalar %+v", id, got[id], want)
		}
	}
	if got[1].N != 0 || got[1].Total != 0 {
		t.Errorf("never-counted event estimated as %+v", got[1])
	}
}

func TestGroundTruthSatisfiesInvariants(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		tr := GroundTruth(cat, DefaultWorkload(40), rng.New(1))
		if tr.Intervals() != 120 {
			t.Fatalf("%s: got %d intervals, want 120", cat.Arch, tr.Intervals())
		}
		// Invariants must hold exactly per interval and on totals.
		for ti := 0; ti < tr.Intervals(); ti++ {
			vals := make([]float64, cat.NumEvents())
			for id := range vals {
				vals[id] = tr.Series[id][ti]
			}
			for _, rel := range cat.Rels {
				if res := math.Abs(rel.Residual(vals)); res > 1e-6*math.Max(rel.Magnitude(vals), 1) {
					t.Fatalf("%s: relation %s residual %g at interval %d",
						cat.Arch, rel.Name, res, ti)
				}
			}
		}
		totals := tr.Totals()
		for _, rel := range cat.Rels {
			if res := math.Abs(rel.Residual(totals)); res > 1e-6*rel.Magnitude(totals) {
				t.Errorf("%s: relation %s residual %g on totals", cat.Arch, rel.Name, res)
			}
		}
		for id, tot := range totals {
			if tot < 0 || math.IsNaN(tot) {
				t.Errorf("%s: event %s total = %g", cat.Arch, cat.Event(uarch.EventID(id)).Name, tot)
			}
		}
	}
}

// TestStreamWorkloadThrashPhase: the streaming stress workload keeps every
// catalog invariant intact while making the cache-hierarchy events
// materially spikier than the front-end stream during the thrash phase —
// the asymmetry adaptive multiplexing exists to exploit.
func TestStreamWorkloadThrashPhase(t *testing.T) {
	cat := uarch.Skylake()
	wl := StreamWorkload(50)
	if len(wl.Phases) != 4 || wl.Phases[3].MemJitter <= 1 {
		t.Fatalf("unexpected stream workload shape: %+v", wl.Phases)
	}
	tr := GroundTruth(cat, wl, rng.New(6))
	for ti := 0; ti < tr.Intervals(); ti++ {
		vals := make([]float64, cat.NumEvents())
		for id := range vals {
			vals[id] = tr.Series[id][ti]
		}
		for _, rel := range cat.Rels {
			if res := math.Abs(rel.Residual(vals)); res > 1e-6*math.Max(rel.Magnitude(vals), 1) {
				t.Fatalf("relation %s residual %g at interval %d", rel.Name, res, ti)
			}
		}
	}
	// In the thrash phase the cache-hierarchy events must be far spikier
	// than the front-end stream, and spikier than their own compute-phase
	// behavior.
	relSpread := func(name string, lo, hi int) float64 {
		seg := tr.Series[cat.MustEvent(name)][lo:hi]
		return stats.Std(seg) / stats.Mean(seg)
	}
	l3Thrash := relSpread("MEM_LOAD_RETIRED.L3_MISS", 150, 200)
	loadsThrash := relSpread("MEM_INST_RETIRED.ALL_LOADS", 150, 200)
	l3Compute := relSpread("MEM_LOAD_RETIRED.L3_MISS", 0, 50)
	if l3Thrash < 3*loadsThrash {
		t.Errorf("thrash L3-miss rel spread %.3f not at least 3x the load stream's %.3f", l3Thrash, loadsThrash)
	}
	if l3Thrash <= l3Compute {
		t.Errorf("thrash L3-miss rel spread %.3f not above compute phase's %.3f", l3Thrash, l3Compute)
	}
}

func TestScheduleGroupsRespectConstraints(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		groups := scheduleGroups(cat)
		if len(groups) < 2 {
			t.Errorf("%s: %d programmable events fit one group; multiplexing degenerate",
				cat.Arch, len(cat.ProgrammableEvents()))
		}
		seen := make(map[uarch.EventID]bool)
		for _, g := range groups {
			if !canSchedule(cat, g) {
				t.Errorf("%s: emitted unschedulable group %v", cat.Arch, g)
			}
			if len(g) > cat.NumProg {
				t.Errorf("%s: group of %d exceeds %d counters", cat.Arch, len(g), cat.NumProg)
			}
			msr := 0
			for _, id := range g {
				if seen[id] {
					t.Errorf("%s: event %s in two groups", cat.Arch, cat.Event(id).Name)
				}
				seen[id] = true
				if cat.Event(id).NeedsMSR {
					msr++
				}
			}
			if msr > cat.NumMSR {
				t.Errorf("%s: group uses %d MSRs, budget %d", cat.Arch, msr, cat.NumMSR)
			}
		}
		for _, id := range cat.ProgrammableEvents() {
			if !seen[id] {
				t.Errorf("%s: event %s never scheduled", cat.Arch, cat.Event(id).Name)
			}
		}
	}
}

func TestCanScheduleRejectsConflicts(t *testing.T) {
	cat := uarch.Skylake()
	pend := cat.MustEvent("L1D_PEND_MISS.PENDING")
	// Two copies of a counter-2-only event can never co-schedule; simulate
	// by checking the single-counter event plus three any-counter events
	// passes, while exceeding the MSR budget fails.
	offA := cat.MustEvent("OFFCORE_RESPONSE.DEMAND_DATA_RD")
	offB := cat.MustEvent("OFFCORE_RESPONSE.DEMAND_DATA_RD.L3_MISS")
	loads := cat.MustEvent("MEM_INST_RETIRED.ALL_LOADS")
	stores := cat.MustEvent("MEM_INST_RETIRED.ALL_STORES")
	if !canSchedule(cat, []uarch.EventID{pend, offA, offB, loads}) {
		t.Error("schedulable group rejected")
	}
	if canSchedule(cat, []uarch.EventID{pend, offA, offB, loads, stores}) {
		t.Error("5-event group accepted with 4 counters")
	}
	// Exercise the counter-matching backtracker itself (not the MSR
	// budget): two copies of the counter-2-only event both demand the same
	// counter, which no assignment can satisfy.
	if canSchedule(cat, []uarch.EventID{pend, pend}) {
		t.Error("two events pinned to the same single counter accepted")
	}
}

func TestMultiplexEstimates(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		r := rng.New(7)
		tr := GroundTruth(cat, DefaultWorkload(60), r.Split())
		mux := Multiplex(tr, DefaultMuxConfig(), r.Split())
		truth := tr.Totals()
		intervals := tr.Intervals()

		var rawErr stats.Running
		for id, est := range mux.Est {
			ev := cat.Event(uarch.EventID(id))
			if est.Std <= 0 || math.IsNaN(est.Std) {
				t.Errorf("%s: %s std = %g", cat.Arch, ev.Name, est.Std)
			}
			if ev.Fixed {
				if est.N != intervals {
					t.Errorf("%s: fixed %s counted %d/%d intervals", cat.Arch, ev.Name, est.N, intervals)
				}
			} else {
				if est.N >= intervals {
					t.Errorf("%s: programmable %s counted every interval", cat.Arch, ev.Name)
				}
				if est.N == 0 {
					t.Errorf("%s: %s never counted", cat.Arch, ev.Name)
				}
			}
			// Scaled estimates are in the right ballpark (within 50%).
			if truth[id] > 0 && stats.RelErr(est.Total, truth[id], 1) > 0.5 {
				t.Errorf("%s: %s estimate %.3g vs truth %.3g", cat.Arch, ev.Name, est.Total, truth[id])
			}
			rawErr.Add(stats.RelErr(est.Total, truth[id], 1))
		}
		// Multiplexing must actually introduce error — otherwise the
		// correction demo is vacuous.
		if rawErr.Mean() == 0 {
			t.Errorf("%s: multiplexed estimates are exact; no error to correct", cat.Arch)
		}
	}
}

// TestMultiplexShortRun covers runs shorter than the group rotation: the
// never-live group's events get an explicit zero Sample (N == 0) rather
// than a NaN observation.
func TestMultiplexShortRun(t *testing.T) {
	cat := uarch.Skylake()
	wl := Workload{Name: "tiny", Phases: []Phase{{
		Name: "p", Intervals: 3, InstRate: 1e6,
		LoadFrac: 0.2, StoreFrac: 0.1, BranchFrac: 0.1, MispRate: 0.02,
		L1MissRate: 0.05, L2HitFrac: 0.6, L3HitFrac: 0.5,
		BaseCPI: 0.4, Jitter: 0.05,
	}}}
	tr := GroundTruth(cat, wl, rng.New(2))
	mux := Multiplex(tr, DefaultMuxConfig(), rng.New(3))
	if len(mux.Groups) <= 3 {
		t.Skipf("need more groups than intervals to exercise the path (got %d)", len(mux.Groups))
	}
	sawUncounted := false
	for id, est := range mux.Est {
		if math.IsNaN(est.Std) || math.IsNaN(est.Total) {
			t.Errorf("event %d has NaN estimate %+v", id, est)
		}
		if est.N == 0 {
			sawUncounted = true
			if est.Total != 0 || est.Std != 0 {
				t.Errorf("uncounted event %d has non-zero sample %+v", id, est)
			}
		}
	}
	if !sawUncounted {
		t.Error("3-interval run with 4 groups produced no uncounted events")
	}
}

// TestMultiplexCorruptedSeries: corrupted readings (NaN or Inf) are
// dropped at collection regardless of the Gumbel switch. An event whose
// every reading is corrupted comes back with no estimate (N=0, the
// never-counted convention) instead of panicking in the extrapolation or
// shipping NaN totals downstream; a single corrupted reading merely costs
// one sample.
func TestMultiplexCorruptedSeries(t *testing.T) {
	for _, reject := range []bool{false, true} {
		for _, bad := range []float64{math.NaN(), math.Inf(1)} {
			cat := uarch.Skylake()
			tr := GroundTruth(cat, DefaultWorkload(40), rng.New(1))
			allBad := cat.MustEvent("MEM_INST_RETIRED.ALL_LOADS")
			for ti := range tr.Series[allBad] {
				tr.Series[allBad][ti] = bad
			}
			oneBad := cat.MustEvent("MEM_INST_RETIRED.ALL_STORES")
			tr.Series[oneBad][7] = bad

			cfg := DefaultMuxConfig()
			cfg.GumbelReject = reject
			res := Multiplex(tr, cfg, rng.New(3))
			if est := res.Est[allBad]; est.N != 0 {
				t.Errorf("reject=%v bad=%v: fully corrupted event has N=%d, want 0", reject, bad, est.N)
			}
			// Every estimate that exists is finite and usable.
			for id, est := range res.Est {
				if est.N == 0 {
					continue
				}
				if math.IsNaN(est.Total) || math.IsInf(est.Total, 0) ||
					math.IsNaN(est.Std) || math.IsInf(est.Std, 0) || est.Std <= 0 {
					t.Errorf("reject=%v bad=%v: event %d estimate poisoned: total=%v std=%v",
						reject, bad, id, est.Total, est.Std)
				}
			}
		}
	}
}

func TestMultiplexDeterminism(t *testing.T) {
	cat := uarch.Skylake()
	tr := GroundTruth(cat, DefaultWorkload(30), rng.New(5))
	a := Multiplex(tr, DefaultMuxConfig(), rng.New(9))
	b := Multiplex(tr, DefaultMuxConfig(), rng.New(9))
	for id := range a.Est {
		if a.Est[id] != b.Est[id] {
			t.Fatalf("estimates diverged for event %d", id)
		}
	}
}

// TestGumbelRejectionReducesError injects CounterMiner-style corrupted
// readings and checks that turning on Gumbel rejection (a pure
// post-processing step, so both runs see byte-identical samples) lowers the
// mean relative estimation error.
func TestGumbelRejectionReducesError(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		tr := GroundTruth(cat, DefaultWorkload(80), rng.New(13))
		truth := tr.Totals()

		cfg := DefaultMuxConfig()
		cfg.OutlierProb = 0.02
		cfg.OutlierMag = 8

		plain := Multiplex(tr, cfg, rng.New(17))
		cfg.GumbelReject = true
		filtered := Multiplex(tr, cfg, rng.New(17))

		var plainErr, filteredErr stats.Running
		sawRejection := false
		for id := range truth {
			plainErr.Add(stats.RelErr(plain.Est[id].Total, truth[id], 1))
			filteredErr.Add(stats.RelErr(filtered.Est[id].Total, truth[id], 1))
			if plain.Est[id].Rejected != 0 {
				t.Errorf("%s: rejection reported with GumbelReject off", cat.Arch)
			}
			if filtered.Est[id].Rejected > 0 {
				sawRejection = true
			}
			// Coverage bookkeeping counts counted intervals, not kept ones.
			if filtered.Est[id].N != plain.Est[id].N {
				t.Errorf("%s: event %d counted-interval count changed under rejection", cat.Arch, id)
			}
		}
		if !sawRejection {
			t.Fatalf("%s: outlier injection produced no rejections", cat.Arch)
		}
		if filteredErr.Mean() >= plainErr.Mean() {
			t.Errorf("%s: Gumbel rejection raised mean error: %.4f%% -> %.4f%%",
				cat.Arch, 100*plainErr.Mean(), 100*filteredErr.Mean())
		}
	}
}

// TestSamplerMatchesMultiplexLiveness: the streaming sampler under a
// round-robin scheduler must reproduce exactly the liveness pattern the
// batch simulator uses (group g live at t ≡ g mod numGroups), with fixed
// events present in every interval.
func TestSamplerMatchesMultiplexLiveness(t *testing.T) {
	cat := uarch.Skylake()
	tr := GroundTruth(cat, DefaultWorkload(20), rng.New(3))
	sched := NewRoundRobin(cat)
	numGroups := len(sched.Groups())
	smp := NewSampler(tr, DefaultMuxConfig(), sched, rng.New(4))

	fixed := make(map[uarch.EventID]bool)
	for _, id := range cat.FixedEvents() {
		fixed[id] = true
	}
	seen := 0
	for {
		s, ok := smp.Next()
		if !ok {
			break
		}
		if s.T != seen {
			t.Fatalf("interval %d reported as T=%d", seen, s.T)
		}
		if s.Group != seen%numGroups {
			t.Fatalf("interval %d: live group %d, want %d", seen, s.Group, seen%numGroups)
		}
		if len(s.Events) != len(s.Values) {
			t.Fatalf("interval %d: %d events, %d values", seen, len(s.Events), len(s.Values))
		}
		got := make(map[uarch.EventID]bool)
		for i, id := range s.Events {
			got[id] = true
			if s.Values[i] < 0 || math.IsNaN(s.Values[i]) {
				t.Fatalf("interval %d: event %s value %v", seen, cat.Event(id).Name, s.Values[i])
			}
		}
		for id := range fixed {
			if !got[id] {
				t.Fatalf("interval %d: fixed event %s not counted", seen, cat.Event(id).Name)
			}
		}
		for _, id := range sched.Groups()[s.Group] {
			if !got[id] {
				t.Fatalf("interval %d: live-group event %s not counted", seen, cat.Event(id).Name)
			}
		}
		if len(got) != len(fixed)+len(sched.Groups()[s.Group]) {
			t.Fatalf("interval %d: unexpected extra events counted", seen)
		}
		seen++
	}
	if seen != tr.Intervals() {
		t.Fatalf("sampler emitted %d intervals, want %d", seen, tr.Intervals())
	}
}

// TestAdaptiveSchedulerPlan checks the slot-allocation mechanics: before
// feedback the plan is round-robin; after feedback the most uncertain group
// gains slots, no group starves, and the plan length equals the epoch.
func TestAdaptiveSchedulerPlan(t *testing.T) {
	cat := uarch.Skylake()
	if a := NewAdaptive(cat, 0); a.EpochLen() != 4*len(a.Groups()) {
		t.Fatalf("default epoch = %d, want %d", a.EpochLen(), 4*len(a.Groups()))
	}
	// Use an epoch with slack above the 5-slot floor so the descent has
	// somewhere to move slots.
	a := NewAdaptive(cat, 32)
	ng := len(a.Groups())
	for i := 0; i < 2*ng; i++ {
		if g := a.NextGroup(); g != i%ng {
			t.Fatalf("pre-feedback slot %d = group %d, want round-robin %d", i, g, i%ng)
		}
	}

	// Posterior feedback: all events certain except group 0's events,
	// every event fully driven by its own observation (obsStd == std).
	mean := make([]float64, cat.NumEvents())
	std := make([]float64, cat.NumEvents())
	for id := range mean {
		mean[id] = 1e6
		std[id] = 1e3 // 0.1% relative
	}
	for _, id := range a.Groups()[0] {
		std[id] = 2e5 // 20% relative: group 0 is starving for slots
	}
	// One slot moves per epoch; feed the same gradient until it flattens
	// (every donor at the 2-slot floor).
	for i := 0; i < 3*a.EpochLen(); i++ {
		a.Reprioritize(mean, std, std)
	}
	if a.Reprioritizations() != 3*a.EpochLen() {
		t.Fatalf("reprioritizations = %d, want %d", a.Reprioritizations(), 3*a.EpochLen())
	}
	if a.Moves() == 0 {
		t.Fatal("gradient descent never moved a slot")
	}

	counts := make([]int, ng)
	for i := 0; i < a.EpochLen(); i++ {
		counts[a.NextGroup()]++
	}
	totalSlots := 0
	for gi, c := range counts {
		totalSlots += c
		if c < 5 {
			t.Errorf("group %d starved to %d slots (floor is 5)", gi, c)
		}
		if gi != 0 && c >= counts[0] {
			t.Errorf("group %d got %d slots, not fewer than uncertain group 0's %d", gi, c, counts[0])
		}
	}
	if totalSlots != a.EpochLen() {
		t.Errorf("plan length %d != epoch %d", totalSlots, a.EpochLen())
	}
	// With one group vastly more uncertain, the descent converges to it
	// holding every slot above the others' 5-slot floor.
	if counts[0] != a.EpochLen()-5*(ng-1) {
		t.Errorf("uncertain group got %d slots, want %d", counts[0], a.EpochLen()-5*(ng-1))
	}
}

// TestAdaptiveSchedulerUniformWhenEqual: equal uncertainties must leave
// the round-robin allocation untouched (flat gradient, hysteresis holds).
func TestAdaptiveSchedulerUniformWhenEqual(t *testing.T) {
	cat := uarch.Skylake()
	a := NewAdaptive(cat, 0)
	ng := len(a.Groups())
	mean := make([]float64, cat.NumEvents())
	std := make([]float64, cat.NumEvents())
	for id := range mean {
		mean[id] = 1e6
		std[id] = 5e4
	}
	for i := 0; i < 10; i++ {
		a.Reprioritize(mean, std, std)
	}
	if a.Moves() != 0 {
		t.Errorf("equal uncertainty moved %d slots, want 0", a.Moves())
	}
	counts := make([]int, ng)
	for i := 0; i < a.EpochLen(); i++ {
		counts[a.NextGroup()]++
	}
	want := a.EpochLen() / ng
	for gi, c := range counts {
		if c != want {
			t.Errorf("group %d got %d slots under equal uncertainty, want %d (counts %v)",
				gi, c, want, counts)
		}
	}
}

// TestAdaptiveSchedulerIgnoresCoupledEvents: an event whose posterior is
// already pinned by the invariant network (posterior std far below its
// observation std) must not attract slots, however uncertain its raw
// observations are.
func TestAdaptiveSchedulerIgnoresCoupledEvents(t *testing.T) {
	cat := uarch.Skylake()
	a := NewAdaptive(cat, 0)
	mean := make([]float64, cat.NumEvents())
	std := make([]float64, cat.NumEvents())
	obsStd := make([]float64, cat.NumEvents())
	for id := range mean {
		mean[id] = 1e6
		std[id] = 1e3
		obsStd[id] = 1e3
	}
	// Group 1's events look wildly uncertain at the observation level but
	// the invariants have already nailed their posteriors: sensitivity
	// ρ = (std/obsStd)² ≈ 2.5e-5, so no gradient toward group 1.
	for _, id := range a.Groups()[1] {
		obsStd[id] = 2e5
	}
	for i := 0; i < 10; i++ {
		a.Reprioritize(mean, std, obsStd)
	}
	counts := make([]int, len(a.Groups()))
	for i := 0; i < a.EpochLen(); i++ {
		counts[a.NextGroup()]++
	}
	if counts[1] > a.EpochLen()/len(a.Groups()) {
		t.Errorf("coupled group 1 attracted slots: %v", counts)
	}
}

// TestInterleaveSpreadsSlots: smooth weighted round-robin must emit each
// group exactly its slot count and never bunch a starved group's single
// slot against another of its own.
func TestInterleaveSpreadsSlots(t *testing.T) {
	slots := []int{4, 1, 1, 2}
	plan := interleave(slots, nil)
	if len(plan) != 8 {
		t.Fatalf("plan length %d, want 8", len(plan))
	}
	counts := make([]int, len(slots))
	for i, g := range plan {
		counts[g]++
		if i > 0 && plan[i-1] == g && slots[g] < len(plan)/2 {
			t.Errorf("minority group %d emitted twice in a row at %d (plan %v)", g, i, plan)
		}
	}
	for gi, want := range slots {
		if counts[gi] != want {
			t.Errorf("group %d emitted %d times, want %d (plan %v)", gi, counts[gi], want, slots)
		}
	}
}
