package measure

import (
	"math"
	"testing"

	"bayesperf/internal/rng"
	"bayesperf/internal/stats"
	"bayesperf/internal/uarch"
)

func TestGroundTruthSatisfiesInvariants(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		tr := GroundTruth(cat, DefaultWorkload(40), rng.New(1))
		if tr.Intervals() != 120 {
			t.Fatalf("%s: got %d intervals, want 120", cat.Arch, tr.Intervals())
		}
		// Invariants must hold exactly per interval and on totals.
		for ti := 0; ti < tr.Intervals(); ti++ {
			vals := make([]float64, cat.NumEvents())
			for id := range vals {
				vals[id] = tr.Series[id][ti]
			}
			for _, rel := range cat.Rels {
				if res := math.Abs(rel.Residual(vals)); res > 1e-6*math.Max(rel.Magnitude(vals), 1) {
					t.Fatalf("%s: relation %s residual %g at interval %d",
						cat.Arch, rel.Name, res, ti)
				}
			}
		}
		totals := tr.Totals()
		for _, rel := range cat.Rels {
			if res := math.Abs(rel.Residual(totals)); res > 1e-6*rel.Magnitude(totals) {
				t.Errorf("%s: relation %s residual %g on totals", cat.Arch, rel.Name, res)
			}
		}
		for id, tot := range totals {
			if tot < 0 || math.IsNaN(tot) {
				t.Errorf("%s: event %s total = %g", cat.Arch, cat.Event(uarch.EventID(id)).Name, tot)
			}
		}
	}
}

func TestScheduleGroupsRespectConstraints(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		groups := scheduleGroups(cat)
		if len(groups) < 2 {
			t.Errorf("%s: %d programmable events fit one group; multiplexing degenerate",
				cat.Arch, len(cat.ProgrammableEvents()))
		}
		seen := make(map[uarch.EventID]bool)
		for _, g := range groups {
			if !canSchedule(cat, g) {
				t.Errorf("%s: emitted unschedulable group %v", cat.Arch, g)
			}
			if len(g) > cat.NumProg {
				t.Errorf("%s: group of %d exceeds %d counters", cat.Arch, len(g), cat.NumProg)
			}
			msr := 0
			for _, id := range g {
				if seen[id] {
					t.Errorf("%s: event %s in two groups", cat.Arch, cat.Event(id).Name)
				}
				seen[id] = true
				if cat.Event(id).NeedsMSR {
					msr++
				}
			}
			if msr > cat.NumMSR {
				t.Errorf("%s: group uses %d MSRs, budget %d", cat.Arch, msr, cat.NumMSR)
			}
		}
		for _, id := range cat.ProgrammableEvents() {
			if !seen[id] {
				t.Errorf("%s: event %s never scheduled", cat.Arch, cat.Event(id).Name)
			}
		}
	}
}

func TestCanScheduleRejectsConflicts(t *testing.T) {
	cat := uarch.Skylake()
	pend := cat.MustEvent("L1D_PEND_MISS.PENDING")
	// Two copies of a counter-2-only event can never co-schedule; simulate
	// by checking the single-counter event plus three any-counter events
	// passes, while exceeding the MSR budget fails.
	offA := cat.MustEvent("OFFCORE_RESPONSE.DEMAND_DATA_RD")
	offB := cat.MustEvent("OFFCORE_RESPONSE.DEMAND_DATA_RD.L3_MISS")
	loads := cat.MustEvent("MEM_INST_RETIRED.ALL_LOADS")
	stores := cat.MustEvent("MEM_INST_RETIRED.ALL_STORES")
	if !canSchedule(cat, []uarch.EventID{pend, offA, offB, loads}) {
		t.Error("schedulable group rejected")
	}
	if canSchedule(cat, []uarch.EventID{pend, offA, offB, loads, stores}) {
		t.Error("5-event group accepted with 4 counters")
	}
	// Exercise the counter-matching backtracker itself (not the MSR
	// budget): two copies of the counter-2-only event both demand the same
	// counter, which no assignment can satisfy.
	if canSchedule(cat, []uarch.EventID{pend, pend}) {
		t.Error("two events pinned to the same single counter accepted")
	}
}

func TestMultiplexEstimates(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		r := rng.New(7)
		tr := GroundTruth(cat, DefaultWorkload(60), r.Split())
		mux := Multiplex(tr, DefaultMuxConfig(), r.Split())
		truth := tr.Totals()
		intervals := tr.Intervals()

		var rawErr stats.Running
		for id, est := range mux.Est {
			ev := cat.Event(uarch.EventID(id))
			if est.Std <= 0 || math.IsNaN(est.Std) {
				t.Errorf("%s: %s std = %g", cat.Arch, ev.Name, est.Std)
			}
			if ev.Fixed {
				if est.N != intervals {
					t.Errorf("%s: fixed %s counted %d/%d intervals", cat.Arch, ev.Name, est.N, intervals)
				}
			} else {
				if est.N >= intervals {
					t.Errorf("%s: programmable %s counted every interval", cat.Arch, ev.Name)
				}
				if est.N == 0 {
					t.Errorf("%s: %s never counted", cat.Arch, ev.Name)
				}
			}
			// Scaled estimates are in the right ballpark (within 50%).
			if truth[id] > 0 && stats.RelErr(est.Total, truth[id], 1) > 0.5 {
				t.Errorf("%s: %s estimate %.3g vs truth %.3g", cat.Arch, ev.Name, est.Total, truth[id])
			}
			rawErr.Add(stats.RelErr(est.Total, truth[id], 1))
		}
		// Multiplexing must actually introduce error — otherwise the
		// correction demo is vacuous.
		if rawErr.Mean() == 0 {
			t.Errorf("%s: multiplexed estimates are exact; no error to correct", cat.Arch)
		}
	}
}

// TestMultiplexShortRun covers runs shorter than the group rotation: the
// never-live group's events get an explicit zero Sample (N == 0) rather
// than a NaN observation.
func TestMultiplexShortRun(t *testing.T) {
	cat := uarch.Skylake()
	wl := Workload{Name: "tiny", Phases: []Phase{{
		Name: "p", Intervals: 3, InstRate: 1e6,
		LoadFrac: 0.2, StoreFrac: 0.1, BranchFrac: 0.1, MispRate: 0.02,
		L1MissRate: 0.05, L2HitFrac: 0.6, L3HitFrac: 0.5,
		BaseCPI: 0.4, Jitter: 0.05,
	}}}
	tr := GroundTruth(cat, wl, rng.New(2))
	mux := Multiplex(tr, DefaultMuxConfig(), rng.New(3))
	if len(mux.Groups) <= 3 {
		t.Skipf("need more groups than intervals to exercise the path (got %d)", len(mux.Groups))
	}
	sawUncounted := false
	for id, est := range mux.Est {
		if math.IsNaN(est.Std) || math.IsNaN(est.Total) {
			t.Errorf("event %d has NaN estimate %+v", id, est)
		}
		if est.N == 0 {
			sawUncounted = true
			if est.Total != 0 || est.Std != 0 {
				t.Errorf("uncounted event %d has non-zero sample %+v", id, est)
			}
		}
	}
	if !sawUncounted {
		t.Error("3-interval run with 4 groups produced no uncounted events")
	}
}

func TestMultiplexDeterminism(t *testing.T) {
	cat := uarch.Skylake()
	tr := GroundTruth(cat, DefaultWorkload(30), rng.New(5))
	a := Multiplex(tr, DefaultMuxConfig(), rng.New(9))
	b := Multiplex(tr, DefaultMuxConfig(), rng.New(9))
	for id := range a.Est {
		if a.Est[id] != b.Est[id] {
			t.Fatalf("estimates diverged for event %d", id)
		}
	}
}
