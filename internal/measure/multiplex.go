package measure

import (
	"fmt"
	"math"
	"math/bits"

	"bayesperf/internal/rng"
	"bayesperf/internal/stats"
	"bayesperf/internal/uarch"
)

// MuxConfig controls the multiplexing simulator.
type MuxConfig struct {
	// NoiseFrac is the relative std of the per-interval measurement noise
	// (OS jitter, interrupt skid) applied to every counted value.
	NoiseFrac float64
	// StdFloorFrac floors each estimate's observation std at this fraction
	// of its magnitude, so a phase-free event never reports zero
	// uncertainty.
	StdFloorFrac float64
	// OutlierProb injects CounterMiner-style corrupted readings: each
	// counted value is, with this probability, inflated by OutlierMag× (an
	// interrupt storm or SMI landing inside the sampling interval). Zero
	// disables injection.
	OutlierProb float64
	// OutlierMag is the relative magnitude of an injected outlier: a
	// corrupted reading becomes value·(1+OutlierMag).
	OutlierMag float64
	// GumbelReject filters counted samples with the Gumbel high-side
	// outlier test (stats.GumbelFilterMax) before mean/std estimation,
	// as CounterMiner does (Lv et al., MICRO'18).
	GumbelReject bool
	// GumbelQ is the Gumbel quantile above which a sample is rejected;
	// zero means DefaultGumbelQ.
	GumbelQ float64
}

// DefaultGumbelQ is the rejection quantile used when MuxConfig.GumbelQ is
// unset: CounterMiner's "well above the expected maximum" threshold.
const DefaultGumbelQ = 0.995

// RejectQuantile returns the effective Gumbel rejection quantile (GumbelQ,
// or DefaultGumbelQ when unset).
func (c MuxConfig) RejectQuantile() float64 {
	if c.GumbelQ > 0 {
		return c.GumbelQ
	}
	return DefaultGumbelQ
}

// DefaultMuxConfig matches the noise regime of the paper's perf-stat runs.
func DefaultMuxConfig() MuxConfig {
	return MuxConfig{NoiseFrac: 0.01, StdFloorFrac: 1e-4, GumbelQ: DefaultGumbelQ}
}

// Sample is one event's multiplexed estimate: the scaled (extrapolated)
// whole-run total, the Gaussian observation std derived from the Student-t
// marginal of the per-interval samples (§4.2), and the number of intervals
// the event was actually counted in. N == 0 means the run was too short for
// the event's group to ever go live; Total and Std are zero and callers
// must not feed the sample to the factor graph as an observation (the graph
// infers unobserved events from the invariants instead).
type Sample struct {
	Total float64
	Std   float64
	N     int
	// Rejected counts samples dropped by the Gumbel outlier filter
	// (always 0 unless MuxConfig.GumbelReject).
	Rejected int
}

// MuxResult is the output of one simulated multiplexed run.
type MuxResult struct {
	// Groups are the round-robin event groups; group g is live during
	// intervals t with t ≡ g (mod len(Groups)). Fixed events are live in
	// every interval and appear in no group.
	Groups [][]uarch.EventID
	// Est holds the per-event estimate, indexed by EventID.
	Est []Sample
}

// Coverage returns the fraction of intervals during which the event was
// counted.
func (m *MuxResult) Coverage(id uarch.EventID, intervals int) float64 {
	if intervals == 0 {
		return 0
	}
	return float64(m.Est[id].N) / float64(intervals)
}

// canSchedule reports whether the event set can run concurrently on the
// catalog's PMU: at most NumMSR of them need an MSR, and there is a perfect
// matching of events onto programmable counters respecting every
// CounterMask. The matching search is exact; group sizes are bounded by
// NumProg (≤ a handful), so backtracking is cheap.
func canSchedule(cat *uarch.Catalog, group []uarch.EventID) bool {
	if len(group) > cat.NumProg {
		return false
	}
	msr := 0
	for _, id := range group {
		if cat.Event(id).NeedsMSR {
			msr++
		}
	}
	if msr > cat.NumMSR {
		return false
	}
	// Order events by ascending mask popcount so the most constrained are
	// placed first, then backtrack.
	order := append([]uarch.EventID(nil), group...)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a := bits.OnesCount(cat.Event(order[j]).CounterMask)
			b := bits.OnesCount(cat.Event(order[j-1]).CounterMask)
			if a < b {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	}
	var place func(i int, used uint) bool
	place = func(i int, used uint) bool {
		if i == len(order) {
			return true
		}
		free := cat.Event(order[i]).CounterMask &^ used
		for free != 0 {
			c := free & -free // lowest available counter
			if place(i+1, used|c) {
				return true
			}
			free &^= c
		}
		return false
	}
	return place(0, 0)
}

// scheduleGroups packs the catalog's programmable events into the fewest
// round-robin groups first-fit by EventID, honoring counter masks, the MSR
// budget, and group size. First-fit is what perf's event grouping does in
// practice; optimal packing is NP-hard and unnecessary here.
func scheduleGroups(cat *uarch.Catalog) [][]uarch.EventID {
	var groups [][]uarch.EventID
	for _, id := range cat.ProgrammableEvents() {
		placed := false
		for gi := range groups {
			candidate := append(append([]uarch.EventID(nil), groups[gi]...), id)
			if canSchedule(cat, candidate) {
				groups[gi] = candidate
				placed = true
				break
			}
		}
		if !placed {
			if !canSchedule(cat, []uarch.EventID{id}) {
				panic(fmt.Sprintf("measure: event %s cannot be scheduled alone on %s",
					cat.Event(id).Name, cat.Arch))
			}
			groups = append(groups, []uarch.EventID{id})
		}
	}
	return groups
}

// extrapolationStd returns the observation std of the inverse-coverage
// extrapolated total for a partially covered event, following the paper's
// §4.2 Student-t model: std = (S/√N) · √(ν/(ν−2)) · intervals, ν = N−1.
//
// The sample spread S is estimated with the mean-squared-successive-
// difference estimator S² = Σ(xᵢ₊₁−xᵢ)²/(2(N−1)). Round-robin sampling is
// stratified across the workload's phases, so the plain sample variance —
// dominated by cross-phase spread that systematic sampling mostly cancels —
// would grossly overstate the estimate's uncertainty; successive differences
// are robust to that slow structure and capture the within-phase jitter plus
// measurement noise that actually drive the extrapolation error.
func extrapolationStd(xs []float64, intervals int) float64 {
	n := len(xs)
	if n < 2 {
		// A single sample carries no spread information at all; claim
		// 100% relative uncertainty on the extrapolated total rather
		// than letting a zero spread masquerade as near-certainty.
		return math.Abs(xs[0]) * float64(intervals)
	}
	var ssd float64
	for i := 1; i < n; i++ {
		d := xs[i] - xs[i-1]
		ssd += d * d
	}
	spread := math.Sqrt(ssd / (2 * float64(n-1)))
	return TObsStd(spread, n, intervals)
}

// TObsStd converts a per-interval sample spread into the §4.2 Student-t
// observation std of the inverse-coverage extrapolated total:
// std = (spread/√n) · √(ν/(ν−2)) · intervals with ν = n−1. It is shared by
// the whole-run simulator and the stream layer's sliding windows so both
// observation models agree. n must be ≥ 2 (a single sample has no spread).
func TObsStd(spread float64, n, intervals int) float64 {
	nu := float64(n - 1)
	tFactor := stats.StudentTStdFactor(nu)
	if math.IsInf(tFactor, 1) {
		tFactor = 10 // too few samples for a finite-variance t; stay vague
	}
	return spread / math.Sqrt(float64(n)) * tFactor * float64(intervals)
}

// EstimateSamples is the batch surface over EstimateSample: one §4.2
// estimate per event from that event's counted readings, in EventID order.
// It exists so whole-run consumers (pkg/bayesperf.Session.RunBatch) and
// the simulator share a single call producing the full observation vector
// the factor graph is observed from.
func EstimateSamples(xss [][]float64, intervals int, cfg MuxConfig) []Sample {
	out := make([]Sample, len(xss))
	for id, xs := range xss {
		out[id] = EstimateSample(xs, intervals, cfg)
	}
	return out
}

// Multiplex simulates one multiplexed run over the ground-truth trace:
// fixed events are counted in every interval; programmable events are
// round-robin scheduled in groups and only counted in their group's
// intervals; every counted value carries relative measurement noise. Each
// event's whole-run total is then extrapolated by inverse coverage (the
// linear scaling perf applies), and its observation std follows the paper's
// §4.2 Student-t model: std = (S/√N) · √(ν/(ν−2)) · intervals, ν = N−1.
func Multiplex(tr *Trace, cfg MuxConfig, r *rng.Rand) *MuxResult {
	cat := tr.Cat
	groups := scheduleGroups(cat)
	intervals := tr.Intervals()
	res := &MuxResult{Groups: groups, Est: make([]Sample, cat.NumEvents())}

	// groupOf[id] = index of the event's group, -1 for fixed events.
	groupOf := make([]int, cat.NumEvents())
	for i := range groupOf {
		groupOf[i] = -1
	}
	for gi, g := range groups {
		for _, id := range g {
			groupOf[id] = gi
		}
	}

	numGroups := len(groups)
	for id := 0; id < cat.NumEvents(); id++ {
		gi := groupOf[id]
		var xs []float64
		for t := 0; t < intervals; t++ {
			if gi >= 0 && numGroups > 0 && t%numGroups != gi {
				continue // counter not live for this event
			}
			truth := tr.Series[id][t]
			noisy := truth * (1 + r.Gaussian(0, cfg.NoiseFrac))
			if noisy < 0 {
				noisy = 0
			}
			if cfg.OutlierProb > 0 && r.Float64() < cfg.OutlierProb {
				noisy *= 1 + cfg.OutlierMag
			}
			if math.IsNaN(noisy) || math.IsInf(noisy, 0) {
				// Corrupted reading (mirrors the stream layer's ingestion
				// guard): drop it regardless of the Gumbel switch — one
				// NaN would otherwise poison the whole estimate.
				continue
			}
			xs = append(xs, noisy)
		}
		res.Est[id] = EstimateSample(xs, intervals, cfg)
	}
	return res
}

// EstimateSample turns one event's counted per-interval readings into the
// §4.2 whole-run estimate: Gumbel outlier rejection when configured,
// inverse-coverage extrapolated total, and the Student-t observation std
// (measurement-noise-only at full coverage). It is the single estimator
// shared by the batch simulator (Multiplex) and any Source-draining batch
// consumer (pkg/bayesperf.Session.RunBatch). xs must hold only finite
// readings; an empty xs yields the zero Sample (never counted — callers
// must not observe it into the factor graph).
func EstimateSample(xs []float64, intervals int, cfg MuxConfig) Sample {
	counted := len(xs)
	if counted == 0 {
		return Sample{}
	}
	rejected := 0
	if cfg.GumbelReject {
		// xs holds only finite readings (corrupted ones were dropped at
		// collection), so the filter always keeps at least one.
		xs, rejected = stats.GumbelFilterMax(xs, cfg.RejectQuantile())
	}
	n := len(xs)
	meanRate := stats.Mean(xs)
	total := meanRate * float64(intervals)

	var std float64
	if n == intervals {
		// Full coverage (fixed counters): the total is a straight sum
		// with no extrapolation, so its only uncertainty is the
		// per-interval measurement noise. The realized workload
		// variation is signal here, not error.
		var nv float64
		for _, x := range xs {
			nv += (cfg.NoiseFrac * x) * (cfg.NoiseFrac * x)
		}
		std = math.Sqrt(nv)
	} else {
		std = extrapolationStd(xs, intervals)
	}

	if floor := cfg.StdFloorFrac * math.Abs(total); std < floor {
		std = floor
	}
	if std == 0 { //bayesvet:bitwise exact-zero sentinel for an all-zero event
		std = 1 // all-zero event: unit count uncertainty
	}
	return Sample{Total: total, Std: std, N: counted, Rejected: rejected}
}
