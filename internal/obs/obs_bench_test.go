package obs

import "testing"

// BenchmarkObsCounter and BenchmarkObsHistogram pin the recording hot
// path's cost into the committed perf trajectory (BENCH_obs.json via
// cmd/benchjson). Both must stay at 0 allocs/op — the CI gate runs with
// -alloc-slack 0.

func BenchmarkObsCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "", LatencyBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

// BenchmarkObsCounterDisabled measures the metrics-off path: a nil
// instrument's method call. This is what every instrumented layer pays
// when no registry is configured.
func BenchmarkObsCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
