package obs

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Add(-1.5)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge after Add = %v, want 1", got)
	}
}

func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "h", Label{"k", "v"})
	b := r.Counter("same_total", "h", Label{"k", "v"})
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	c := r.Counter("same_total", "h", Label{"k", "other"})
	if a == c {
		t.Fatal("different label value should be a distinct instrument")
	}
	a.Inc()
	if b.Value() != 1 || c.Value() != 0 {
		t.Fatalf("aliasing broken: b=%d c=%d", b.Value(), c.Value())
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering gauge under a counter name")
		}
	}()
	r.Gauge("conflict_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, bad := range []string{"", "1bad", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q should panic", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid label key should panic")
		}
	}()
	NewRegistry().Counter("ok_total", "", Label{"__reserved", "x"})
}

// TestHistogramBucketBoundaries is the golden boundary test: Prometheus
// `le` semantics mean a value exactly on a bound lands in that bound's
// bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	snap := r.Snapshot()
	m := snap.Find("test_hist")
	if m == nil {
		t.Fatal("test_hist missing from snapshot")
	}
	want := []BucketSnapshot{{"1", 2}, {"2", 4}, {"4", 6}, {"+Inf", 7}}
	if len(m.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", m.Buckets, want)
	}
	for i, b := range want {
		if m.Buckets[i] != b {
			t.Fatalf("bucket %d = %v, want %v", i, m.Buckets[i], b)
		}
	}
	if m.Count != 7 {
		t.Fatalf("count = %d, want 7", m.Count)
	}
	if m.Sum != 0.5+1+1.5+2+3+4+5 {
		t.Fatalf("sum = %v, want 17", m.Sum)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}, {1, math.Inf(1)}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v should panic", bounds)
				}
			}()
			NewRegistry().Histogram("h_hist", "", bounds)
		}()
	}
}

// TestNilSafety: the metrics-off path — a nil registry hands out nil
// instruments whose every method no-ops.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x_gauge", "")
	h := r.Histogram("x_hist", "", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	sp := StartSpan(h)
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if snap := r.Snapshot(); len(snap.Metrics) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestSpanRecordsSeconds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span_seconds", "", LatencyBuckets())
	sp := StartSpan(h)
	time.Sleep(time.Millisecond)
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span count = %d, want 1", h.Count())
	}
	if s := h.Sum(); s < 0.0005 || s > 5 {
		t.Fatalf("span recorded %v s, want ~1ms", s)
	}
}

// TestRegistryConcurrency hammers registration, recording, and snapshot
// encoding from many goroutines at once; run under -race this is the
// subsystem's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 8
		iters      = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total", "")
			h := r.Histogram("conc_hist", "", []float64{1, 10, 100})
			ga := r.Gauge("conc_gauge", "")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i % 150))
				ga.Add(1)
				if i%500 == 0 {
					_ = r.WritePrometheus(io.Discard)
					_ = r.WriteJSON(io.Discard)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Value(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("conc_hist", "", []float64{1, 10, 100}).Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("conc_gauge", "").Value(); got != goroutines*iters {
		t.Fatalf("gauge = %v, want %d", got, goroutines*iters)
	}
}

// TestPrometheusText checks the exposition format against a golden
// rendering: HELP/TYPE grouping, label escaping, cumulative buckets,
// +Inf, _sum/_count.
func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests", Label{"kernel", "fast"}).Add(3)
	r.Counter("req_total", "requests", Label{"kernel", "exact"}).Add(2)
	r.Gauge("temp_gauge", "").Set(1.5)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	r.Counter("esc_total", "", Label{"path", "a\\b\"c\nd"}).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP req_total requests
# TYPE req_total counter
req_total{kernel="fast"} 3
req_total{kernel="exact"} 2
# TYPE temp_gauge gauge
temp_gauge 1.5
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 2.55
lat_seconds_count 3
# TYPE esc_total counter
esc_total{path="a\\b\"c\nd"} 1
`
	if b.String() != want {
		t.Fatalf("prometheus text mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_total", "help here", Label{"mode", "stream"}).Add(7)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"j_total"`, `"counter"`, `"help here"`, `"mode": "stream"`, `"value": 7`} {
		if !strings.Contains(b.String(), frag) {
			t.Fatalf("JSON snapshot missing %s:\n%s", frag, b.String())
		}
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", got, want)
		}
	}
	if rb := RatioBuckets(); rb[len(rb)-1] != 1 {
		t.Fatalf("RatioBuckets must end at 1, got %v", rb)
	}
}

// TestHotPathZeroAlloc is the machine-independent half of the overhead
// gate: recording into counters and histograms must never allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	h := r.Histogram("alloc_hist", "", LatencyBuckets())
	g := r.Gauge("alloc_gauge", "")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(3e-5)
		g.Set(1)
	}); n != 0 {
		t.Fatalf("hot path allocates %v allocs/op, want 0", n)
	}
}
