package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// BucketSnapshot is one cumulative histogram bucket: Count observations
// were ≤ LE ("less than or equal", Prometheus `le` semantics; the last
// bucket's LE is "+Inf" and its Count equals the histogram's total count).
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// MetricSnapshot is one instrument's point-in-time state.
type MetricSnapshot struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"` // "counter" | "gauge" | "histogram"
	Help    string            `json:"help,omitempty"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`             // counter/gauge value; histograms: 0
	Sum     float64           `json:"sum,omitempty"`     // histograms only
	Count   uint64            `json:"count,omitempty"`   // histograms only
	Buckets []BucketSnapshot  `json:"buckets,omitempty"` // histograms only, cumulative
}

// RegistrySnapshot is a consistent-enough point-in-time copy of every
// instrument (individual values are read atomically; cross-instrument skew
// is bounded by the duration of the snapshot).
type RegistrySnapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Find returns the first metric with the given name whose labels include
// every given label, or nil. It exists for tests and programmatic health
// checks; encoders iterate Metrics directly.
func (s *RegistrySnapshot) Find(name string, labels ...Label) *MetricSnapshot {
	for i := range s.Metrics {
		m := &s.Metrics[i]
		if m.Name != name {
			continue
		}
		ok := true
		for _, l := range labels {
			if m.Labels[l.Key] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return m
		}
	}
	return nil
}

// Snapshot copies the registry's current state in registration order. A nil
// registry snapshots as empty.
func (r *Registry) Snapshot() RegistrySnapshot {
	ins := r.instruments()
	snap := RegistrySnapshot{Metrics: make([]MetricSnapshot, 0, len(ins))}
	for _, in := range ins {
		d := in.describe()
		m := MetricSnapshot{Name: d.name, Type: in.kindOf().String(), Help: d.help}
		if len(d.labels) > 0 {
			m.Labels = make(map[string]string, len(d.labels))
			for _, l := range d.labels {
				m.Labels[l.Key] = l.Value
			}
		}
		switch v := in.(type) {
		case *Counter:
			m.Value = float64(v.Value())
		case *Gauge:
			m.Value = v.Value()
		case *Histogram:
			m.Sum = v.Sum()
			m.Buckets = make([]BucketSnapshot, 0, len(v.bounds)+1)
			var cum uint64
			for i := range v.counts {
				cum += v.counts[i].Load()
				le := "+Inf"
				if i < len(v.bounds) {
					le = formatFloat(v.bounds[i])
				}
				m.Buckets = append(m.Buckets, BucketSnapshot{LE: le, Count: cum})
			}
			m.Count = cum
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders a label set as {k="v",...} with an optional extra
// trailing label (used for histogram `le`). Empty set and no extra → "".
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	s := "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	if extraKey != "" {
		if len(labels) > 0 {
			s += ","
		}
		s += extraKey + `="` + extraVal + `"`
	}
	return s + "}"
}

// WritePrometheus writes the registry's state in the Prometheus text
// exposition format (version 0.0.4). Instruments sharing a metric name are
// grouped under one # HELP/# TYPE header (first registration wins the help
// text), in first-registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ins := r.instruments()
	done := map[string]bool{}
	for _, first := range ins {
		name := first.describe().name
		if done[name] {
			continue
		}
		done[name] = true
		if help := first.describe().help; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, first.kindOf()); err != nil {
			return err
		}
		for _, in := range ins {
			d := in.describe()
			if d.name != name {
				continue
			}
			var err error
			switch v := in.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", name, labelString(d.labels, "", ""), v.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", name, labelString(d.labels, "", ""), formatFloat(v.Value()))
			case *Histogram:
				var cum uint64
				for i := range v.counts {
					cum += v.counts[i].Load()
					le := "+Inf"
					if i < len(v.bounds) {
						le = formatFloat(v.bounds[i])
					}
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(d.labels, "le", le), cum); err != nil {
						return err
					}
				}
				if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(d.labels, "", ""), formatFloat(v.Sum())); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(d.labels, "", ""), cum)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
