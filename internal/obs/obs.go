// Package obs is BayesPerf's dependency-free observability layer: a
// Registry of typed instruments — atomic counters, gauges, and fixed-bucket
// histograms — plus lightweight Span tracing for the pipeline's stages.
// Every layer of the correction engine (graph, stream, measure, scheduler,
// session) records into one shared Registry, which snapshots as Prometheus
// text or JSON (encode.go); that snapshot is the health surface behind the
// CLI's -metrics/-metrics-addr flags and the prerequisite for the planned
// fleet-scale `bayesperf serve` mode.
//
// Design constraints, in order:
//
//   - Low overhead on the hot path. Recording is a handful of atomic
//     operations — no locks, no allocations, no map lookups. Instruments
//     are resolved once at registration (get-or-create by name + constant
//     labels) and held as typed pointers at the recording site.
//   - Metrics-off must cost nothing. Every instrument method is nil-safe:
//     a nil *Registry returns nil instruments, and recording on a nil
//     instrument is a no-op behind a single predictable branch. Layers
//     therefore thread instruments unconditionally instead of guarding
//     every site.
//   - Safe under -race. Registration takes the registry mutex; recording
//     and snapshotting touch only atomics, so concurrent workers hammer
//     the same instrument freely and an HTTP scrape can run mid-stream.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant name/value pair attached to an instrument at
// registration. Same metric name + different label sets = distinct
// instruments that the encoders group under one metric family, exactly as
// Prometheus expects.
type Label struct {
	Key, Value string
}

// kind discriminates the instrument types for family-level consistency
// checks and encoding.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// desc is an instrument's identity: metric name, help text, and its
// canonically sorted constant labels.
type desc struct {
	name   string
	help   string
	labels []Label
	key    string // name + rendered labels; the registry's identity key
}

// instrument is the registry's view of any metric.
type instrument interface {
	describe() *desc
	kindOf() kind
}

// validName reports whether s is a legal Prometheus metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelKey reports whether s is a legal Prometheus label name.
func validLabelKey(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// escapeLabelValue escapes a label value for the Prometheus text format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// makeDesc validates and canonicalizes an instrument identity. Invalid
// names are programming errors and panic at registration (never on the
// recording path).
func makeDesc(name, help string, labels []Label) desc {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	for i, l := range ls {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
		if i > 0 && ls[i-1].Key == l.Key {
			panic(fmt.Sprintf("obs: duplicate label %q on metric %q", l.Key, name))
		}
		if i == 0 {
			b.WriteByte('{')
		} else {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabelValue(l.Value))
	}
	if len(ls) > 0 {
		b.WriteByte('}')
	}
	return desc{name: name, help: help, labels: ls, key: b.String()}
}

// Registry holds a process's (or one run's) instruments. The zero value is
// ready to use; NewRegistry exists for symmetry with the rest of the API.
// Registration is get-or-create: asking twice for the same name + labels
// returns the same instrument, so independent pipeline runs sharing a
// registry aggregate naturally. A nil *Registry is the "metrics off"
// registry: every constructor returns nil and every recording is a no-op.
type Registry struct {
	mu       sync.Mutex
	byKey    map[string]instrument
	order    []instrument    // registration order, for stable encoding
	nameKind map[string]kind // family-level type consistency
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// register is the get-or-create core shared by the typed constructors.
// make builds the new instrument when the key is free.
func (r *Registry) register(d desc, k kind, make func() instrument) instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byKey == nil {
		r.byKey = map[string]instrument{}
		r.nameKind = map[string]kind{}
	}
	if in, ok := r.byKey[d.key]; ok {
		if in.kindOf() != k {
			panic(fmt.Sprintf("obs: %s already registered as a %s, not a %s",
				d.key, in.kindOf(), k))
		}
		return in
	}
	if prev, ok := r.nameKind[d.name]; ok && prev != k {
		panic(fmt.Sprintf("obs: metric family %s already registered as a %s, not a %s",
			d.name, prev, k))
	}
	in := make()
	r.byKey[d.key] = in
	r.nameKind[d.name] = k
	r.order = append(r.order, in)
	return in
}

// Counter returns the registry's monotonically increasing counter with the
// given name and constant labels, creating it on first use. Nil registry →
// nil counter (recording no-ops).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	d := makeDesc(name, help, labels)
	return r.register(d, counterKind, func() instrument { return &Counter{d: d} }).(*Counter)
}

// Gauge returns the registry's float gauge with the given name and constant
// labels, creating it on first use. Nil registry → nil gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	d := makeDesc(name, help, labels)
	return r.register(d, gaugeKind, func() instrument { return &Gauge{d: d} }).(*Gauge)
}

// Histogram returns the registry's fixed-bucket histogram with the given
// name, bucket upper bounds (strictly increasing, finite; a +Inf overflow
// bucket is implicit) and constant labels, creating it on first use; a
// later call with the same identity returns the existing histogram and its
// original bounds. Nil registry → nil histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %s needs at least one bucket bound", name))
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram %s has non-finite bound %v", name, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing at %v", name, b))
		}
	}
	d := makeDesc(name, help, labels)
	return r.register(d, histogramKind, func() instrument {
		return &Histogram{
			d:      d,
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	}).(*Histogram)
}

// instruments returns a stable-order copy of the registered instruments for
// the encoders, without holding the lock while they read atomics.
func (r *Registry) instruments() []instrument {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]instrument(nil), r.order...)
}

// Counter is a monotonically increasing uint64, safe for concurrent use.
//
//bayesvet:nilsafe
type Counter struct {
	d desc
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil counter.
//
//bayesperf:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
//
//bayesperf:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) describe() *desc { return &c.d }
func (c *Counter) kindOf() kind    { return counterKind }

// Gauge is a float64 that can go up and down, safe for concurrent use.
//
//bayesvet:nilsafe
type Gauge struct {
	d    desc
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
//
//bayesperf:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v to the gauge (CAS loop). No-op on a nil gauge.
//
//bayesperf:hotpath
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) describe() *desc { return &g.d }
func (g *Gauge) kindOf() kind    { return gaugeKind }

// Histogram counts observations into fixed buckets (Prometheus `le`
// semantics: bucket i holds v ≤ bounds[i], the last bucket is +Inf) and
// accumulates their sum. Observing is two atomic adds plus a short
// predictable scan over the bounds — no locks, no allocation.
//
//bayesvet:nilsafe
type Histogram struct {
	d      desc
	bounds []float64
	counts []atomic.Uint64 // per-bucket (non-cumulative); len(bounds)+1
	sum    atomic.Uint64   // float64 bits, CAS-added
}

// Observe records one value. NaN observations are dropped (they have no
// bucket and would poison the sum). No-op on a nil histogram.
//
//bayesperf:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) describe() *desc { return &h.d }
func (h *Histogram) kindOf() kind    { return histogramKind }

// Span is one timed stage execution: StartSpan stamps the clock, End
// records the elapsed seconds into the stage's histogram. A Span is a
// value; starting one against a nil histogram is free (no clock read) and
// End on it is a no-op, so stage tracing costs nothing when metrics are
// off.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins a timed span recording into h on End.
//
//bayesperf:hotpath
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End stops the span and records its duration in seconds.
//
//bayesperf:hotpath
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.start).Seconds())
	}
}

// LatencyBuckets returns the default stage-latency bucket bounds in
// seconds: exponential from 1µs to 4s, matched to the pipeline's window
// costs (µs) and whole-run durations (ms–s).
func LatencyBuckets() []float64 {
	return []float64{1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 0.25, 1, 4}
}

// RatioBuckets returns bucket bounds for quantities in (0, 1] at 1/8
// resolution — e.g. the batch fill ratio.
func RatioBuckets() []float64 {
	return []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1}
}

// ExponentialBuckets returns n bounds starting at start, each factor× the
// previous — the general-purpose bound builder for count-like histograms.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExponentialBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}
