package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 1000", same)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after re-seed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64RangeProperty(t *testing.T) {
	// Property: for any seed, the first 64 floats are all in [0,1).
	prop := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 64; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values in 10k draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Gaussian variance = %v, want ~1", variance)
	}
}

func TestGaussianShiftScale(t *testing.T) {
	r := New(9)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gaussian(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("Gaussian(10,2) mean = %v, want ~10", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(17)
	for _, mean := range []float64{0.5, 4, 30, 500} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		tol := 4 * math.Sqrt(mean/float64(n)) // 4σ of the sample mean
		if math.Abs(got-mean) > tol+0.02 {
			t.Errorf("Poisson(%v) mean = %v, want within %v", mean, got, tol)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	prop := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 32; i++ {
			if r.Poisson(100) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for n := 0; n < 30; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(29)
	child := r.Split()
	// The child stream and the parent's continuation should not be equal.
	same := 0
	for i := 0; i < 1000; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and split child matched %d/1000 outputs", same)
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	r := New(31)
	counts := map[[3]int]int{}
	for i := 0; i < 6000; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("Shuffle of 3 elements produced %d/6 arrangements", len(counts))
	}
	for arr, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("arrangement %v count %d far from uniform 1000", arr, c)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}
