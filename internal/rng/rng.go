// Package rng provides the deterministic, high-throughput pseudo-random
// number generators used throughout the BayesPerf reproduction.
//
// The BayesPerf accelerator (paper §5) relies on "high-throughput random
// number generators" feeding its MCMC sampler pipelines. We model those with
// xoshiro256**, a small-state generator with excellent statistical quality
// and a few-ns step cost, seeded via splitmix64 so that any 64-bit seed
// yields a well-mixed state. Every stochastic component in this repository
// (workload generators, OS-noise injection, MCMC chains, RL exploration)
// draws from an explicitly seeded *rng.Rand so experiments are reproducible
// run-to-run.
package rng

import "math"

// splitmix64 advances the splitmix64 state and returns the next value.
// It is used only for seeding xoshiro256** state words.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64

	// Cached second Gaussian from the last Box–Muller transform.
	gauss    float64
	hasGauss bool
}

// New returns a generator seeded from the given 64-bit seed. Distinct seeds
// produce statistically independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed, discarding any cached values.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	r.hasGauss = false
}

// Split returns a new generator whose stream is independent of r's
// continuation. It is used to hand child components their own streams (one
// per MCMC sampler pipeline, one per workload, ...) without sharing state.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// modulo bias is negligible for the n used here and clarity wins.
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// NormFloat64 returns a standard Gaussian variate via Box–Muller, caching
// the second variate of each transform.
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	radius := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.gauss = radius * math.Sin(theta)
	r.hasGauss = true
	return radius * math.Cos(theta)
}

// Gaussian returns a Gaussian variate with the given mean and standard
// deviation.
func (r *Rand) Gaussian(mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// method for small means and a Gaussian approximation for large ones (the
// counts we model are large enough that the approximation is exact for all
// practical purposes).
func (r *Rand) Poisson(mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := r.Gaussian(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int64(v + 0.5)
	}
	l := math.Exp(-mean)
	var k int64
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle performs a Fisher–Yates shuffle using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
