package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilRecv enforces the metrics-off-costs-nothing contract: a type annotated
// //bayesvet:nilsafe (the obs instruments — Counter, Gauge, Histogram)
// promises that every exported pointer-receiver method is a free no-op on a
// nil receiver. Statically that means each such method must either
//
//   - begin with an `if recv == nil { ... return }` guard, or
//   - consist of a single statement delegating to another method on the
//     same receiver (e.g. Inc() calling Add(1)), which the rule then holds
//     to the same contract.
//
// Value-receiver methods cannot observe a nil receiver and are exempt.
var NilRecv = &Analyzer{
	Name: "nilrecv",
	Doc:  "//bayesvet:nilsafe types' exported pointer-receiver methods must guard nil receivers",
	Run:  runNilRecv,
}

const nilsafeDirective = "bayesvet:nilsafe"

func runNilRecv(p *Pass) {
	annotated := nilsafeTypes(p)
	if len(annotated) == 0 {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv, tname := pointerRecv(p.Info, fd)
			if tname == nil || !annotated[tname] {
				continue
			}
			if recv == nil {
				p.Report(fd.Pos(), "exported method (*%s).%s has an unnamed receiver: name it and guard `if recv == nil`", tname.Name(), fd.Name.Name)
				continue
			}
			if startsWithNilGuard(p.Info, fd.Body, recv) || delegatesToReceiver(p.Info, fd.Body, recv) {
				continue
			}
			p.Report(fd.Pos(), "exported method (*%s).%s must begin with `if %s == nil` (nilsafe contract: recording on a nil instrument is a free no-op) or delegate to a guarded method on %s", tname.Name(), fd.Name.Name, recv.Name(), recv.Name())
		}
	}
}

// nilsafeTypes collects the package's type names annotated
// //bayesvet:nilsafe (on the type spec's or its decl group's doc comment).
func nilsafeTypes(p *Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !DocHasDirective(ts.Doc, nilsafeDirective) &&
					!(len(gd.Specs) == 1 && DocHasDirective(gd.Doc, nilsafeDirective)) {
					continue
				}
				if tn, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
					out[tn] = true
				}
			}
		}
	}
	return out
}

// pointerRecv resolves a method's receiver when it is a pointer to a named
// type, returning the receiver variable (nil when unnamed or blank) and the
// type name (nil for value receivers).
func pointerRecv(info *types.Info, fd *ast.FuncDecl) (*types.Var, *types.TypeName) {
	if len(fd.Recv.List) != 1 {
		return nil, nil
	}
	field := fd.Recv.List[0]
	t := field.Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	} else {
		return nil, nil // value receiver: cannot be nil
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	tn, ok := info.ObjectOf(id).(*types.TypeName)
	if !ok {
		return nil, nil
	}
	if len(field.Names) != 1 || field.Names[0].Name == "_" {
		return nil, tn
	}
	v, _ := info.Defs[field.Names[0]].(*types.Var)
	return v, tn
}

// startsWithNilGuard reports whether the body's first statement is
// `if recv == nil { ... return... }` — possibly as one disjunct of an ||
// chain (`if h == nil || math.IsNaN(v) { return }` guards both) — with the
// guard block ending in a return.
func startsWithNilGuard(info *types.Info, body *ast.BlockStmt, recv *types.Var) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	if !condHasNilCheck(info, ifs.Cond, recv) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	_, isReturn := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}

// condHasNilCheck reports whether cond is `recv == nil` (either operand
// order) or an || chain with such a disjunct.
func condHasNilCheck(info *types.Info, cond ast.Expr, recv *types.Var) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condHasNilCheck(info, e.X, recv)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return condHasNilCheck(info, e.X, recv) || condHasNilCheck(info, e.Y, recv)
		case token.EQL:
			return (isRecvIdent(info, e.X, recv) && isNilIdent(info, e.Y)) ||
				(isNilIdent(info, e.X) && isRecvIdent(info, e.Y, recv))
		}
	}
	return false
}

// delegatesToReceiver reports whether the body is a single statement whose
// only action is calling a method on the receiver (possibly returning its
// results) — the Inc-calls-Add idiom, which inherits the callee's guard.
func delegatesToReceiver(info *types.Info, body *ast.BlockStmt, recv *types.Var) bool {
	if len(body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := body.List[0].(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.ReturnStmt:
		if len(s.Results) == 1 {
			call, _ = s.Results[0].(*ast.CallExpr)
		}
	}
	if call == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isRecvIdent(info, sel.X, recv)
}

func isRecvIdent(info *types.Info, e ast.Expr, recv *types.Var) bool {
	id, ok := e.(*ast.Ident)
	return ok && info.ObjectOf(id) == recv
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}
