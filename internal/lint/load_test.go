package lint_test

import (
	"strings"
	"testing"

	"bayesperf/internal/lint"
)

// The loaderedge testdata packages exercise loader corners the CFG builder
// depends on: files excluded by build constraints, _test.go siblings, and
// //line directives. The excluded files deliberately fail to type-check,
// so loading them at all breaks the load.

func TestLoaderSkipsBuildConstrainedFiles(t *testing.T) {
	pkg := loadTestdata(t, "loaderedge/buildtag")
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (skip.go is excluded by //go:build)", len(pkg.Files))
	}
	name := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	if !strings.HasSuffix(name, "keep.go") {
		t.Fatalf("loaded %s, want keep.go", name)
	}
}

func TestLoaderIgnoresTestSiblings(t *testing.T) {
	pkg := loadTestdata(t, "loaderedge/xtest")
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (_test.go siblings are excluded)", len(pkg.Files))
	}
	name := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	if !strings.HasSuffix(name, "code.go") {
		t.Fatalf("loaded %s, want code.go", name)
	}
}

func TestLoaderHonorsLineDirectives(t *testing.T) {
	pkg := loadTestdata(t, "loaderedge/linedir")
	analyzers, err := lint.ByName("maporder")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAnalyzers(pkg, analyzers)
	if len(diags) == 0 {
		t.Fatal("maporder found nothing in the //line-directive package")
	}
	for _, d := range diags {
		if !strings.HasSuffix(d.Pos.Filename, "virtual.gen.go") {
			t.Fatalf("diagnostic at %s, want the //line-mapped virtual.gen.go", d.Pos)
		}
		if d.Pos.Line < 100 || d.Pos.Line > 110 {
			t.Fatalf("diagnostic at line %d, want the //line-mapped 100..110 range", d.Pos.Line)
		}
	}
}
