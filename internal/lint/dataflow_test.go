package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// markFlow is a miniature dataflow problem for testing the solver: the
// state is "has a call to mark() executed on this path" — no / yes /
// maybe. It has the same shape (three-point per-fact lattice, join to
// maybe) as the real concurrency lattices.
type markFlow struct{}

const (
	markNo    = "no"
	markYes   = "yes"
	markMaybe = "maybe"
)

func (markFlow) Entry() any { return markNo }

func (markFlow) Transfer(n ast.Node, state any) any {
	st := state.(string)
	InspectShallow(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
				st = markYes
			}
		}
		return true
	})
	return st
}

func (markFlow) Join(a, b any) any {
	if a == b {
		return a
	}
	return markMaybe
}

func (markFlow) Equal(a, b any) bool { return a == b }

// stateAtReturns solves body and returns the state observed at every
// return (explicit and implicit), in block order.
func stateAtReturns(t *testing.T, body string) []string {
	t.Helper()
	cfg := buildCFG(t, body)
	sol := Solve(cfg, markFlow{})
	var out []string
	sol.Replay(func(n ast.Node, before any) {
		switch n.(type) {
		case *ast.ReturnStmt, *ImplicitReturn:
			out = append(out, before.(string))
		}
	})
	return out
}

func TestSolveStraightLine(t *testing.T) {
	got := stateAtReturns(t, "mark()")
	if len(got) != 1 || got[0] != markYes {
		t.Fatalf("states at returns = %v, want [yes]", got)
	}
}

func TestSolveBranchJoinsToMaybe(t *testing.T) {
	got := stateAtReturns(t, "x := 1\nif x > 0 {\n\tmark()\n}\n_ = x")
	if len(got) != 1 || got[0] != markMaybe {
		t.Fatalf("states at returns = %v, want [maybe]", got)
	}
}

func TestSolveBothBranchesStayYes(t *testing.T) {
	got := stateAtReturns(t, "x := 1\nif x > 0 {\n\tmark()\n} else {\n\tmark()\n}\n_ = x")
	if len(got) != 1 || got[0] != markYes {
		t.Fatalf("states at returns = %v, want [yes]", got)
	}
}

func TestSolvePerReturnStates(t *testing.T) {
	got := stateAtReturns(t, "x := 1\nif x > 0 {\n\treturn\n}\nmark()")
	if len(got) != 2 {
		t.Fatalf("saw %d returns, want 2 (%v)", len(got), got)
	}
	// Block order: the early return (no) precedes the fall-off exit (yes).
	if got[0] != markNo || got[1] != markYes {
		t.Fatalf("states at returns = %v, want [no yes]", got)
	}
}

func TestSolveLoopFixpoint(t *testing.T) {
	// mark() inside the loop body: reaching the exit may or may not have
	// passed through it.
	got := stateAtReturns(t, "for i := 0; i < 3; i++ {\n\tmark()\n}")
	if len(got) != 1 || got[0] != markMaybe {
		t.Fatalf("states at returns = %v, want [maybe]", got)
	}
}

func TestSolveLoopInvariantYes(t *testing.T) {
	// mark() before the loop: yes must survive the back-edge join.
	got := stateAtReturns(t, "mark()\nfor i := 0; i < 3; i++ {\n\t_ = i\n}")
	if len(got) != 1 || got[0] != markYes {
		t.Fatalf("states at returns = %v, want [yes]", got)
	}
}

func TestSolveDeadCodeNotVisited(t *testing.T) {
	cfg := buildCFG(t, "return\nmark()")
	sol := Solve(cfg, markFlow{})
	sol.Replay(func(n ast.Node, before any) {
		if strings.Contains(nodeText(n), "mark") {
			t.Fatalf("replay visited dead code %s", nodeText(n))
		}
	})
}

func TestSolveFuncLitBodyIgnored(t *testing.T) {
	// mark() inside a literal must not leak into the enclosing state.
	got := stateAtReturns(t, "f := func() {\n\tmark()\n}\n_ = f")
	if len(got) != 1 || got[0] != markNo {
		t.Fatalf("states at returns = %v, want [no]", got)
	}
}

func TestSolveEmptyCFG(t *testing.T) {
	sol := Solve(&CFG{}, markFlow{})
	if len(sol.In) != 0 {
		t.Fatalf("empty CFG produced %d states", len(sol.In))
	}
	sol.Replay(func(ast.Node, any) { t.Fatal("replay visited a node") })
}

func TestSolveReplayVisitsEachReachableNodeOnce(t *testing.T) {
	cfg := buildCFG(t, "x := 0\nfor i := 0; i < 3; i++ {\n\tx += i\n}\nif x > 0 {\n\tx--\n}\n_ = x")
	counts := map[ast.Node]int{}
	Solve(cfg, markFlow{}).Replay(func(n ast.Node, _ any) { counts[n]++ })
	for n, c := range counts {
		if c != 1 {
			t.Fatalf("node %s visited %d times", nodeText(n), c)
		}
	}
	if len(counts) == 0 {
		t.Fatal("replay visited nothing")
	}
}
