package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe is the lock-discipline rule: a per-function lock-set dataflow
// over the CFG, plus AST-level copylock checks.
//
// The dataflow tracks, for every mutex/RWMutex the function touches, whether
// it is held (write-locked), read-held, or held on only some paths, with
// deferred unlocks applied at each return. It reports:
//
//   - a lock still (or possibly still) held at a return — the classic
//     early-return leak
//   - double Lock / recursive RLock on the same primitive (self-deadlock;
//     recursive RLock deadlocks once a writer queues between the two)
//   - Unlock without Lock, and Unlock/RUnlock mismatches on an RWMutex
//   - Lock while the same RWMutex is read-held (upgrade deadlock)
//
// The copylock checks flag lock-carrying values that Go will silently copy:
// embedded (anonymous) sync.Mutex/RWMutex/WaitGroup/Once/Cond value fields
// — which additionally promote Lock/Unlock into the outer type's method set
// — value receivers, and by-value parameters of lock-containing types.
//
// Escape hatch: //bayesvet:locksafe <reason> on the line or the line above.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "lock-set dataflow: leaked/double/mismatched locks, copied locks",
	Run:  runLockSafe,
}

const lockSafeDirective = "bayesvet:locksafe"

func runLockSafe(p *Pass) {
	for _, file := range p.Files {
		checkEmbeddedLocks(p, file)
		checkValueCarriers(p, file)
		for _, fn := range funcBodies(file) {
			checkLockDiscipline(p, file, fn.body)
		}
	}
}

// ---- lock-set dataflow ----

// lockState is the per-primitive lattice. Absence from the held map means
// "unlocked on every path"; lockMaybe is the top element.
type lockState uint8

const (
	lockHeld  lockState = iota // write-locked on every path
	lockRHeld                  // read-locked on every path
	lockMaybe                  // locked on some paths only, or TryLock'd
)

// deferAction records what a registered defer will do to a primitive when
// the function returns.
type deferAction uint8

const (
	deferUnlock  deferAction = iota // defer mu.Unlock() on every path
	deferRUnlock                    // defer mu.RUnlock() on every path
	deferMixed                      // registered on only some paths: unknowable
)

// lockFacts is the dataflow state: the lock set plus pending defers. Values
// are immutable — every update copies (the maps are tiny: functions touch
// one or two locks).
type lockFacts struct {
	held   map[syncObj]lockState
	defers map[syncObj]deferAction
}

func (f lockFacts) withHeld(k syncObj, s lockState) lockFacts {
	held := make(map[syncObj]lockState, len(f.held)+1)
	for o, v := range f.held {
		held[o] = v
	}
	held[k] = s
	return lockFacts{held: held, defers: f.defers}
}

func (f lockFacts) withoutHeld(k syncObj) lockFacts {
	if _, ok := f.held[k]; !ok {
		return f
	}
	held := make(map[syncObj]lockState, len(f.held))
	for o, v := range f.held {
		if o != k {
			held[o] = v
		}
	}
	return lockFacts{held: held, defers: f.defers}
}

func (f lockFacts) withDefer(k syncObj, a deferAction) lockFacts {
	defers := make(map[syncObj]deferAction, len(f.defers)+1)
	for o, v := range f.defers {
		defers[o] = v
	}
	defers[k] = a
	return lockFacts{held: f.held, defers: defers}
}

// lockFlow implements Flow for the lock-set analysis. Transfer delegates to
// apply with a nil reporter; the rule replays with a real reporter.
type lockFlow struct {
	info *types.Info
}

func (lf *lockFlow) Entry() any { return lockFacts{} }

func (lf *lockFlow) Transfer(n ast.Node, state any) any {
	return lf.apply(n, state.(lockFacts), nil)
}

func (lf *lockFlow) Join(a, b any) any {
	fa, fb := a.(lockFacts), b.(lockFacts)
	held := make(map[syncObj]lockState, len(fa.held)+len(fb.held))
	for k, va := range fa.held {
		if vb, ok := fb.held[k]; ok && vb == va {
			held[k] = va
		} else {
			held[k] = lockMaybe // unlocked or different on the other path
		}
	}
	for k := range fb.held {
		if _, ok := fa.held[k]; !ok {
			held[k] = lockMaybe
		}
	}
	defers := make(map[syncObj]deferAction, len(fa.defers)+len(fb.defers))
	for k, va := range fa.defers {
		if vb, ok := fb.defers[k]; ok && vb == va {
			defers[k] = va
		} else {
			defers[k] = deferMixed
		}
	}
	for k := range fb.defers {
		if _, ok := fa.defers[k]; !ok {
			defers[k] = deferMixed
		}
	}
	return lockFacts{held: held, defers: defers}
}

func (lf *lockFlow) Equal(a, b any) bool {
	fa, fb := a.(lockFacts), b.(lockFacts)
	if len(fa.held) != len(fb.held) || len(fa.defers) != len(fb.defers) {
		return false
	}
	for k, v := range fa.held {
		if w, ok := fb.held[k]; !ok || w != v {
			return false
		}
	}
	for k, v := range fa.defers {
		if w, ok := fb.defers[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// lockReporter reports one finding during replay; nil during fixpoint
// iteration.
type lockReporter func(pos token.Pos, format string, args ...any)

// apply executes one CFG node against the lock facts. With a non-nil
// reporter it also diagnoses; the state it returns is identical either way.
func (lf *lockFlow) apply(n ast.Node, st lockFacts, report lockReporter) lockFacts {
	switch s := n.(type) {
	case *ast.DeferStmt:
		if recv, typ, method, ok := syncMethodCall(lf.info, s.Call); ok && isLockType(typ) {
			if key, ok := resolveSyncObj(lf.info, recv); ok {
				switch method {
				case "Unlock":
					return st.withDefer(key, deferUnlock)
				case "RUnlock":
					return st.withDefer(key, deferRUnlock)
				case "Lock", "RLock":
					// defer mu.Lock() is almost certainly a typo'd unlock,
					// but without knowing intent the safe move is to stop
					// tracking this primitive's defers.
					return st.withDefer(key, deferMixed)
				}
			}
		}
		return st
	case *ast.ReturnStmt:
		if report != nil {
			lf.checkReturn(s.Return, st, report)
		}
		return st
	case *ImplicitReturn:
		if report != nil {
			lf.checkReturn(s.Rbrace, st, report)
		}
		return st
	}
	InspectShallow(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			st = lf.applyCall(call, st, report)
		}
		return true
	})
	return st
}

func (lf *lockFlow) applyCall(call *ast.CallExpr, st lockFacts, report lockReporter) lockFacts {
	recv, typ, method, ok := syncMethodCall(lf.info, call)
	if !ok || !isLockType(typ) {
		return st
	}
	key, ok := resolveSyncObj(lf.info, recv)
	if !ok {
		return st
	}
	name := key.name()
	prev, present := st.held[key]
	switch method {
	case "Lock":
		if report != nil && present {
			switch prev {
			case lockHeld:
				report(call.Pos(), "second Lock of %s while it is already held: self-deadlock", name)
			case lockRHeld:
				report(call.Pos(), "Lock of %s while it is read-locked: read-to-write upgrade deadlocks", name)
			}
		}
		return st.withHeld(key, lockHeld)
	case "RLock":
		if report != nil && present {
			switch prev {
			case lockHeld:
				report(call.Pos(), "RLock of %s while its write lock is held: self-deadlock", name)
			case lockRHeld:
				report(call.Pos(), "recursive RLock of %s: deadlocks once a writer queues between the two", name)
			}
		}
		return st.withHeld(key, lockRHeld)
	case "Unlock":
		if report != nil {
			if !present {
				report(call.Pos(), "Unlock of %s which is not locked on any path to here", name)
			} else if prev == lockRHeld {
				report(call.Pos(), "Unlock of %s but it is read-locked: use RUnlock", name)
			}
		}
		return st.withoutHeld(key)
	case "RUnlock":
		if report != nil {
			if !present {
				report(call.Pos(), "RUnlock of %s which is not read-locked on any path to here", name)
			} else if prev == lockHeld {
				report(call.Pos(), "RUnlock of %s but its write lock is held: use Unlock", name)
			}
		}
		return st.withoutHeld(key)
	case "TryLock", "TryRLock":
		return st.withHeld(key, lockMaybe)
	}
	return st
}

// checkReturn applies the pending defers to the lock set and reports any
// primitive still (or possibly still) held at this return.
func (lf *lockFlow) checkReturn(pos token.Pos, st lockFacts, report lockReporter) {
	eff := st
	suppressed := map[syncObj]bool{}
	for _, k := range sortedSyncObjs(st.defers) {
		switch st.defers[k] {
		case deferUnlock, deferRUnlock:
			eff = eff.withoutHeld(k)
		case deferMixed:
			suppressed[k] = true // conditional defer: can't reason about it
		}
	}
	for _, k := range sortedSyncObjs(eff.held) {
		if suppressed[k] {
			continue
		}
		switch eff.held[k] {
		case lockHeld, lockRHeld:
			report(pos, "%s is still locked at this return", k.name())
		case lockMaybe:
			report(pos, "%s may still be locked at this return (locked on some paths only)", k.name())
		}
	}
}

// checkLockDiscipline runs the lock-set dataflow over one function body.
func checkLockDiscipline(p *Pass, file *ast.File, body *ast.BlockStmt) {
	lf := &lockFlow{info: p.Info}
	sol := Solve(NewCFG(body), lf)
	report := func(pos token.Pos, format string, args ...any) {
		if !p.Annotated(file, pos, lockSafeDirective) {
			p.Report(pos, format, args...)
		}
	}
	sol.Replay(func(n ast.Node, before any) {
		lf.apply(n, before.(lockFacts), report)
	})
}

// ---- copylock checks ----

// lockTypeNames are the sync types whose values must never be copied (they
// all embed a noCopy or carry internal state that copying corrupts).
var lockTypeNames = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
}

// isUncopyableSync reports whether t is a sync (or sync/atomic) type whose
// values must not be copied, returning its display name.
func isUncopyableSync(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	switch obj.Pkg().Path() {
	case "sync":
		if lockTypeNames[obj.Name()] {
			return "sync." + obj.Name(), true
		}
	case "sync/atomic":
		return "atomic." + obj.Name(), true
	}
	return "", false
}

// typeCarriesLock reports whether a value of type t contains an uncopyable
// sync primitive by value (struct fields and array elements recurse;
// pointers, slices, maps, and channels reference rather than carry).
func typeCarriesLock(t types.Type) (string, bool) {
	return typeCarriesLock1(t, make(map[types.Type]bool))
}

func typeCarriesLock1(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	if name, ok := isUncopyableSync(t); ok {
		return name, true
	}
	switch u := t.(type) {
	case *types.Named:
		return typeCarriesLock1(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := typeCarriesLock1(u.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return typeCarriesLock1(u.Elem(), seen)
	}
	return "", false
}

// checkEmbeddedLocks flags anonymous sync primitive value fields: every
// copy of the struct copies the lock, and the promoted Lock/Unlock methods
// become part of the outer type's API.
func checkEmbeddedLocks(p *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			if len(fld.Names) != 0 {
				continue // named field: carrying a lock by name is fine
			}
			if _, isPtr := fld.Type.(*ast.StarExpr); isPtr {
				continue // pointer embed references, it does not carry
			}
			tv, ok := p.Info.Types[fld.Type]
			if !ok {
				continue
			}
			name, ok := isUncopyableSync(tv.Type)
			if !ok {
				continue
			}
			if p.Annotated(file, fld.Pos(), lockSafeDirective) {
				continue
			}
			p.Report(fld.Pos(), "embedding %s: every struct copy copies the lock and its methods are promoted into the API; use a named field instead", name)
		}
		return true
	})
}

// checkValueCarriers flags value receivers and by-value parameters whose
// type carries a lock: the call copies the primitive.
func checkValueCarriers(p *Pass, file *ast.File) {
	checkFields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			if _, isPtr := fld.Type.(*ast.StarExpr); isPtr {
				continue
			}
			tv, ok := p.Info.Types[fld.Type]
			if !ok {
				continue
			}
			name, ok := typeCarriesLock(tv.Type)
			if !ok {
				continue
			}
			if p.Annotated(file, fld.Pos(), lockSafeDirective) {
				continue
			}
			p.Report(fld.Pos(), "%s copies a value carrying %s; pass a pointer instead", what, name)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			checkFields(fn.Recv, "value receiver")
			checkFields(fn.Type.Params, "by-value parameter")
		case *ast.FuncLit:
			checkFields(fn.Type.Params, "by-value parameter")
		}
		return true
	})
}
