package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix enforces an all-or-nothing discipline on sync/atomic: once any
// code in the package accesses a variable or field through the sync/atomic
// package functions, every other access to it must be atomic too. A plain
// read concurrent with an atomic write is a data race the race detector
// only reports on the interleavings it happens to see; this rule makes the
// mixing itself the error.
//
// Pass 1 collects every `&x` / `&s.f` argument of a sync/atomic call and
// resolves it to its types.Object. Pass 2 flags every other mention of
// those objects. Exempt: the atomic call sites themselves, composite
// literal keys (`S{f: 0}` names the field, it does not access it), and
// declarations (initialization precedes publication).
//
// Typed atomics (atomic.Uint64 and friends) are immune by construction —
// the type system already forbids plain access — and are the repo's
// preferred style; this rule guards the classic-style call sites.
//
// Escape hatch: //bayesvet:atomicmix <reason> for provably unpublished
// access (e.g. a snapshot after all goroutines joined).
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed via sync/atomic must never be accessed plainly",
	Run:  runAtomicMix,
}

const atomicMixDirective = "bayesvet:atomicmix"

func runAtomicMix(p *Pass) {
	// Pass 1: objects whose address is taken by a sync/atomic call, with
	// one representative atomic site each for the diagnostic, and the
	// identifiers that are themselves part of an atomic access.
	atomicSite := make(map[types.Object]token.Pos)
	exemptIdent := make(map[*ast.Ident]bool)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(p.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj, id := addrTarget(p.Info, un.X)
				if obj == nil {
					continue
				}
				if prev, seen := atomicSite[obj]; !seen || un.Pos() < prev {
					atomicSite[obj] = un.Pos()
				}
				exemptIdent[id] = true
			}
			return true
		})
	}
	if len(atomicSite) == 0 {
		return
	}

	// Pass 2: any other mention is a plain access.
	type finding struct {
		pos token.Pos
		obj types.Object
	}
	var findings []finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							exemptIdent[id] = true
						}
					}
				}
			case *ast.Ident:
				obj := p.Info.Uses[n]
				if obj == nil || exemptIdent[n] {
					return true
				}
				if _, tracked := atomicSite[obj]; !tracked {
					return true
				}
				if p.Annotated(file, n.Pos(), atomicMixDirective) {
					return true
				}
				findings = append(findings, finding{pos: n.Pos(), obj: obj})
			}
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		at := p.Fset.Position(atomicSite[f.obj])
		p.Report(f.pos, "plain access to %s, which is accessed via sync/atomic (e.g. %s:%d): races with the atomic sites",
			f.obj.Name(), at.Filename, at.Line)
	}
}

// isAtomicPkgCall reports whether call invokes a package-level function of
// sync/atomic (atomic.AddUint64, atomic.LoadPointer, ...).
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "sync/atomic"
}

// addrTarget resolves the operand of a unary & inside an atomic call to the
// variable or field object being atomically accessed, along with the
// identifier naming it. Index expressions are skipped: per-element atomics
// on a slice can't be paired with whole-value mentions soundly.
func addrTarget(info *types.Info, e ast.Expr) (types.Object, *ast.Ident) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			if obj := info.Uses[x.Sel]; obj != nil {
				if v, ok := obj.(*types.Var); ok {
					return v, x.Sel
				}
			}
			return nil, nil
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				if v, ok := obj.(*types.Var); ok {
					return v, x
				}
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}
