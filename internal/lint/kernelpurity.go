package lint

import (
	"go/ast"
	"go/types"
)

// KernelPurity encodes the compiled-inference contract: the kernels
// (the driver scopes this rule to internal/graph — Plan/Batch execution,
// the fast schedule, covariance extraction) are pure functions of their
// inputs. A posterior may depend only on the observations and the plan,
// never on the wall clock, a random source, mutable package state, or map
// iteration order; that is what makes lane posteriors bit-identical across
// batch widths and reference goldens meaningful. Flagged:
//
//   - calls into the wall clock (time.Now, time.Since, time.Sleep, ...)
//   - importing math/rand or math/rand/v2
//   - writes to package-level variables outside func init
//   - ranging over a map (iteration order is randomized)
var KernelPurity = &Analyzer{
	Name: "kernelpurity",
	Doc:  "inference kernels must be pure functions of their inputs",
	Run:  runKernelPurity,
}

// impureTimeFuncs are the time package functions that read or wait on the
// wall clock. Pure constructors/conversions (time.Duration, time.Unix) are
// not listed.
var impureTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

func runKernelPurity(p *Pass) {
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path := importPath(imp)
			if path == "math/rand" || path == "math/rand/v2" {
				p.Report(imp.Pos(), "kernel imports %s: inference must be deterministic, with randomness injected by the caller (internal/rng) if needed at all", path)
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isInit := fd.Name.Name == "init" && fd.Recv == nil
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.CallExpr:
					if pkg, name := calleePkgFunc(p.Info, s); pkg == "time" && impureTimeFuncs[name] {
						p.Report(s.Pos(), "kernel reads the wall clock (time.%s); posteriors must be pure functions of observations and plan", name)
					}
				case *ast.RangeStmt:
					tv, ok := p.Info.Types[s.X]
					if ok && tv.Type != nil {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							p.Report(s.Pos(), "kernel iterates over a map: iteration order is randomized and would make execution order (and float summation) nondeterministic")
						}
					}
				case *ast.AssignStmt:
					if isInit {
						return true
					}
					for _, lhs := range s.Lhs {
						if v := pkgLevelTarget(p.Info, p.Types, lhs); v != nil {
							p.Report(lhs.Pos(), "kernel writes package-level state %s; kernels must not mutate anything outside their receiver and arguments", v.Name())
						}
					}
				case *ast.IncDecStmt:
					if isInit {
						return true
					}
					if v := pkgLevelTarget(p.Info, p.Types, s.X); v != nil {
						p.Report(s.Pos(), "kernel writes package-level state %s; kernels must not mutate anything outside their receiver and arguments", v.Name())
					}
				}
				return true
			})
		}
	}
}

// importPath returns an import spec's unquoted path.
func importPath(imp *ast.ImportSpec) string {
	s := imp.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}

// calleePkgFunc resolves a call of the form pkg.Func to its package name
// (by import path's base via the PkgName object) and function name; other
// call shapes return "", "".
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkg, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// pkgLevelTarget reports whether an assignment target is rooted at a
// package-level variable of the analyzed package (directly, or through an
// index/field/deref chain like global[i] or global.field), returning that
// variable.
func pkgLevelTarget(info *types.Info, pkg *types.Package, lhs ast.Expr) *types.Var {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			// A selector may be pkg.Var (package qualifier) or expr.Field.
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
					lhs = e.Sel
					continue
				}
			}
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.Ident:
			v, ok := info.ObjectOf(e).(*types.Var)
			if !ok || v.Pkg() != pkg {
				return nil
			}
			if v.Parent() == pkg.Scope() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}
