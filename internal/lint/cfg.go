package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// This file is the control-flow half of the lint package's dataflow engine:
// NewCFG lowers one function body into basic blocks connected by
// branch/loop/switch/select edges, and dataflow.go runs a forward worklist
// solver over the result. The AST-pattern rules (maporder, hotalloc, ...)
// never needed control flow; the concurrency rules (locksafe, wgdiscipline,
// blockinglock) are all "on some path ..." properties and do.
//
// Design choices, and the invariants rules may rely on:
//
//   - Blocks hold only *simple* nodes — plain statements (assignments,
//     calls, sends, go/defer, returns) and the branch-condition
//     expressions of the control statements that were lowered into edges.
//     A node never contains nested control flow, so a transfer function
//     can walk it with InspectShallow without double-seeing statements.
//   - Function literals are opaque: the CFG of the enclosing function does
//     not descend into them (a literal's body is a different function with
//     its own CFG). InspectShallow stops at them accordingly.
//   - Every function exit is an explicit node: each *ast.ReturnStmt stays
//     in its block, and a body that can fall off the end gets a synthetic
//     *ImplicitReturn positioned at the closing brace. A block ending in
//     panic(...) simply has no successors (panic unwinds; rules that check
//     "held at return" deliberately don't fire on panic paths).
//   - Blocks are numbered in creation order and edges are appended in
//     source order, so every traversal in this package is deterministic.
//   - Unreachable statements (after return/break/...) still get blocks, but
//     those blocks have no predecessors; the solver never reaches them and
//     Replay skips them.
//
// Approximations (all safe for the rules built here): case expressions are
// evaluated in their case's block rather than in dispatch order, a
// fallthrough edge re-enters the next case at its expressions, and range
// key/value assignments are not materialized.

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks[0] is the entry block; order is creation order.
	Blocks []*Block
}

// Block is one basic block: straight-line nodes followed by edges to every
// possible successor.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// ImplicitReturn is a synthetic CFG node marking the fall-off-the-end exit
// of a function body, positioned at the closing brace.
type ImplicitReturn struct {
	Rbrace token.Pos
}

func (r *ImplicitReturn) Pos() token.Pos { return r.Rbrace }
func (r *ImplicitReturn) End() token.Pos { return r.Rbrace + 1 }

// RangeOver is a synthetic CFG node marking the per-iteration fetch in a
// range loop's header (the ranged expression itself is evaluated once, as
// an ordinary node, before the header).
type RangeOver struct {
	X ast.Expr
}

func (r *RangeOver) Pos() token.Pos { return r.X.Pos() }
func (r *RangeOver) End() token.Pos { return r.X.End() }

// InspectShallow walks n in the way CFG transfer functions need: like
// ast.Inspect, but it understands the package's synthetic nodes and does
// not descend into function literals (the literal itself is still visited,
// so a rule can treat it as an opaque value).
func InspectShallow(n ast.Node, f func(ast.Node) bool) {
	switch sn := n.(type) {
	case *ImplicitReturn:
		f(sn)
		return
	case *RangeOver:
		if f(sn) {
			InspectShallow(sn.X, f)
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			f(m)
			return false
		}
		return f(m)
	})
}

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:         &CFG{},
		labelCtls:   make(map[string]*labelCtl),
		labelBlocks: make(map[string]*Block),
	}
	b.cur = b.newBlock()
	b.block(body)
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, &ImplicitReturn{Rbrace: body.Rbrace})
	}
	for _, g := range b.gotos {
		if target, ok := b.labelBlocks[g.label]; ok {
			edge(g.from, target)
		}
	}
	return b.cfg
}

// labelCtl is a labeled statement's break/continue targets.
type labelCtl struct {
	brk, cont *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil while the current point is
	// unreachable (after return/break/panic/...).
	cur *Block

	breaks    []*Block // innermost break target last
	continues []*Block // innermost continue target last

	labelCtls   map[string]*labelCtl
	labelBlocks map[string]*Block
	gotos       []pendingGoto

	// fallthroughTo is the next case's block while building a switch case
	// body (nil in the last case and outside switches).
	fallthroughTo *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge appends from→to, ignoring detached ends and duplicates.
func edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a simple node to the current block, opening a fresh
// (unreachable) block when the current point is dead.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) block(s *ast.BlockStmt) {
	for _, st := range s.List {
		b.stmt(st)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) { b.stmtLabeled(s, "") }

func (b *cfgBuilder) stmtLabeled(s ast.Stmt, label string) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable region: floating block, no preds
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.block(s)
	case *ast.LabeledStmt:
		start := b.newBlock()
		edge(b.cur, start)
		b.cur = start
		b.labelBlocks[s.Label.Name] = start
		b.stmtLabeled(s.Stmt, s.Label.Name)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, false)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur = nil
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// Assign, Decl, IncDec, Send, Go, Defer, ...: simple nodes.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur

	then := b.newBlock()
	edge(cond, then)
	b.cur = then
	b.block(s.Body)
	thenEnd := b.cur

	elseEnd := cond // no else: the condition falls through to the join
	if s.Else != nil {
		els := b.newBlock()
		edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}
	if thenEnd == nil && elseEnd == nil {
		b.cur = nil
		return
	}
	join := b.newBlock()
	edge(thenEnd, join)
	edge(elseEnd, join)
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	header := b.newBlock()
	edge(b.cur, header)
	if s.Cond != nil {
		header.Nodes = append(header.Nodes, s.Cond)
	}
	exit := b.newBlock()
	post := b.newBlock() // continue target; holds Post
	if label != "" {
		b.labelCtls[label] = &labelCtl{brk: exit, cont: post}
	}
	b.breaks = append(b.breaks, exit)
	b.continues = append(b.continues, post)

	body := b.newBlock()
	edge(header, body)
	if s.Cond != nil {
		edge(header, exit)
	}
	b.cur = body
	b.block(s.Body)
	edge(b.cur, post)
	if s.Post != nil {
		post.Nodes = append(post.Nodes, s.Post)
	}
	edge(post, header)

	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X) // the ranged expression is evaluated once, before the loop
	header := b.newBlock()
	edge(b.cur, header)
	header.Nodes = append(header.Nodes, &RangeOver{X: s.X})
	exit := b.newBlock()
	if label != "" {
		b.labelCtls[label] = &labelCtl{brk: exit, cont: header}
	}
	b.breaks = append(b.breaks, exit)
	b.continues = append(b.continues, header)

	body := b.newBlock()
	edge(header, body)
	edge(header, exit)
	b.cur = body
	b.block(s.Body)
	edge(b.cur, header)

	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = exit
}

// switchBody lowers an (expression or type) switch's clause list. The
// header is the current block; every case gets an edge from it, and a
// missing default adds a header→exit edge.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string, allowFallthrough bool) {
	header := b.cur
	exit := b.newBlock()
	if label != "" {
		b.labelCtls[label] = &labelCtl{brk: exit}
	}
	b.breaks = append(b.breaks, exit)

	clauses := body.List
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		caseBlocks[i] = b.newBlock()
		edge(header, caseBlocks[i])
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		edge(header, exit)
	}
	prevFallthrough := b.fallthroughTo
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.fallthroughTo = nil
		if allowFallthrough && i+1 < len(clauses) {
			b.fallthroughTo = caseBlocks[i+1]
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		edge(b.cur, exit)
	}
	b.fallthroughTo = prevFallthrough
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = exit
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	header := b.cur
	exit := b.newBlock()
	if label != "" {
		b.labelCtls[label] = &labelCtl{brk: exit}
	}
	b.breaks = append(b.breaks, exit)
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		caseBlock := b.newBlock()
		edge(header, caseBlock)
		b.cur = caseBlock
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		edge(b.cur, exit)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = exit
	if len(s.Body.List) == 0 {
		b.cur = nil // select{} blocks forever
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if label != "" {
			if ctl, ok := b.labelCtls[label]; ok {
				edge(b.cur, ctl.brk)
			}
		} else if len(b.breaks) > 0 {
			edge(b.cur, b.breaks[len(b.breaks)-1])
		}
	case token.CONTINUE:
		if label != "" {
			if ctl, ok := b.labelCtls[label]; ok {
				edge(b.cur, ctl.cont)
			}
		} else if len(b.continues) > 0 {
			edge(b.cur, b.continues[len(b.continues)-1])
		}
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
	case token.FALLTHROUGH:
		edge(b.cur, b.fallthroughTo)
	}
	b.cur = nil
}

// isPanicCall reports whether e is a call to the predeclared panic. The
// builder has no type info, so a shadowed panic would also match — the
// repo never shadows it, and the consequence is only a conservatively
// terminated block.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// String renders the CFG for tests and debugging:
//
//	b0: [x := 0] -> b1
//	b1: [x < 10] -> b2 b3
func (c *CFG) String() string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "b%d: [", b.Index)
		for i, n := range b.Nodes {
			if i > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(nodeText(n))
		}
		sb.WriteString("]")
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeText renders one block node on a single line.
func nodeText(n ast.Node) string {
	switch sn := n.(type) {
	case *ImplicitReturn:
		return "implicit-return"
	case *RangeOver:
		return "range-over " + nodeText(sn.X)
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}
