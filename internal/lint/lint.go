// Package lint is BayesPerf's in-tree static-analysis framework: a
// stdlib-only (go/parser, go/ast, go/types — no external modules) package
// loader plus a small Analyzer/Pass API, backing the cmd/bayesvet driver.
//
// The point of the suite is to turn the pipeline's *dynamic* guarantees —
// bitwise-deterministic posteriors, 0 allocs/op hot paths, nil-receiver
// no-op instruments — into *static* CI-gated rules that hold on every code
// path, not just the ones a test happens to exercise. Each analyzer in this
// package encodes one invariant the repo already promises:
//
//	maporder      map iteration order must not reach any output
//	kernelpurity  inference kernels are pure functions of their inputs
//	floateq       no tolerance-free float comparisons outside tests
//	hotalloc      //bayesperf:hotpath functions must not allocate
//	nilrecv       //bayesvet:nilsafe instruments guard nil receivers
//	locksafe      lock-set dataflow: leaked/double/mismatched/copied locks
//	atomicmix     sync/atomic'd variables are never accessed plainly
//	wgdiscipline  WaitGroup.Add precedes the go it gates; no Wait under lock
//	blockinglock  no blocking channel ops / Wait / nested Lock under a mutex
//
// The first five are AST pattern matchers. The concurrency family
// (locksafe, atomicmix, wgdiscipline, blockinglock) runs on the package's
// dataflow engine — a per-function control-flow graph (cfg.go) and a
// generic forward worklist solver (dataflow.go) — because its invariants
// are path properties ("held on some path to this return") that no single
// AST pattern can see.
//
// Analyzers are scope-agnostic: they analyze whatever package they are
// handed. The driver (cmd/bayesvet) decides which analyzers apply to which
// import paths, so the same analyzer can run against both the real tree and
// the self-contained testdata packages.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one lint rule: a name (stable, used in diagnostics and the
// driver's -rules filter), one-line documentation, and the Run hook.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Pass is one analyzer's view of one loaded package, plus the sink for its
// findings.
type Pass struct {
	*Package
	rule  string
	diags *[]Diagnostic

	// directive lines per file, built lazily: for each directive string,
	// the set of lines in the file carrying a comment that contains it.
	dirCache map[*ast.File]map[string]map[int]bool
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// directiveLines returns the set of lines of file on which a comment
// containing the directive appears (the whole comment group counts, so a
// directive inside a doc comment marks every line of that group).
func (p *Pass) directiveLines(file *ast.File, directive string) map[int]bool {
	if p.dirCache == nil {
		p.dirCache = make(map[*ast.File]map[string]map[int]bool)
	}
	byDir, ok := p.dirCache[file]
	if !ok {
		byDir = make(map[string]map[int]bool)
		p.dirCache[file] = byDir
	}
	if lines, ok := byDir[directive]; ok {
		return lines
	}
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, directive) {
				lines[p.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	byDir[directive] = lines
	return lines
}

// Annotated reports whether pos's line, or the line directly above it, has a
// comment containing the directive — the convention every bayesvet escape
// hatch uses (trailing same-line comment or a comment line of its own).
func (p *Pass) Annotated(file *ast.File, pos token.Pos, directive string) bool {
	lines := p.directiveLines(file, directive)
	if len(lines) == 0 {
		return false
	}
	line := p.Fset.Position(pos).Line
	return lines[line] || lines[line-1]
}

// DocHasDirective reports whether a doc comment group contains the
// directive.
func DocHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, directive) {
			return true
		}
	}
	return false
}

// RunAnalyzers runs the analyzers over the loaded package and returns the
// findings sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Package: pkg, rule: a.Name, diags: &diags}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, line, column, then rule — the
// order every bayesvet surface (text, json, github) emits.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder, KernelPurity, FloatEq, HotAlloc, NilRecv,
		LockSafe, AtomicMix, WGDiscipline, BlockingLock,
	}
}

// ByName resolves a comma-separated rule list ("maporder,floateq") against
// the suite; an unknown name is an error.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have %s)", n, ruleNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func ruleNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
