package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// Expectation-comment harness: testdata files mark the diagnostics they
// expect with trailing comments of the form
//
//	someMapRange() // want "iteration over map"
//	twoFindings()  // want "first regex" "second regex"
//
// Each quoted string is a regular expression matched against the
// diagnostic's "rule: message" text on that line. CheckExpectations runs
// the analyzers over a loaded package and returns one problem string per
// unexpected diagnostic and per unmatched expectation — empty means the
// package behaved exactly as annotated. (No -fix machinery: the suite only
// reports.)

// expectation is one parsed // want regex.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantMarker = regexp.MustCompile(`//\s*want\s`)

// parseExpectations extracts every // want expectation from the package's
// files.
func parseExpectations(pkg *Package) ([]*expectation, error) {
	var out []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				loc := wantMarker.FindStringIndex(c.Text)
				if loc == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(c.Text[loc[1]:])
				for rest != "" {
					if rest[0] != '"' {
						return nil, fmt.Errorf("%s: malformed // want clause %q (expected quoted regexps)", pos, c.Text)
					}
					end := closingQuote(rest)
					if end < 0 {
						return nil, fmt.Errorf("%s: unterminated quote in // want clause %q", pos, c.Text)
					}
					lit := rest[:end+1]
					rest = strings.TrimSpace(rest[end+1:])
					s, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%s: bad // want string %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s: bad // want regexp %q: %v", pos, s, err)
					}
					out = append(out, &expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
						raw:  s,
					})
				}
			}
		}
	}
	return out, nil
}

// closingQuote returns the index of the unescaped closing quote of a Go
// string literal starting at s[0] == '"', or -1.
func closingQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

// CheckExpectations runs the analyzers over the package and diffs the
// findings against the package's // want comments. The returned problems
// are empty iff every finding was expected and every expectation fired.
func CheckExpectations(pkg *Package, analyzers []*Analyzer) []string {
	expects, err := parseExpectations(pkg)
	if err != nil {
		return []string{err.Error()}
	}
	var problems []string
	for _, d := range RunAnalyzers(pkg, analyzers) {
		text := d.Rule + ": " + d.Message
		matched := false
		for _, e := range expects {
			if e.hit || e.file != filepath.Base(d.Pos.Filename) || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(text) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s: %s", d.Pos, text))
		}
	}
	for _, e := range expects {
		if !e.hit {
			problems = append(problems, fmt.Sprintf("expected diagnostic did not fire at %s:%d: %q", e.file, e.line, e.raw))
		}
	}
	return problems
}
