package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BlockingLock flags operations that can block indefinitely while a mutex
// is definitely held — the shape of every deadlock the stream engine's
// emit/flush paths could grow: a goroutine parks on a channel or WaitGroup
// while holding the lock every other goroutine needs to make progress.
//
// On any path where the locksafe lattice proves a lock held, the rule
// reports:
//
//   - channel sends and receives (including `range ch` and blocking
//     selects); a select with a default clause cannot block and is exempt
//   - WaitGroup.Wait
//   - acquiring a *different* lock (lock-order inversion risk; re-locking
//     the same primitive is locksafe's double-Lock finding)
//
// Only definitely-held locks fire — "maybe held" would drown real findings
// in conditional-locking noise.
//
// Escape hatch: //bayesvet:blockinglock <reason> — e.g. a send on a
// buffered channel that the holder provably never fills.
var BlockingLock = &Analyzer{
	Name: "blockinglock",
	Doc:  "no blocking channel ops, Wait, or nested Lock while a mutex is held",
	Run:  runBlockingLock,
}

const blockingLockDirective = "bayesvet:blockinglock"

func runBlockingLock(p *Pass) {
	for _, file := range p.Files {
		nonBlocking := nonBlockingComms(file)
		for _, fn := range funcBodies(file) {
			checkBlockingUnderLock(p, file, fn.body, nonBlocking)
		}
	}
}

// nonBlockingComms collects the comm statements of every select that has a
// default clause: those sends/receives never block.
func nonBlockingComms(file *ast.File) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				out[cc.Comm] = true
			}
		}
		return true
	})
	return out
}

func checkBlockingUnderLock(p *Pass, file *ast.File, body *ast.BlockStmt, nonBlocking map[ast.Node]bool) {
	lf := &lockFlow{info: p.Info}
	Solve(NewCFG(body), lf).Replay(func(n ast.Node, before any) {
		st := before.(lockFacts)
		if !anyDefinitelyHeld(st) {
			return
		}
		held := heldNames(st)
		report := func(pos token.Pos, format string, args ...any) {
			if !p.Annotated(file, pos, blockingLockDirective) {
				p.Report(pos, format, args...)
			}
		}
		if nonBlocking[n] {
			return // comm stmt of a select with default: cannot block
		}
		if ro, ok := n.(*RangeOver); ok {
			if tv, ok := p.Info.Types[ro.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(ro.Pos(), "ranging over a channel while %s is held: blocks until the channel closes", held)
				}
			}
			return
		}
		InspectShallow(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.SendStmt:
				report(m.Arrow, "channel send while %s is held", held)
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					report(m.OpPos, "channel receive while %s is held", held)
				}
			case *ast.CallExpr:
				recv, typ, method, ok := syncMethodCall(p.Info, m)
				if !ok {
					return true
				}
				if typ == "WaitGroup" && method == "Wait" {
					report(m.Pos(), "WaitGroup.Wait while %s is held", held)
					return true
				}
				if isLockType(typ) && (method == "Lock" || method == "RLock") {
					key, ok := resolveSyncObj(p.Info, recv)
					if !ok {
						return true
					}
					if s, present := st.held[key]; present && (s == lockHeld || s == lockRHeld) {
						return true // same primitive: locksafe's double-Lock finding
					}
					report(m.Pos(), "acquiring %s while %s is held: lock-order deadlock risk", key.name(), held)
				}
			}
			return true
		})
	})
}
