// Package blockinglock exercises the blockinglock rule: no operation that
// can block indefinitely — channel send/recv, WaitGroup.Wait, acquiring a
// second lock — on a path where a mutex is definitely held.
package blockinglock

import "sync"

type q struct {
	mu    sync.Mutex
	order sync.Mutex
	wg    sync.WaitGroup
	ch    chan int
	n     int
}

// SendUnderLock parks on a channel while holding the lock.
func (s *q) SendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while s.mu is held"
	s.mu.Unlock()
}

// SendAfterUnlock releases first: clean.
func (s *q) SendAfterUnlock(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- v
}

// RecvUnderLock blocks on a receive with the deferred unlock still pending.
func (s *q) RecvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while s.mu is held"
}

// RangeUnderLock blocks until the channel closes.
func (s *q) RangeUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want "ranging over a channel while s.mu is held"
		s.n += v
	}
}

// NonBlockingSelect cannot block (default clause): clean.
func (s *q) NonBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.n += v
	default:
	}
}

// BlockingSelectUnderLock has no default, so it parks.
func (s *q) BlockingSelectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch: // want "channel receive while s.mu is held"
		s.n += v
	}
}

// WaitUnderLock parks on the pool while holding the lock.
func (s *q) WaitUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want "WaitGroup.Wait while s.mu is held"
	s.mu.Unlock()
}

// NestedLock acquires a second lock under the first: inversion risk.
func (s *q) NestedLock() {
	s.mu.Lock()
	s.order.Lock() // want "acquiring s.order while s.mu is held"
	s.n++
	s.order.Unlock()
	s.mu.Unlock()
}

// SequentialLocks never overlap: clean.
func (s *q) SequentialLocks() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.order.Lock()
	s.n++
	s.order.Unlock()
}

// MaybeHeld only holds the lock on some paths, which the rule deliberately
// ignores: clean.
func (s *q) MaybeHeld(c bool) {
	if c {
		s.mu.Lock()
	}
	s.ch <- 1
	if c {
		s.mu.Unlock()
	}
}

// BufferedHandoff is a provably non-blocking send; the annotation is the
// escape hatch, so: clean.
func (s *q) BufferedHandoff(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v //bayesvet:blockinglock ch is buffered and drained faster than filled
}
