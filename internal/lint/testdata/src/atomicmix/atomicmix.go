// Package atomicmix exercises the atomicmix rule: a variable or field
// accessed through sync/atomic anywhere in the package must never be read
// or written plainly elsewhere.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  uint64        // accessed via sync/atomic below: tracked
	cold  uint64        // never accessed atomically: free
	typed atomic.Uint64 // typed atomics are immune by construction
}

// Inc and Load are the atomic sites: clean.
func (c *counters) Inc()         { atomic.AddUint64(&c.hits, 1) }
func (c *counters) Load() uint64 { return atomic.LoadUint64(&c.hits) }

// Racy reads the tracked field plainly.
func (c *counters) Racy() uint64 {
	return c.hits // want "plain access to hits"
}

// RacyWrite writes it plainly.
func (c *counters) RacyWrite() {
	c.hits = 0 // want "plain access to hits"
}

// Cold only ever sees plain access: clean.
func (c *counters) Cold() uint64 {
	c.cold++
	return c.cold
}

// Typed uses the atomic.Uint64 API: clean.
func (c *counters) Typed() uint64 {
	c.typed.Add(1)
	return c.typed.Load()
}

// newCounters names the field in a composite literal, which declares
// rather than accesses: clean.
func newCounters() *counters {
	return &counters{hits: 0}
}

// Snapshot reads after all writers joined; the annotation is the escape
// hatch, so: clean.
func (c *counters) Snapshot() uint64 {
	return c.hits //bayesvet:atomicmix all workers joined before snapshotting
}

// Package-level variables are tracked the same way.
var published uint64

func publish()        { atomic.StoreUint64(&published, 1) }
func peek() uint64    { return published } // want "plain access to published"
func observe() uint64 { return atomic.LoadUint64(&published) }
