// Package floateq exercises the floateq rule: no tolerance-free
// floating-point ==/!= outside tests and annotated lines.
package floateq

func bad(a, b float64) bool {
	return a == b // want "tolerance-free floating-point =="
}

func badNeq(a float64) bool {
	return a != 0 // want "tolerance-free floating-point !="
}

func badF32(a, b float32) bool {
	return a == b // want "tolerance-free floating-point =="
}

func annotatedAbove(std float64) bool {
	//bayesvet:bitwise std is assigned zero, never computed
	return std == 0
}

func annotatedSameLine(std float64) bool {
	return std == 0 //bayesvet:bitwise sentinel
}

func ints(a, b int) bool {
	return a == b
}

func constants() bool {
	return 0.1 == 0.3 // two constants compare exactly by definition: exempt
}

func toleranced(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
