// Package locksafe exercises the locksafe rule: the lock-set dataflow
// (leaks, double locks, Unlock/RUnlock mismatches) and the copylock checks
// (embedded locks, by-value receivers and parameters).
package locksafe

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Good is the canonical disciplined shape: clean.
func (s *S) Good() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// GoodExplicit unlocks without defer: clean.
func (s *S) GoodExplicit() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// LeakOnError forgets to unlock on the early-return path.
func (s *S) LeakOnError(err error) error {
	s.mu.Lock()
	if err != nil {
		return err // want "s.mu is still locked at this return"
	}
	s.mu.Unlock()
	return nil
}

// MaybeLeak locks on one path only and never unlocks.
func (s *S) MaybeLeak(c bool) {
	if c {
		s.mu.Lock()
	}
	s.n++
} // want "s.mu may still be locked at this return"

// DoubleLock self-deadlocks.
func (s *S) DoubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want "second Lock of s.mu"
	s.mu.Unlock()
}

// UnlockWithoutLock releases a lock it never took.
func (s *S) UnlockWithoutLock() {
	s.mu.Unlock() // want "Unlock of s.mu which is not locked"
}

// Upgrade tries to write-lock while read-locked.
func (s *S) Upgrade() int {
	s.rw.RLock()
	s.rw.Lock() // want "read-to-write upgrade"
	defer s.rw.Unlock()
	return s.n
}

// RecursiveRLock deadlocks once a writer queues between the two.
func (s *S) RecursiveRLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.rw.RLock() // want "recursive RLock of s.rw"
	defer s.rw.RUnlock()
	return s.n
}

// WrongUnlock pairs RLock with Unlock.
func (s *S) WrongUnlock() int {
	s.rw.RLock()
	n := s.n
	s.rw.Unlock() // want "use RUnlock"
	return n
}

// ConditionalWithDefer registers the unlock on the same path as the lock:
// clean (the rule suppresses primitives whose defers are conditional).
func (s *S) ConditionalWithDefer(c bool) {
	if c {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	s.n++
}

// BothBranchesUnlock releases on every path: clean.
func (s *S) BothBranchesUnlock(c bool) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// LoopBody locks and unlocks per iteration: clean.
func (s *S) LoopBody(xs []int) {
	for range xs {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// Handoff intentionally returns with the lock held; the annotation is the
// escape hatch, so: clean.
func (s *S) Handoff() {
	s.mu.Lock()
	//bayesvet:locksafe caller unlocks via (*S).Release
	return
}

// Embedded carries an anonymous lock: every copy copies it and Lock/Unlock
// leak into the API.
type Embedded struct {
	sync.Mutex // want "embedding sync.Mutex"
	n          int
}

// PtrEmbedded embeds by pointer, which references rather than carries:
// clean.
type PtrEmbedded struct {
	*sync.Mutex
	n int
}

// Named holds the lock as a named field: clean.
type Named struct {
	mu sync.Mutex
	n  int
}

// snapshot has a value receiver on a lock-carrying type: the call copies
// the mutex.
func (n Named) snapshot() int { // want "value receiver copies a value carrying sync.Mutex"
	return n.n
}

// grow takes a pointer receiver: clean.
func (n *Named) grow() { n.n++ }

// copiesParam receives a WaitGroup by value: the classic broken signature.
func copiesParam(wg sync.WaitGroup) { // want "by-value parameter copies a value carrying sync.WaitGroup"
	wg.Wait()
}

// ptrParam passes the WaitGroup by pointer: clean.
func ptrParam(wg *sync.WaitGroup) {
	wg.Wait()
}
