// Package wgdiscipline exercises the wgdiscipline rule: WaitGroup.Add must
// run in the launching goroutine before the go statement it gates, and
// Wait must not run while a lock is held.
package wgdiscipline

import "sync"

type engine struct {
	wg sync.WaitGroup
	mu sync.Mutex
	n  int
}

func (e *engine) worker() {
	defer e.wg.Done()
	e.n++
}

// Spawn is the disciplined pool shape: clean.
func (e *engine) Spawn(workers int) {
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	e.wg.Wait()
}

// MissingAdd launches a Done-calling worker with no Add anywhere: Wait may
// return before the goroutine runs.
func (e *engine) MissingAdd() {
	go e.worker() // want "no e.wg.Add precedes the go statement"
	e.wg.Wait()
}

// ConditionalAdd only Adds on some paths to the launch.
func (e *engine) ConditionalAdd(extra bool) {
	if extra {
		e.wg.Add(1)
	}
	go e.worker() // want "on only some paths"
	e.wg.Wait()
}

// AddInsideGoroutine moves the Add into the goroutine, racing with Wait.
// The launch itself is also un-gated at the go statement.
func (e *engine) AddInsideGoroutine() {
	go func() { // want "no e.wg.Add precedes the go statement"
		e.wg.Add(1) // want "races with Wait"
		defer e.wg.Done()
		e.n++
	}()
	e.wg.Wait()
}

// SpawnLit gates a literal, with Done wrapped in a cleanup literal: clean.
func (e *engine) SpawnLit() {
	e.wg.Add(1)
	go func() {
		defer func() { e.wg.Done() }()
		e.n++
	}()
	e.wg.Wait()
}

// SpawnParam passes the WaitGroup to a free function: the summary maps the
// callee's parameter back to the caller's argument. Clean.
func SpawnParam() {
	var wg sync.WaitGroup
	wg.Add(1)
	go signal(&wg)
	wg.Wait()
}

func signal(wg *sync.WaitGroup) { wg.Done() }

// MissingAddParam is the same launch without the Add.
func MissingAddParam() {
	var wg sync.WaitGroup
	go signal(&wg) // want "no wg.Add precedes the go statement"
	wg.Wait()
}

// LocalGroup is a goroutine managing its own WaitGroup: the inner group is
// declared inside the literal, so the outer launch is not gated by it.
// Clean.
func LocalGroup(work []func()) {
	go func() {
		var inner sync.WaitGroup
		inner.Add(len(work))
		for _, f := range work {
			f := f
			go func() {
				defer inner.Done()
				f()
			}()
		}
		inner.Wait()
	}()
}

// WaitUnderLock parks on the pool while holding the lock its workers need.
func (e *engine) WaitUnderLock() {
	e.wg.Add(1)
	go e.worker()
	e.mu.Lock()
	e.wg.Wait() // want "Wait while e.mu is held"
	e.mu.Unlock()
}

// WaitAfterUnlock releases first: clean.
func (e *engine) WaitAfterUnlock() {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
	e.wg.Wait()
}

// Rebalance hands one worker to another group; the annotation is the
// escape hatch, so: clean.
func (e *engine) Rebalance(other *sync.WaitGroup) {
	//bayesvet:wgdiscipline other.Add happens in the coordinator before Rebalance is called
	go signal(other)
}
