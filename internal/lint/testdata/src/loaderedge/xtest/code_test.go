package xtest_test

// TestOnly references an undeclared symbol; the loader must never load
// _test.go files, so this is invisible to it.
func TestOnly() int { return symbolThatDoesNotExist() }
