// Package xtest checks that the loader ignores _test.go siblings: the
// sibling code_test.go declares a different package and does not
// type-check, so including it would fail the load.
package xtest

// Exported is the only declaration the loader should see.
func Exported() int { return 2 }
