//go:build bayesvet_never_set

package buildtag

// Excluded references an undeclared symbol; if the loader ever parses this
// file, type-checking the package fails and the loader test catches it.
func Excluded() int { return doesNotExistAnywhere() }
