// Package buildtag checks that the loader honors build constraints: the
// sibling skip.go is excluded by its //go:build line and references a
// symbol that does not exist, so merely parsing it would fail the load.
package buildtag

// Kept is the only declaration the loader should see.
func Kept() int { return 1 }
