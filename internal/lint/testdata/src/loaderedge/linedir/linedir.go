// Package linedir checks that diagnostic positions honor //line directives
// the way generated code uses them: the maporder violation below must be
// reported against the virtual file and line, not this file.
package linedir

//line virtual.gen.go:100
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
