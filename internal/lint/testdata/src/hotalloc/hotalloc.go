// Package hotalloc exercises the hotalloc rule: //bayesperf:hotpath
// functions must not allocate on the live path.
package hotalloc

import "fmt"

type point struct{ x, y float64 }

type buf struct {
	s []float64
}

func sink(v interface{}) { _ = v }

func variadic(vs ...int) {}

//bayesperf:hotpath
func hotMake(n int) []int {
	return make([]int, n) // want "make allocates"
}

//bayesperf:hotpath
func hotNew() *point {
	return new(point) // want "new allocates"
}

//bayesperf:hotpath
func hotAppend(b *buf, v float64) {
	b.s = append(b.s, v) // want "append may grow"
}

//bayesperf:hotpath
func hotPtrLit() *point {
	return &point{1, 2} // want "composite literal escapes"
}

//bayesperf:hotpath
func hotSliceLit() []int {
	return []int{1, 2, 3} // want "slice literal allocates"
}

//bayesperf:hotpath
func hotMapLit() map[string]int {
	return map[string]int{"a": 1} // want "map literal allocates"
}

//bayesperf:hotpath
func hotClosure() func() int {
	n := 0
	return func() int { n++; return n } // want "closure literal allocates"
}

//bayesperf:hotpath
func hotFmt(v float64) {
	fmt.Println(v) // want "fmt.Println formats and allocates"
}

//bayesperf:hotpath
func hotBox(x point) {
	sink(x) // want "boxed into interface parameter"
}

//bayesperf:hotpath
func hotVariadic(a, b int) {
	variadic(a, b) // want "variadic call builds an argument slice"
}

//bayesperf:hotpath
func hotString(b []byte) string {
	return string(b) // want "conversion copies and allocates"
}

//bayesperf:hotpath
func hotBytes(s string) []byte {
	return []byte(s) // want "conversion copies and allocates"
}

// hotValueLit returns a value struct literal: stack-allocated, legal.
//
//bayesperf:hotpath
func hotValueLit(a, b float64) point {
	return point{a, b}
}

// hotGuarded validates with a panic guard: cold path, exempt.
//
//bayesperf:hotpath
func hotGuarded(b *buf, i int) float64 {
	if i >= len(b.s) {
		panic(fmt.Sprintf("hotalloc: index %d out of range", i))
	}
	return b.s[i]
}

// hotPointerSink passes a pointer into an interface: no boxing allocation.
//
//bayesperf:hotpath
func hotPointerSink(p *point) {
	sink(p)
}

// coldMake is unannotated: allocations are legal.
func coldMake(n int) []int {
	return make([]int, n)
}
