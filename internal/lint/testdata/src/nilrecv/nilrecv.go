// Package nilrecv exercises the nilrecv rule: //bayesvet:nilsafe types'
// exported pointer-receiver methods must guard nil receivers.
package nilrecv

import "math"

//bayesvet:nilsafe
type Counter struct {
	n uint64
	v float64
}

// Add is guarded: clean.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.n += n
}

// Inc delegates to a guarded method on the same receiver: clean.
func (c *Counter) Inc() { c.Add(1) }

// Observe guards through an || chain: clean.
func (c *Counter) Observe(v float64) {
	if c == nil || math.IsNaN(v) {
		return
	}
	c.v += v
}

// Value guards with a reversed operand order: clean.
func (c *Counter) Value() uint64 {
	if nil == c {
		return 0
	}
	return c.n
}

func (c *Counter) Bad() { // want "must begin with"
	c.n++
}

func (c *Counter) BadLateGuard() { // want "must begin with"
	c.n++
	if c == nil {
		return
	}
}

// reset is unexported: exempt.
func (c *Counter) reset() { c.n = 0 }

// Snapshot has a value receiver, which cannot be nil: exempt.
func (c Counter) Snapshot() uint64 { return c.n }

// Plain is unannotated: its methods are exempt.
type Plain struct{ n int }

func (p *Plain) Bump() { p.n++ }
