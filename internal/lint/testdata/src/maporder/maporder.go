// Package maporder exercises the maporder rule: ranging over a map must
// not let Go's randomized iteration order reach any output.
package maporder

import "sort"

func bad(m map[string]int) []string {
	var out []string
	for k := range m { // want "iteration over map"
		out = append(out, k)
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func keyedCopy(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func keyedDelete(dst map[string]int, src map[string]bool) {
	for k := range src {
		delete(dst, k)
	}
}

func annotated(m map[string]int) int {
	sum := 0
	//bayesvet:maporder integer summation is commutative and associative
	for _, v := range m {
		sum += v
	}
	return sum
}

func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
