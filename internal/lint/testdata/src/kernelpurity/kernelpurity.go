// Package kernelpurity exercises the kernelpurity rule: inference kernels
// must be pure functions of their inputs.
package kernelpurity

import (
	"math/rand" // want "kernel imports math/rand"
	"time"
)

var state int

var table = map[string]int{"a": 1}

func impureRand() int {
	return rand.Int()
}

func impureClock() time.Time {
	return time.Now() // want "reads the wall clock"
}

func impureSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "reads the wall clock"
}

func pureDuration(d time.Duration) float64 {
	return d.Seconds()
}

func impureWrite(x int) {
	state = x // want "writes package-level state"
}

func impureInc() {
	state++ // want "writes package-level state"
}

func impureMapRange() int {
	s := 0
	for _, v := range table { // want "iterates over a map"
		s += v
	}
	return s
}

func pureLocal(x int) int {
	local := x
	local++
	return local
}

func init() {
	state = 1 // writes in init run once, before any kernel: legal
}
