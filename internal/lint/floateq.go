package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags == and != between floating-point operands outside _test.go
// files. Exact float equality is almost always a bug waiting for a rounding
// change — but this codebase also *deliberately* pins bitwise determinism
// (reference goldens, lane invariance) and uses exact-zero sentinel
// compares on values that are assigned, never computed. Those stay legal
// behind a //bayesvet:bitwise annotation on the comparison's line (or the
// line above); anything unannotated is a finding.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no tolerance-free floating-point ==/!= outside tests and //bayesvet:bitwise lines",
	Run:  runFloatEq,
}

const bitwiseDirective = "bayesvet:bitwise"

func runFloatEq(p *Pass) {
	for _, file := range p.Files {
		if strings.HasSuffix(p.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info, be.X) && !isFloat(p.Info, be.Y) {
				return true
			}
			// Two constants compare exactly by definition.
			if isConst(p.Info, be.X) && isConst(p.Info, be.Y) {
				return true
			}
			if p.Annotated(file, be.Pos(), bitwiseDirective) {
				return true
			}
			p.Report(be.Pos(), "tolerance-free floating-point %s comparison; compare |a-b| against a tolerance, or annotate with //%s <reason> for a deliberate bitwise or sentinel compare", be.Op, bitwiseDirective)
			return true
		})
	}
}

// isFloat reports whether e's type is (or is named with underlying)
// float32/float64.
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConst reports whether e is a compile-time constant expression.
func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
