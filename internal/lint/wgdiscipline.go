package lint

import (
	"go/ast"
	"go/types"
)

// WGDiscipline enforces the sync.WaitGroup contract around goroutine
// launches:
//
//   - Add must happen in the launching goroutine, before the `go`
//     statement whose goroutine will call Done. Add inside the launched
//     goroutine races with Wait: Wait can return before the goroutine is
//     scheduled. The rule finds the WaitGroups a goroutine "gates" (calls
//     Done on) by inspecting `go func(){...}` literals directly and, for
//     `go e.worker()`-style launches, by a package-local one-hop summary of
//     which WaitGroups each function calls Done on.
//   - Wait must not be reachable while a mutex is held (workers that need
//     the lock can never call Done: deadlock). This shares the locksafe
//     lattice.
//
// Escape hatch: //bayesvet:wgdiscipline <reason>.
var WGDiscipline = &Analyzer{
	Name: "wgdiscipline",
	Doc:  "WaitGroup.Add precedes the go it gates; no Wait under a lock",
	Run:  runWGDiscipline,
}

const wgDirective = "bayesvet:wgdiscipline"

func runWGDiscipline(p *Pass) {
	summaries := collectDoneSummaries(p)
	for _, file := range p.Files {
		for _, fn := range funcBodies(file) {
			checkWGFunction(p, file, fn.body, summaries)
		}
	}
}

// ---- package-local Done summaries ----

// doneRef is one WaitGroup a function calls Done on, expressed relative to
// the callee's signature so a caller can translate it into its own scope:
// through the receiver (recv=true, path ".wg"), through a parameter
// (param=i), or on a package-level WaitGroup (global).
type doneRef struct {
	recv   bool
	param  int
	path   string
	global types.Object
}

// collectDoneSummaries maps every declared function in the package to the
// WaitGroups it (or any literal it contains) calls Done on. One hop only:
// Done reached through a further call is out of scope — fleet code keeps
// Done next to the worker body, and a deeper summary would need a
// package-wide call graph for marginal gain.
func collectDoneSummaries(p *Pass) map[*types.Func][]doneRef {
	summaries := make(map[*types.Func][]doneRef)
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnObj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			var refs []doneRef
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				recv, typ, method, ok := syncMethodCall(p.Info, call)
				if !ok || typ != "WaitGroup" || method != "Done" {
					return true
				}
				key, ok := resolveSyncObj(p.Info, recv)
				if !ok {
					return true
				}
				if ref, ok := classifyRoot(p, fd, key); ok {
					refs = append(refs, ref)
				}
				return true
			})
			if len(refs) > 0 {
				summaries[fnObj] = refs
			}
		}
	}
	return summaries
}

// classifyRoot expresses key relative to fd's signature.
func classifyRoot(p *Pass, fd *ast.FuncDecl, key syncObj) (doneRef, bool) {
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if p.Info.Defs[fd.Recv.List[0].Names[0]] == key.root {
			return doneRef{recv: true, path: key.path}, true
		}
	}
	i := 0
	for _, fld := range fd.Type.Params.List {
		if len(fld.Names) == 0 {
			i++ // unnamed parameter still occupies an argument slot
			continue
		}
		for _, name := range fld.Names {
			if p.Info.Defs[name] == key.root {
				return doneRef{param: i, path: key.path}, true
			}
			i++
		}
	}
	if key.root.Parent() == p.Types.Scope() {
		return doneRef{param: -1, global: key.root, path: key.path}, true
	}
	return doneRef{}, false
}

// ---- Add-before-go dataflow ----

// addTri is the per-WaitGroup lattice for "has Add run on this path".
type addTri uint8

const (
	addNo    addTri = iota // absent from the map
	addYes                 // Add executed on every path to here
	addMaybe               // Add executed on some paths only
)

type wgFacts map[syncObj]addTri

type wgFlow struct {
	info *types.Info
}

func (wf *wgFlow) Entry() any { return wgFacts(nil) }

func (wf *wgFlow) Transfer(n ast.Node, state any) any {
	st := state.(wgFacts)
	InspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, typ, method, ok := syncMethodCall(wf.info, call)
		if !ok || typ != "WaitGroup" || method != "Add" {
			return true
		}
		key, ok := resolveSyncObj(wf.info, recv)
		if !ok {
			return true
		}
		next := make(wgFacts, len(st)+1)
		for k, v := range st {
			next[k] = v
		}
		next[key] = addYes
		st = next
		return true
	})
	return st
}

func (wf *wgFlow) Join(a, b any) any {
	fa, fb := a.(wgFacts), b.(wgFacts)
	out := make(wgFacts, len(fa)+len(fb))
	for k, va := range fa {
		if vb, ok := fb[k]; ok && vb == va {
			out[k] = va
		} else {
			out[k] = addMaybe
		}
	}
	for k := range fb {
		if _, ok := fa[k]; !ok {
			out[k] = addMaybe
		}
	}
	return out
}

func (wf *wgFlow) Equal(a, b any) bool {
	fa, fb := a.(wgFacts), b.(wgFacts)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if w, ok := fb[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// checkWGFunction runs both analyses over one function body: the
// Add-before-go dataflow and the Wait-under-lock check (which reuses the
// locksafe lattice).
func checkWGFunction(p *Pass, file *ast.File, body *ast.BlockStmt, summaries map[*types.Func][]doneRef) {
	cfg := NewCFG(body)
	report := func(pos ast.Node, format string, args ...any) {
		if !p.Annotated(file, pos.Pos(), wgDirective) {
			p.Report(pos.Pos(), format, args...)
		}
	}

	wf := &wgFlow{info: p.Info}
	Solve(cfg, wf).Replay(func(n ast.Node, before any) {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		st := before.(wgFacts)
		for _, key := range sortedSyncObjs(gatedWaitGroups(p, gs, summaries)) {
			switch st[key] {
			case addYes:
				// disciplined
			case addMaybe:
				report(gs, "%s.Done runs in this goroutine but %s.Add precedes the go statement on only some paths", key.name(), key.name())
			case addNo:
				report(gs, "%s.Done runs in this goroutine but no %s.Add precedes the go statement", key.name(), key.name())
			}
		}
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			reportAddInsideGoroutine(p, file, lit, report)
		}
	})

	lf := &lockFlow{info: p.Info}
	Solve(cfg, lf).Replay(func(n ast.Node, before any) {
		st := before.(lockFacts)
		if !anyDefinitelyHeld(st) {
			return
		}
		InspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, typ, method, ok := syncMethodCall(p.Info, call)
			if ok && typ == "WaitGroup" && method == "Wait" {
				report(call, "WaitGroup.Wait while %s is held: a worker that needs the lock can never call Done", heldNames(st))
			}
			return true
		})
	})
}

// gatedWaitGroups resolves which WaitGroups the goroutine launched by gs
// will call Done on, as syncObjs in the launching function's scope.
func gatedWaitGroups(p *Pass, gs *ast.GoStmt, summaries map[*types.Func][]doneRef) map[syncObj]bool {
	keys := make(map[syncObj]bool)
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		// Done anywhere inside the literal (including nested cleanup
		// literals) gates this go statement — but only for WaitGroups
		// declared outside the literal; a WaitGroup local to the goroutine
		// is its own business.
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, typ, method, ok := syncMethodCall(p.Info, call)
			if !ok || typ != "WaitGroup" || method != "Done" {
				return true
			}
			key, ok := resolveSyncObj(p.Info, recv)
			if ok && !declaredWithin(key.root, fun) {
				keys[key] = true
			}
			return true
		})
	default:
		callee := calleeFunc(p.Info, gs.Call)
		if callee == nil {
			return keys
		}
		for _, ref := range summaries[callee] {
			if key, ok := callerSideKey(p, gs.Call, ref); ok {
				keys[key] = true
			}
		}
	}
	return keys
}

// reportAddInsideGoroutine flags wg.Add calls placed inside a launched
// goroutine for a WaitGroup declared outside it. Only the literal's own
// statements are inspected — a nested `go` has its own launch site and is
// checked there.
func reportAddInsideGoroutine(p *Pass, file *ast.File, lit *ast.FuncLit, report func(ast.Node, string, ...any)) {
	InspectShallow(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, typ, method, ok := syncMethodCall(p.Info, call)
		if !ok || typ != "WaitGroup" || method != "Add" {
			return true
		}
		key, ok := resolveSyncObj(p.Info, recv)
		if ok && !declaredWithin(key.root, lit) {
			report(call, "%s.Add inside the launched goroutine races with Wait: Add in the launching goroutine, before the go statement", key.name())
		}
		return true
	})
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// calleeFunc resolves a call's static callee, if it is a declared function
// or method of this package.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// callerSideKey translates a callee-relative doneRef into the caller's
// scope using the call's receiver/argument expressions.
func callerSideKey(p *Pass, call *ast.CallExpr, ref doneRef) (syncObj, bool) {
	if ref.global != nil {
		return syncObj{root: ref.global, path: ref.path}, true
	}
	var base ast.Expr
	if ref.recv {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return syncObj{}, false
		}
		base = sel.X
	} else {
		if ref.param >= len(call.Args) {
			return syncObj{}, false
		}
		base = call.Args[ref.param]
	}
	key, ok := resolveSyncObj(p.Info, base)
	if !ok {
		return syncObj{}, false
	}
	key.path += ref.path
	return key, true
}

// anyDefinitelyHeld reports whether some lock is held on every path.
func anyDefinitelyHeld(st lockFacts) bool {
	for _, v := range st.held {
		if v == lockHeld || v == lockRHeld {
			return true
		}
	}
	return false
}

// heldNames renders the definitely-held locks for a diagnostic.
func heldNames(st lockFacts) string {
	names := ""
	for _, k := range sortedSyncObjs(st.held) {
		if v := st.held[k]; v != lockHeld && v != lockRHeld {
			continue
		}
		if names != "" {
			names += ", "
		}
		names += k.name()
	}
	return names
}
