package lint_test

import (
	"path/filepath"
	"testing"

	"bayesperf/internal/lint"
)

// loadTestdata loads internal/lint/testdata/src/<name> through the real
// loader (so the testdata packages are parsed and type-checked exactly like
// production packages).
func loadTestdata(t *testing.T, name string) *lint.Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader(%s): %v", dir, err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

// checkRule diffs one analyzer's findings on its testdata package against
// the package's // want comments.
func checkRule(t *testing.T, rule string) {
	t.Helper()
	pkg := loadTestdata(t, rule)
	analyzers, err := lint.ByName(rule)
	if err != nil {
		t.Fatal(err)
	}
	for _, problem := range lint.CheckExpectations(pkg, analyzers) {
		t.Error(problem)
	}
}

func TestMapOrder(t *testing.T)     { checkRule(t, "maporder") }
func TestKernelPurity(t *testing.T) { checkRule(t, "kernelpurity") }
func TestFloatEq(t *testing.T)      { checkRule(t, "floateq") }
func TestHotAlloc(t *testing.T)     { checkRule(t, "hotalloc") }
func TestNilRecv(t *testing.T)      { checkRule(t, "nilrecv") }
func TestLockSafe(t *testing.T)     { checkRule(t, "locksafe") }
func TestAtomicMix(t *testing.T)    { checkRule(t, "atomicmix") }
func TestWGDiscipline(t *testing.T) { checkRule(t, "wgdiscipline") }
func TestBlockingLock(t *testing.T) { checkRule(t, "blockinglock") }

func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != 9 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 9, nil", len(all), err)
	}
	two, err := lint.ByName("maporder, floateq")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset = %d analyzers, err %v; want 2, nil", len(two), err)
	}
	if _, err := lint.ByName("nosuchrule"); err == nil {
		t.Fatal("ByName accepted an unknown rule")
	}
}
