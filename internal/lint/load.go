package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	ImportPath string // module-rooted import path (modulePath/rel)
	Rel        string // directory relative to the module root, "/"-separated
	Dir        string // absolute directory
	Fset       *token.FileSet
	Files      []*ast.File // build-constraint-filtered non-test files
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-local imports are resolved by loading their
// directory recursively, everything else (the standard library) goes
// through go/importer's source importer. Loaded packages are memoized, so
// analyzing the whole tree type-checks each package once.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader finds the module containing start (walking up to go.mod) and
// returns a loader rooted there.
func NewLoader(start string) (*Loader, error) {
	root, err := filepath.Abs(start)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(root); err != nil {
		return nil, err
	} else if !fi.IsDir() {
		root = filepath.Dir(root)
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", start)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImportFrom")
	}
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadDir loads the package in dir (absolute or relative to the process
// working directory). The directory must live inside the loader's module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	rel = filepath.ToSlash(rel)
	path := l.ModulePath
	if rel != "." {
		path += "/" + rel
	}
	return l.load(path)
}

// local reports whether path names a package inside the loader's module.
func (l *Loader) local(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// load parses and type-checks one module-local package by import path.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := "."
	if path != l.ModulePath {
		rel = strings.TrimPrefix(path, l.ModulePath+"/")
	}
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	pkg := &Package{
		ImportPath: path,
		Rel:        rel,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader into the go/types importer interfaces:
// module-local paths load recursively, everything else is delegated to the
// standard library's source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, (*Loader)(li).ModuleRoot, 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if l.local(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}
