package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder guards the pipeline's bit-identical-output promise against Go's
// randomized map iteration order: in numeric and output-producing packages
// (the driver scopes it to internal/graph, stream, measure, uarch,
// timeseries, and obs), ranging over a map is flagged unless the iteration
// provably cannot leak order into any output:
//
//   - the loop collects keys (or values) into a slice that is subsequently
//     sorted in the same function, or
//   - every statement in the loop body only writes into maps (a keyed copy
//     is order-insensitive by construction), or
//   - the loop carries a //bayesvet:maporder annotation stating why order
//     cannot affect output.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not be able to reach numeric or encoded output",
	Run:  runMapOrder,
}

const mapOrderDirective = "bayesvet:maporder"

func runMapOrder(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := p.Info.Types[rs.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if p.Annotated(file, rs.Pos(), mapOrderDirective) {
					return true
				}
				if mapWritesOnly(p.Info, rs.Body) {
					return true
				}
				if keysSortedAfter(p.Info, fd.Body, rs) {
					return true
				}
				p.Report(rs.Pos(), "iteration over map is nondeterministically ordered; collect and sort the keys first, or annotate with //%s <reason> if order provably cannot affect output", mapOrderDirective)
				return true
			})
		}
	}
}

// mapWritesOnly reports whether every statement in the loop body is an
// assignment whose left-hand sides are all index expressions into maps (a
// keyed map-to-map copy), or a delete on a map — both order-insensitive.
func mapWritesOnly(info *types.Info, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN {
				return false
			}
			for _, lhs := range s.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					return false
				}
				tv, ok := info.Types[ix.X]
				if !ok || tv.Type == nil {
					return false
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return false
				}
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltin(info, call.Fun, "delete") {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// keysSortedAfter reports whether the loop body appends into a slice that a
// sort.* (or slices.*) call later in the enclosing function operates on —
// the collect-keys-then-sort idiom.
func keysSortedAfter(info *types.Info, fnBody *ast.BlockStmt, rs *ast.RangeStmt) bool {
	// Slices appended to inside the loop body.
	targets := make(map[types.Object]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(info, call.Fun, "append") {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					targets[obj] = true
				}
			}
		}
		return true
	})
	if len(targets) == 0 {
		return false
	}
	// A sort call after the loop whose arguments mention one of them.
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(info, arg, targets) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// isBuiltin reports whether fun is a use of the named predeclared function.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.ObjectOf(id).(*types.Builtin)
	return ok
}

// exprMentions reports whether any identifier inside e resolves to one of
// the given objects.
func exprMentions(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
