package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc turns the benchmark suite's 0 allocs/op gates into a static
// check: a function annotated //bayesperf:hotpath must contain no
// allocating construct on its live path. Flagged inside annotated
// functions:
//
//   - make, new, and &composite-literal expressions
//   - slice and map literals (value struct literals stay legal: they live
//     in registers or on the stack)
//   - append (growth allocates; pre-size buffers outside the hot path)
//   - closures (func literals capture by reference and usually escape)
//   - fmt.* calls (formatting allocates; build messages off the hot path)
//   - string([]byte) / []byte(string) style conversions
//   - boxing a non-pointer concrete value into an interface parameter
//
// Guard blocks that end in panic are cold paths (they run once, on a
// programming error) and are exempt, which keeps the argument-validation
// idiom legal inside hot functions.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//bayesperf:hotpath functions must not allocate on the live path",
	Run:  runHotAlloc,
}

const hotpathDirective = "bayesperf:hotpath"

func runHotAlloc(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !DocHasDirective(fd.Doc, hotpathDirective) {
				continue
			}
			w := &hotWalker{pass: p, fn: fd.Name.Name}
			w.block(fd.Body)
		}
	}
}

// hotWalker walks an annotated function's live path, skipping if-blocks
// that terminate in panic.
type hotWalker struct {
	pass *Pass
	fn   string
}

func (w *hotWalker) block(b *ast.BlockStmt) {
	for _, stmt := range b.List {
		w.stmt(stmt)
	}
}

func (w *hotWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.expr(st.Cond)
		if !endsInPanic(st.Body) {
			w.block(st.Body)
		}
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			if !endsInPanic(e) {
				w.block(e)
			}
		case *ast.IfStmt:
			w.stmt(e)
		}
	case *ast.BlockStmt:
		w.block(st)
	case nil:
	default:
		ast.Inspect(s, w.visit)
	}
}

func (w *hotWalker) expr(e ast.Expr) {
	if e != nil {
		ast.Inspect(e, w.visit)
	}
}

// visit is the per-node check used for every non-if statement; nested if
// statements inside them are re-dispatched through stmt so their cold
// branches stay exempt.
func (w *hotWalker) visit(n ast.Node) bool {
	switch e := n.(type) {
	case *ast.IfStmt:
		w.stmt(e)
		return false
	case *ast.FuncLit:
		w.pass.Report(e.Pos(), "hotpath %s: closure literal allocates (captures escape); hoist it out of the hot path", w.fn)
		return false
	case *ast.UnaryExpr:
		if cl, ok := e.X.(*ast.CompositeLit); ok {
			w.pass.Report(e.Pos(), "hotpath %s: &composite literal escapes to the heap", w.fn)
			// Still check the literal's elements for nested allocation.
			for _, el := range cl.Elts {
				w.expr(el)
			}
			return false
		}
	case *ast.CompositeLit:
		tv, ok := w.pass.Info.Types[e]
		if ok && tv.Type != nil {
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				w.pass.Report(e.Pos(), "hotpath %s: slice literal allocates; reuse a pre-sized buffer", w.fn)
			case *types.Map:
				w.pass.Report(e.Pos(), "hotpath %s: map literal allocates; build maps outside the hot path", w.fn)
			}
		}
	case *ast.CallExpr:
		w.call(e)
		return false
	}
	return true
}

func (w *hotWalker) call(call *ast.CallExpr) {
	// Arguments are checked regardless of what the callee is.
	for _, arg := range call.Args {
		w.expr(arg)
	}
	w.expr(call.Fun)

	info := w.pass.Info
	switch {
	case isBuiltin(info, call.Fun, "make"):
		w.pass.Report(call.Pos(), "hotpath %s: make allocates; size buffers once outside the hot path", w.fn)
		return
	case isBuiltin(info, call.Fun, "new"):
		w.pass.Report(call.Pos(), "hotpath %s: new allocates", w.fn)
		return
	case isBuiltin(info, call.Fun, "append"):
		w.pass.Report(call.Pos(), "hotpath %s: append may grow and allocate; pre-size the buffer outside the hot path", w.fn)
		return
	}

	// Conversions: string<->[]byte/[]rune copy, and conversion to an
	// interface type boxes.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := types.Type(nil)
		if atv, ok := info.Types[call.Args[0]]; ok {
			src = atv.Type
		}
		if src != nil {
			if b, ok := dst.(*types.Basic); ok && b.Info()&types.IsString != 0 {
				if _, isSlice := src.Underlying().(*types.Slice); isSlice {
					w.pass.Report(call.Pos(), "hotpath %s: string(bytes) conversion copies and allocates", w.fn)
				}
			}
			if _, ok := dst.(*types.Slice); ok {
				if b, ok := src.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					w.pass.Report(call.Pos(), "hotpath %s: []byte(string) conversion copies and allocates", w.fn)
				}
			}
			if _, ok := dst.(*types.Interface); ok {
				if !isPointerLike(src) {
					w.pass.Report(call.Pos(), "hotpath %s: conversion to interface boxes the value and may allocate", w.fn)
				}
			}
		}
		return
	}

	// fmt.* formats and allocates.
	if pkg, name := calleePkgFunc(info, call); pkg == "fmt" {
		w.pass.Report(call.Pos(), "hotpath %s: fmt.%s formats and allocates; record raw values and format off the hot path", w.fn, name)
		return
	}

	// Interface boxing through call arguments.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing an existing slice through: no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Type == nil || atv.IsNil() {
			continue
		}
		if _, argIface := atv.Type.Underlying().(*types.Interface); argIface {
			continue
		}
		if !isPointerLike(atv.Type) {
			w.pass.Report(arg.Pos(), "hotpath %s: non-pointer value boxed into interface parameter may allocate", w.fn)
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		w.pass.Report(call.Pos(), "hotpath %s: variadic call builds an argument slice; use a fixed-arity helper on the hot path", w.fn)
	}
}

// isPointerLike reports whether storing a value of type t in an interface
// avoids a heap allocation (pointers, channels, maps, funcs, unsafe
// pointers — single-word reference types).
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// endsInPanic reports whether the block's last statement is a call to the
// predeclared panic — the cold guard idiom.
func endsInPanic(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	es, ok := b.List[len(b.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
