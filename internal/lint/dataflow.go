package lint

import "go/ast"

// The dataflow half of the engine: a generic forward worklist solver over a
// CFG (cfg.go) and a pluggable join lattice. A rule supplies a Flow; the
// solver computes the least fixpoint of per-block input states; the rule
// then calls Replay to visit every reachable node together with the state
// flowing into it and does all of its reporting there. Splitting the solve
// from the replay keeps reporting duplicate-free even though the fixpoint
// iteration transfers each block many times.

// Flow is one forward dataflow problem. States must be treated as
// immutable: Transfer and Join return fresh (or shared, unmodified) values
// and never mutate their arguments, because the solver hands the same
// state value to multiple successors.
type Flow interface {
	// Entry is the state on entry to the function.
	Entry() any
	// Transfer returns the state after executing one block node.
	Transfer(n ast.Node, state any) any
	// Join merges the states of two converging paths.
	Join(a, b any) any
	// Equal reports whether two states coincide (fixpoint detection).
	Equal(a, b any) bool
}

// Solution holds the fixpoint: the input state of every reachable block.
type Solution struct {
	CFG  *CFG
	Flow Flow
	// In maps each reachable block index to its input state. Unreachable
	// blocks (no path from entry) are absent.
	In map[int]any
}

// Solve runs the worklist algorithm to a fixpoint. The pass budget is a
// safety valve against a non-converging lattice (a rule bug); the lattices
// in this package have height ≤ 2 per tracked object, so real functions
// converge in a handful of passes.
func Solve(cfg *CFG, f Flow) *Solution {
	sol := &Solution{CFG: cfg, Flow: f, In: make(map[int]any, len(cfg.Blocks))}
	if len(cfg.Blocks) == 0 {
		return sol
	}
	entry := cfg.Blocks[0]
	sol.In[entry.Index] = f.Entry()
	queue := []*Block{entry}
	queued := make([]bool, len(cfg.Blocks))
	queued[entry.Index] = true
	budget := 64*len(cfg.Blocks) + 256
	for len(queue) > 0 && budget > 0 {
		budget--
		b := queue[0]
		queue = queue[1:]
		queued[b.Index] = false
		st := sol.In[b.Index]
		for _, n := range b.Nodes {
			st = f.Transfer(n, st)
		}
		for _, s := range b.Succs {
			prev, seen := sol.In[s.Index]
			next := st
			if seen {
				next = f.Join(prev, st)
				if f.Equal(prev, next) {
					continue
				}
			}
			sol.In[s.Index] = next
			if !queued[s.Index] {
				queue = append(queue, s)
				queued[s.Index] = true
			}
		}
	}
	return sol
}

// Replay visits every node of every reachable block in block order,
// passing the state flowing into that node. Rules report here — each
// reachable node is visited exactly once.
func (s *Solution) Replay(visit func(n ast.Node, before any)) {
	for _, b := range s.CFG.Blocks {
		st, ok := s.In[b.Index]
		if !ok {
			continue // unreachable
		}
		for _, n := range b.Nodes {
			visit(n, st)
			st = s.Flow.Transfer(n, st)
		}
	}
}
