package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of func f and returns its CFG.
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return NewCFG(fd.Body)
}

// reachable returns the block indices reachable from the entry.
func reachable(c *CFG) map[int]bool {
	seen := map[int]bool{}
	if len(c.Blocks) == 0 {
		return seen
	}
	stack := []*Block{c.Blocks[0]}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		stack = append(stack, b.Succs...)
	}
	return seen
}

// countNodes counts reachable nodes whose rendering contains text.
func countNodes(c *CFG, text string) int {
	r := reachable(c)
	n := 0
	for _, b := range c.Blocks {
		if !r[b.Index] {
			continue
		}
		for _, node := range b.Nodes {
			if strings.Contains(nodeText(node), text) {
				n++
			}
		}
	}
	return n
}

func TestCFGStraightLine(t *testing.T) {
	c := buildCFG(t, "x := 1\nx++\n_ = x")
	if len(c.Blocks) != 1 {
		t.Fatalf("straight-line body built %d blocks, want 1\n%s", len(c.Blocks), c)
	}
	// 3 statements + the implicit return.
	if got := len(c.Blocks[0].Nodes); got != 4 {
		t.Fatalf("entry has %d nodes, want 4\n%s", got, c)
	}
	if countNodes(c, "implicit-return") != 1 {
		t.Fatalf("missing implicit return\n%s", c)
	}
}

func TestCFGIfJoin(t *testing.T) {
	c := buildCFG(t, "x := 1\nif x > 0 {\n\tx = 2\n} else {\n\tx = 3\n}\n_ = x")
	// entry(cond) → then|else → join; the join holds _ = x and the
	// implicit return.
	if countNodes(c, "implicit-return") != 1 {
		t.Fatalf("if/else lost the fall-off exit\n%s", c)
	}
	entry := c.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2\n%s", len(entry.Succs), c)
	}
}

func TestCFGIfWithoutElseFallsThrough(t *testing.T) {
	c := buildCFG(t, "x := 1\nif x > 0 {\n\tx = 2\n}\n_ = x")
	entry := c.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("if-without-else condition has %d successors, want 2 (then + join)\n%s", len(entry.Succs), c)
	}
}

func TestCFGEarlyReturnTerminates(t *testing.T) {
	c := buildCFG(t, "x := 1\nif x > 0 {\n\treturn\n}\n_ = x")
	r := reachable(c)
	for _, b := range c.Blocks {
		if !r[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			if _, isRet := n.(*ast.ReturnStmt); isRet && len(b.Succs) != 0 {
				// A return's block must not flow anywhere: the trailing
				// nodes after it belong to other blocks.
				for _, s := range b.Succs {
					t.Fatalf("return block b%d flows to b%d\n%s", b.Index, s.Index, c)
				}
			}
		}
	}
	if countNodes(c, "implicit-return") != 1 {
		t.Fatalf("the non-returning path lost its exit\n%s", c)
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	c := buildCFG(t, "s := 0\nfor i := 0; i < 10; i++ {\n\ts += i\n}\n_ = s")
	// The condition block must be its own block with two successors (body,
	// exit) and an incoming back edge.
	var cond *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if strings.Contains(nodeText(n), "i < 10") {
				cond = b
			}
		}
	}
	if cond == nil {
		t.Fatalf("no condition block\n%s", c)
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("loop condition has %d successors, want 2\n%s", len(cond.Succs), c)
	}
	preds := 0
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s == cond {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Fatalf("loop condition has %d predecessors, want 2 (entry + back edge)\n%s", preds, c)
	}
}

func TestCFGInfiniteLoopHasNoExit(t *testing.T) {
	c := buildCFG(t, "for {\n\t_ = 1\n}")
	if n := countNodes(c, "implicit-return"); n != 0 {
		t.Fatalf("for{} reached the implicit return %d times\n%s", n, c)
	}
}

func TestCFGBreakReachesExit(t *testing.T) {
	c := buildCFG(t, "for {\n\tbreak\n}\n_ = 1")
	if countNodes(c, "implicit-return") != 1 {
		t.Fatalf("break did not reach the loop exit\n%s", c)
	}
}

func TestCFGRangeOverMarker(t *testing.T) {
	c := buildCFG(t, "xs := []int{1}\nfor range xs {\n\t_ = 1\n}")
	if countNodes(c, "range-over xs") != 1 {
		t.Fatalf("missing range-over marker\n%s", c)
	}
}

func TestCFGSwitchWithoutDefaultFallsThrough(t *testing.T) {
	c := buildCFG(t, "x := 1\nswitch x {\ncase 1:\n\tx = 2\n}\n_ = x")
	if countNodes(c, "implicit-return") != 1 {
		t.Fatalf("switch without default lost the skip edge\n%s", c)
	}
}

func TestCFGSelectBranches(t *testing.T) {
	c := buildCFG(t, "ch := make(chan int)\nselect {\ncase <-ch:\n\t_ = 1\ndefault:\n\t_ = 2\n}\n_ = 3")
	if countNodes(c, "implicit-return") != 1 {
		t.Fatalf("select lost the join\n%s", c)
	}
	if countNodes(c, "<-ch") == 0 {
		t.Fatalf("comm statement missing from the reachable CFG\n%s", c)
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	c := buildCFG(t, "x := 1\nif x > 0 {\n\tpanic(\"no\")\n}\n_ = x")
	r := reachable(c)
	for _, b := range c.Blocks {
		if !r[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			if strings.Contains(nodeText(n), "panic") && len(b.Succs) != 0 {
				t.Fatalf("panic block b%d has successors\n%s", b.Index, c)
			}
		}
	}
}

func TestCFGDeadCodeIsUnreachable(t *testing.T) {
	c := buildCFG(t, "return\n_ = 1")
	r := reachable(c)
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if strings.Contains(nodeText(n), "_ = 1") && r[b.Index] {
				t.Fatalf("dead statement is reachable\n%s", c)
			}
		}
	}
}

func TestCFGGotoEdge(t *testing.T) {
	c := buildCFG(t, "i := 0\nagain:\n\ti++\n\tif i < 3 {\n\t\tgoto again\n\t}")
	// The goto back edge makes the labeled block a loop header with ≥ 2
	// predecessors.
	var target *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if nodeText(n) == "i++" {
				target = b
			}
		}
	}
	if target == nil {
		t.Fatalf("no labeled block\n%s", c)
	}
	preds := 0
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s == target {
				preds++
			}
		}
	}
	if preds < 2 {
		t.Fatalf("goto target has %d predecessors, want ≥ 2\n%s", preds, c)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	c := buildCFG(t, "outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}\n_ = 1")
	if countNodes(c, "implicit-return") != 1 {
		t.Fatalf("labeled break did not escape both loops\n%s", c)
	}
}

func TestCFGFuncLitIsOpaque(t *testing.T) {
	c := buildCFG(t, "f := func() {\n\treturn\n}\nf()")
	// The literal's return belongs to the literal's own CFG; the enclosing
	// function still falls off the end.
	if countNodes(c, "implicit-return") != 1 {
		t.Fatalf("func literal's return leaked into the enclosing CFG\n%s", c)
	}
}

func TestInspectShallowSkipsFuncLit(t *testing.T) {
	src := "package p\n\nfunc f() {\n\tg(func() { h() })\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := file.Decls[0].(*ast.FuncDecl).Body
	sawLit, sawInner := false, false
	InspectShallow(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			sawLit = true
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == "h" {
			sawInner = true
		}
		return true
	})
	if !sawLit {
		t.Fatal("InspectShallow skipped the literal itself")
	}
	if sawInner {
		t.Fatal("InspectShallow descended into the literal body")
	}
}
