package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Shared machinery for the concurrency rule family (locksafe, atomicmix,
// wgdiscipline, blockinglock): naming sync primitives across statements and
// classifying calls on them.

// syncObj names one sync primitive (mutex, RWMutex, WaitGroup, ...) within
// a function: the root object the receiver expression resolves to plus the
// selector path from it. `s.mu.Lock()` and `s.mu.Unlock()` resolve to the
// same syncObj whenever `s` resolves to the same *types.Var, which is what
// lets a per-function dataflow pair them up.
type syncObj struct {
	root types.Object
	path string
}

func (o syncObj) name() string { return o.root.Name() + o.path }

// resolveSyncObj resolves a receiver expression to a syncObj, walking
// selector/paren/star/address chains down to an identifier root. It bails
// (ok=false) on anything dynamic — index expressions, call results — where
// two mentions can't be proven to name the same primitive.
func resolveSyncObj(info *types.Info, e ast.Expr) (syncObj, bool) {
	path := ""
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return syncObj{}, false
			}
			e = x.X
		case *ast.SelectorExpr:
			path = "." + x.Sel.Name + path
			e = x.X
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil {
				return syncObj{}, false
			}
			return syncObj{root: obj, path: path}, true
		default:
			return syncObj{}, false
		}
	}
}

// syncMethodCall classifies call as a method call on a package sync
// primitive. On success it returns the receiver expression (the value the
// method was selected from — for a promoted method, the embedding outer
// value), the primitive's type name ("Mutex", "RWMutex", "WaitGroup",
// "Locker", ...), and the method name.
func syncMethodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, typ, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return nil, "", "", false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, "", "", false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return nil, "", "", false
	}
	return sel.X, named.Obj().Name(), fn.Name(), true
}

// isLockType reports whether typ names a sync lock primitive locksafe
// tracks state for.
func isLockType(typ string) bool {
	switch typ {
	case "Mutex", "RWMutex", "Locker":
		return true
	}
	return false
}

// funcBody is one analyzable function body: a declared function or a
// function literal. Literals are analyzed as functions of their own — the
// enclosing function's CFG treats them as opaque values.
type funcBody struct {
	name string
	body *ast.BlockStmt
}

// funcBodies enumerates every function body in file in source order.
func funcBodies(file *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{name: fn.Name.Name, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{name: "func literal", body: fn.Body})
		}
		return true
	})
	return out
}

// sortedSyncObjs returns the keys of a syncObj-keyed map ordered by
// printable name (then by declaration position for equal names), so
// per-state reporting is deterministic.
func sortedSyncObjs[V any](m map[syncObj]V) []syncObj {
	keys := make([]syncObj, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if a, b := keys[i].name(), keys[j].name(); a != b {
			return a < b
		}
		return keys[i].root.Pos() < keys[j].root.Pos()
	})
	return keys
}
