package uarch

// This file holds the two concrete CPU catalogs promised by the package doc:
// an Intel Skylake-like x86_64 core and an IBM Power9-like ppc64 core. Event
// names follow the vendor naming schemes (perfmon / POWER9 PMU guide) closely
// enough to be recognizable, but the catalogs model idealized cores: every
// invariant declared here holds exactly in the simulated ground truth
// produced by internal/measure.

// Skylake returns the catalog for an Intel Skylake-like x86_64 core:
// 3 fixed counters (INST_RETIRED.ANY, CPU_CLK_UNHALTED.THREAD,
// CPU_CLK_UNHALTED.REF_TSC), 4 programmable counters, and 2 off-core
// response MSRs. The invariant library encodes the retirement breakdown,
// the load cache-hierarchy flow, and the off-core response consistency
// relations (§3–§4 of the paper).
func Skylake() *Catalog {
	c := newCatalog("x86_64-skylake", 3, 4, 2)

	// Fixed-counter events: always counted, never multiplexed.
	inst := c.fixed("INST_RETIRED.ANY", 0, "retired instructions (fixed ctr 0)")
	c.fixed("CPU_CLK_UNHALTED.THREAD", 1, "core cycles while not halted (fixed ctr 1)")
	c.fixed("CPU_CLK_UNHALTED.REF_TSC", 2, "reference-TSC cycles while not halted (fixed ctr 2)")

	// Programmable events. Masks model real placement constraints: most
	// events can go on any of the 4 counters; a few are restricted.
	loads := c.prog("MEM_INST_RETIRED.ALL_LOADS", anyCtr(4), "retired load instructions")
	stores := c.prog("MEM_INST_RETIRED.ALL_STORES", anyCtr(4), "retired store instructions")
	branches := c.prog("BR_INST_RETIRED.ALL_BRANCHES", anyCtr(4), "retired branch instructions")
	misp := c.prog("BR_MISP_RETIRED.ALL_BRANCHES", anyCtr(4), "retired mispredicted branches")
	pred := c.prog("BR_PRED_RETIRED.ALL_BRANCHES", anyCtr(4), "retired correctly predicted branches")
	other := c.prog("INST_RETIRED.OTHER", anyCtr(4), "retired instructions that are neither loads, stores nor branches")
	l1Hit := c.prog("MEM_LOAD_RETIRED.L1_HIT", anyCtr(4), "retired loads that hit the L1 data cache")
	l1Miss := c.prog("MEM_LOAD_RETIRED.L1_MISS", anyCtr(4), "retired loads that missed the L1 data cache")
	l2Hit := c.prog("MEM_LOAD_RETIRED.L2_HIT", anyCtr(4), "retired loads that hit the L2 cache")
	l3Hit := c.prog("MEM_LOAD_RETIRED.L3_HIT", anyCtr(4), "retired loads that hit the shared L3 cache")
	l3Miss := c.prog("MEM_LOAD_RETIRED.L3_MISS", anyCtr(4), "retired loads that missed the L3 cache (DRAM access)")
	// The classic Haswell/Broadwell-style restriction cited in §4: this
	// event can only be counted on one specific programmable counter.
	c.prog("L1D_PEND_MISS.PENDING", oneCtr(2), "cycles with outstanding L1D misses (counter 2 only)")
	// Off-core response events consume an auxiliary MSR besides a counter
	// (§4), and are restricted to the low two counters.
	offRd := c.progMSR("OFFCORE_RESPONSE.DEMAND_DATA_RD", loCtr(2), "demand data reads that reached the uncore (needs MSR)")
	offL3Miss := c.progMSR("OFFCORE_RESPONSE.DEMAND_DATA_RD.L3_MISS", loCtr(2), "demand data reads that missed the L3 (needs MSR)")

	// Microarchitectural invariants (Σ coeff·event = 0, written as
	// lhs − Σ rhs). Tolerances express how exactly each holds on the
	// idealized core; they become factor noise scales in the graph.
	c.relation("retirement_breakdown", 1e-3,
		"INST_RETIRED = LOADS + STORES + BRANCHES + OTHER",
		Term{inst, 1}, Term{loads, -1}, Term{stores, -1}, Term{branches, -1}, Term{other, -1})
	c.relation("l1_load_flow", 1e-3,
		"ALL_LOADS = L1_HIT + L1_MISS",
		Term{loads, 1}, Term{l1Hit, -1}, Term{l1Miss, -1})
	c.relation("cache_hierarchy_flow", 1e-3,
		"L1_MISS = L2_HIT + L3_HIT + L3_MISS",
		Term{l1Miss, 1}, Term{l2Hit, -1}, Term{l3Hit, -1}, Term{l3Miss, -1})
	c.relation("branch_breakdown", 1e-3,
		"ALL_BRANCHES = MISPREDICTED + PREDICTED",
		Term{branches, 1}, Term{misp, -1}, Term{pred, -1})
	c.relation("offcore_demand_rd", 2e-3,
		"OFFCORE demand reads = loads served at or beyond L3",
		Term{offRd, 1}, Term{l3Hit, -1}, Term{l3Miss, -1})
	c.relation("offcore_l3_miss", 2e-3,
		"OFFCORE demand-read L3 misses = retired load L3 misses",
		Term{offL3Miss, 1}, Term{l3Miss, -1})

	// Derived events (§2 "Errors in Derived Events", §6.2). The ratios
	// declare analytic gradients so posterior uncertainty propagates
	// through the delta method exactly; Backend_Bound deliberately stays a
	// KindLinearRatio without Grad and exercises the central-difference
	// fallback in production. Idealized latency weights: L2 12c, L3 44c,
	// DRAM 200c, over 4-wide issue slots.
	cyc := c.MustEvent("CPU_CLK_UNHALTED.THREAD")
	c.derivedRatio("IPC", "instructions per core cycle", inst, cyc, 1)
	c.derivedRatio("L3_MPKI", "L3 misses per kilo-instruction", l3Miss, inst, 1000)
	c.derivedRatio("Branch_Misp_Rate", "mispredictions per retired branch", misp, branches, 1)
	c.derivedLinear("Backend_Bound", "fraction of cycle-slots stalled behind memory (top-down proxy: weighted L2/L3/DRAM load latency over total slots)",
		[]EventID{l2Hit, l3Hit, l3Miss, cyc},
		[]float64{12, 44, 200, 0},
		[]float64{0, 0, 0, 4})

	// Ground-truth semantics: each event as a linear combination of the
	// simulator's machine primitives (internal/measure).
	c.setModels(map[string]map[string]float64{
		"INST_RETIRED.ANY":                        prim("inst"),
		"CPU_CLK_UNHALTED.THREAD":                 prim("cycles"),
		"CPU_CLK_UNHALTED.REF_TSC":                prim("ref_cycles"),
		"MEM_INST_RETIRED.ALL_LOADS":              prim("loads"),
		"MEM_INST_RETIRED.ALL_STORES":             prim("stores"),
		"BR_INST_RETIRED.ALL_BRANCHES":            prim("branches"),
		"BR_MISP_RETIRED.ALL_BRANCHES":            prim("misp"),
		"BR_PRED_RETIRED.ALL_BRANCHES":            {"branches": 1, "misp": -1},
		"INST_RETIRED.OTHER":                      prim("other"),
		"MEM_LOAD_RETIRED.L1_HIT":                 prim("l1_hit"),
		"MEM_LOAD_RETIRED.L1_MISS":                prim("l1_miss"),
		"MEM_LOAD_RETIRED.L2_HIT":                 prim("l2_hit"),
		"MEM_LOAD_RETIRED.L3_HIT":                 prim("l3_hit"),
		"MEM_LOAD_RETIRED.L3_MISS":                prim("l3_miss"),
		"L1D_PEND_MISS.PENDING":                   prim("pend_cycles"),
		"OFFCORE_RESPONSE.DEMAND_DATA_RD":         {"l3_hit": 1, "l3_miss": 1},
		"OFFCORE_RESPONSE.DEMAND_DATA_RD.L3_MISS": prim("l3_miss"),
	})

	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// prim is the single-primitive model {name: 1}.
func prim(name string) map[string]float64 { return map[string]float64{name: 1} }

// Power9 returns the catalog for an IBM Power9-like ppc64 core: 2 effectively
// fixed counters (PMC5 counts completed instructions, PMC6 run cycles) and
// 4 programmable counters, no auxiliary MSRs.
func Power9() *Catalog {
	c := newCatalog("ppc64-power9", 2, 4, 0)

	inst := c.fixed("PM_INST_CMPL", 0, "completed instructions (PMC5)")
	cyc := c.fixed("PM_RUN_CYC", 1, "run cycles (PMC6)")

	loads := c.prog("PM_LD_CMPL", anyCtr(4), "completed load instructions")
	stores := c.prog("PM_ST_CMPL", anyCtr(4), "completed store instructions")
	branches := c.prog("PM_BR_CMPL", anyCtr(4), "completed branch instructions")
	misp := c.prog("PM_BR_MPRED_CMPL", anyCtr(4), "completed mispredicted branches")
	otherInst := c.prog("PM_INST_OTHER_CMPL", anyCtr(4), "completed instructions that are neither loads, stores nor branches")
	l1Hit := c.prog("PM_LD_HIT_L1", anyCtr(4), "loads satisfied by the L1 data cache")
	l1Miss := c.prog("PM_LD_MISS_L1", anyCtr(4), "loads that missed the L1 data cache")
	fromL2 := c.prog("PM_DATA_FROM_L2", loCtr(3), "loads satisfied from the L2 cache")
	fromL3 := c.prog("PM_DATA_FROM_L3", loCtr(3), "loads satisfied from the L3 cache")
	fromMem := c.prog("PM_DATA_FROM_MEM", loCtr(3), "loads satisfied from local memory")

	c.relation("inst_breakdown", 1e-3,
		"PM_INST_CMPL = LD + ST + BR + OTHER",
		Term{inst, 1}, Term{loads, -1}, Term{stores, -1}, Term{branches, -1}, Term{otherInst, -1})
	c.relation("l1_load_flow", 1e-3,
		"PM_LD_CMPL = PM_LD_HIT_L1 + PM_LD_MISS_L1",
		Term{loads, 1}, Term{l1Hit, -1}, Term{l1Miss, -1})
	c.relation("data_source_flow", 1e-3,
		"PM_LD_MISS_L1 = FROM_L2 + FROM_L3 + FROM_MEM",
		Term{l1Miss, 1}, Term{fromL2, -1}, Term{fromL3, -1}, Term{fromMem, -1})

	c.derivedRatio("IPC", "instructions per run cycle", inst, cyc, 1)
	c.derivedRatio("DL1_MPKI", "L1D misses per kilo-instruction", l1Miss, inst, 1000)
	c.derivedRatio("Branch_Misp_Rate", "mispredictions per completed branch", misp, branches, 1)

	c.setModels(map[string]map[string]float64{
		"PM_INST_CMPL":       prim("inst"),
		"PM_RUN_CYC":         prim("cycles"),
		"PM_LD_CMPL":         prim("loads"),
		"PM_ST_CMPL":         prim("stores"),
		"PM_BR_CMPL":         prim("branches"),
		"PM_BR_MPRED_CMPL":   prim("misp"),
		"PM_INST_OTHER_CMPL": prim("other"),
		"PM_LD_HIT_L1":       prim("l1_hit"),
		"PM_LD_MISS_L1":      prim("l1_miss"),
		"PM_DATA_FROM_L2":    prim("l2_hit"),
		"PM_DATA_FROM_L3":    prim("l3_hit"),
		"PM_DATA_FROM_MEM":   prim("l3_miss"),
	})

	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// Catalogs returns every built-in catalog, in a stable order. New
// architectures are added here so downstream layers (CLI, sweeps) pick them
// up automatically.
func Catalogs() []*Catalog {
	return []*Catalog{Skylake(), Power9()}
}

// init seeds the catalog registry with the built-in architectures,
// re-expressed as data: the registry serves Specs, and spec-built catalogs
// are bit-identical to the builders (asserted in spec_test.go).
func init() {
	for _, c := range Catalogs() {
		spec, err := c.Spec()
		if err != nil {
			panic(err)
		}
		MustRegister(shortArch(c.Arch), spec)
	}
}

// shortArch maps a catalog's full Arch string to its registry name: the
// vendor suffix ("x86_64-skylake" → "skylake").
func shortArch(arch string) string {
	for i := len(arch) - 1; i >= 0; i-- {
		if arch[i] == '-' {
			return arch[i+1:]
		}
	}
	return arch
}
