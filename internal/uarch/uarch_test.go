package uarch

import (
	"math"
	"math/bits"
	"strings"
	"testing"
)

// validBase returns a minimal catalog that passes Validate, for the error
// paths to perturb.
func validBase() *Catalog {
	c := newCatalog("test-arch", 1, 2, 0)
	c.fixed("FIXED_A", 0, "")
	c.prog("PROG_A", loCtr(2), "")
	c.prog("PROG_B", oneCtr(1), "")
	c.relation("rel", 1e-3, "", Term{0, 1}, Term{1, -1}, Term{2, -1})
	return c
}

func TestValidateAcceptsBase(t *testing.T) {
	if err := validBase().Validate(); err != nil {
		t.Fatalf("base catalog invalid: %v", err)
	}
}

func TestValidateErrorPaths(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Catalog)
		want   string
	}{
		{
			"duplicate fixed slot",
			func(c *Catalog) { c.fixed("FIXED_B", 0, "") },
			"fixed slot 0 claimed by both",
		},
		{
			"fixed slot out of range",
			func(c *Catalog) { c.fixed("FIXED_B", 7, "") },
			"out of range",
		},
		{
			"empty counter mask",
			func(c *Catalog) { c.addEvent(Event{Name: "PROG_C"}) },
			"empty counter mask",
		},
		{
			"oversized counter mask",
			func(c *Catalog) { c.prog("PROG_C", 1<<5, "") },
			"exceeds 2 counters",
		},
		{
			"MSR event without MSR budget",
			func(c *Catalog) { c.progMSR("PROG_MSR", loCtr(2), "") },
			"needs an MSR but catalog has none",
		},
		{
			"relation with <2 terms",
			func(c *Catalog) { c.relation("short", 1e-3, "", Term{0, 1}) },
			"<2 terms",
		},
		{
			"relation with non-positive tolerance",
			func(c *Catalog) { c.relation("loose", 0, "", Term{0, 1}, Term{1, -1}) },
			"non-positive tolerance",
		},
		{
			"relation with unknown event",
			func(c *Catalog) { c.relation("bad", 1e-3, "", Term{0, 1}, Term{99, -1}) },
			"unknown event",
		},
		{
			"relation with zero coefficient",
			func(c *Catalog) { c.relation("zero", 1e-3, "", Term{0, 1}, Term{1, 0}) },
			"zero coefficient",
		},
		{
			"derived without formula",
			func(c *Catalog) { c.Derived = append(c.Derived, Derived{Name: "d"}) },
			"no formula",
		},
		{
			"derived with unknown input",
			func(c *Catalog) {
				c.derived("d", "", []EventID{42}, func(in []float64) float64 { return 0 })
			},
			"unknown event",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := validBase()
			tc.mutate(c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("Validate accepted catalog with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateRejectsOversizedNumProg is the regression test for the
// full-mask overflow: CounterMask is a uint, so NumProg beyond UintSize−1
// cannot be validated (the shift 1<<NumProg wraps) and must be rejected
// instead of silently accepting arbitrary masks.
func TestValidateRejectsOversizedNumProg(t *testing.T) {
	for _, numProg := range []int{bits.UintSize - 1, bits.UintSize, bits.UintSize + 1, 2 * bits.UintSize} {
		c := newCatalog("test-arch", 0, numProg, 0)
		c.prog("PROG_A", 1, "")
		err := c.Validate()
		if numProg <= bits.UintSize-1 {
			if err != nil {
				t.Errorf("NumProg=%d rejected: %v", numProg, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("NumProg=%d accepted despite overflowing the counter mask", numProg)
		} else if !strings.Contains(err.Error(), "addressable") {
			t.Errorf("NumProg=%d error %q does not mention mask addressability", numProg, err)
		}
	}
}

func TestLookupAndMustEvent(t *testing.T) {
	c := Skylake()
	if id := c.Lookup("INST_RETIRED.ANY"); id == InvalidEvent {
		t.Error("Lookup failed for known event")
	} else if c.Event(id).Name != "INST_RETIRED.ANY" {
		t.Errorf("Lookup returned wrong event %q", c.Event(id).Name)
	}
	if id := c.Lookup("NO_SUCH_EVENT"); id != InvalidEvent {
		t.Errorf("Lookup of unknown event returned %d", id)
	}
	if id := c.MustEvent("CPU_CLK_UNHALTED.THREAD"); c.Event(id).Name != "CPU_CLK_UNHALTED.THREAD" {
		t.Error("MustEvent returned wrong event")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEvent of unknown event did not panic")
		}
	}()
	c.MustEvent("NO_SUCH_EVENT")
}

func TestRelationsOf(t *testing.T) {
	c := Skylake()
	loads := c.MustEvent("MEM_INST_RETIRED.ALL_LOADS")
	rels := c.RelationsOf(loads)
	if len(rels) != 2 {
		t.Fatalf("ALL_LOADS appears in %d relations, want 2", len(rels))
	}
	names := map[string]bool{}
	for _, ri := range rels {
		names[c.Rels[ri].Name] = true
	}
	if !names["retirement_breakdown"] || !names["l1_load_flow"] {
		t.Errorf("RelationsOf(ALL_LOADS) = %v", names)
	}
	pend := c.MustEvent("L1D_PEND_MISS.PENDING")
	if got := c.RelationsOf(pend); len(got) != 0 {
		t.Errorf("L1D_PEND_MISS.PENDING in relations %v, want none", got)
	}
}

// consistentSkylake fills an event vector from machine primitives so every
// invariant should hold exactly.
func consistentSkylake(c *Catalog) []float64 {
	const (
		loads, stores = 2.4e8, 1.1e8
		misp, pred    = 4.0e6, 9.0e7
		other         = 3.8e8
		l2Hit, l3Hit  = 9.0e6, 2.0e6
		l3Miss        = 5.0e5
		cycles        = 7.0e8
	)
	branches := misp + pred
	l1Miss := l2Hit + l3Hit + l3Miss
	v := make([]float64, c.NumEvents())
	set := func(name string, x float64) { v[c.MustEvent(name)] = x }
	set("MEM_INST_RETIRED.ALL_LOADS", loads)
	set("MEM_INST_RETIRED.ALL_STORES", stores)
	set("BR_MISP_RETIRED.ALL_BRANCHES", misp)
	set("BR_PRED_RETIRED.ALL_BRANCHES", pred)
	set("BR_INST_RETIRED.ALL_BRANCHES", branches)
	set("INST_RETIRED.OTHER", other)
	set("INST_RETIRED.ANY", loads+stores+branches+other)
	set("MEM_LOAD_RETIRED.L1_MISS", l1Miss)
	set("MEM_LOAD_RETIRED.L1_HIT", loads-l1Miss)
	set("MEM_LOAD_RETIRED.L2_HIT", l2Hit)
	set("MEM_LOAD_RETIRED.L3_HIT", l3Hit)
	set("MEM_LOAD_RETIRED.L3_MISS", l3Miss)
	set("OFFCORE_RESPONSE.DEMAND_DATA_RD", l3Hit+l3Miss)
	set("OFFCORE_RESPONSE.DEMAND_DATA_RD.L3_MISS", l3Miss)
	set("CPU_CLK_UNHALTED.THREAD", cycles)
	set("CPU_CLK_UNHALTED.REF_TSC", 0.94*cycles)
	set("L1D_PEND_MISS.PENDING", 10*l1Miss)
	return v
}

func consistentPower9(c *Catalog) []float64 {
	const (
		loads, stores  = 1.6e8, 7.0e7
		misp, branches = 3.0e6, 6.0e7
		other          = 2.1e8
		fromL2, fromL3 = 6.0e6, 1.2e6
		fromMem        = 4.0e5
		cycles         = 4.5e8
	)
	l1Miss := fromL2 + fromL3 + fromMem
	v := make([]float64, c.NumEvents())
	set := func(name string, x float64) { v[c.MustEvent(name)] = x }
	set("PM_LD_CMPL", loads)
	set("PM_ST_CMPL", stores)
	set("PM_BR_CMPL", branches)
	set("PM_BR_MPRED_CMPL", misp)
	set("PM_INST_OTHER_CMPL", other)
	set("PM_INST_CMPL", loads+stores+branches+other)
	set("PM_LD_MISS_L1", l1Miss)
	set("PM_LD_HIT_L1", loads-l1Miss)
	set("PM_DATA_FROM_L2", fromL2)
	set("PM_DATA_FROM_L3", fromL3)
	set("PM_DATA_FROM_MEM", fromMem)
	set("PM_RUN_CYC", cycles)
	return v
}

// TestCatalogInvariantsZeroResidual checks that both built-in catalogs'
// invariants have zero residual on a consistent synthetic event vector.
func TestCatalogInvariantsZeroResidual(t *testing.T) {
	sky := Skylake()
	p9 := Power9()
	cases := []struct {
		cat  *Catalog
		vals []float64
	}{
		{sky, consistentSkylake(sky)},
		{p9, consistentPower9(p9)},
	}
	for _, tc := range cases {
		for _, r := range tc.cat.Rels {
			res := math.Abs(r.Residual(tc.vals))
			if res > 1e-9*math.Max(r.Magnitude(tc.vals), 1) {
				t.Errorf("%s: relation %s residual %g on consistent vector",
					tc.cat.Arch, r.Name, res)
			}
		}
	}
}

func TestBuiltinCatalogsShape(t *testing.T) {
	sky := Skylake()
	if err := sky.Validate(); err != nil {
		t.Errorf("Skylake invalid: %v", err)
	}
	if sky.NumFixed != 3 || sky.NumProg != 4 {
		t.Errorf("Skylake counters = %d fixed/%d prog, want 3/4", sky.NumFixed, sky.NumProg)
	}
	if n := sky.NumEvents(); n < 12 {
		t.Errorf("Skylake has %d events, want >= 12", n)
	}
	if n := len(sky.Rels); n < 5 {
		t.Errorf("Skylake has %d invariants, want >= 5", n)
	}
	hasMSR := false
	for _, e := range sky.Events {
		if e.NeedsMSR {
			hasMSR = true
		}
	}
	if !hasMSR {
		t.Error("Skylake has no off-core-response MSR events")
	}
	for _, name := range []string{"IPC", "L3_MPKI", "Backend_Bound"} {
		if sky.DerivedByName(name) == nil {
			t.Errorf("Skylake missing derived event %s", name)
		}
	}
	if d := sky.DerivedByName("NOPE"); d != nil {
		t.Errorf("DerivedByName(NOPE) = %v", d)
	}

	p9 := Power9()
	if err := p9.Validate(); err != nil {
		t.Errorf("Power9 invalid: %v", err)
	}
	if n := p9.NumEvents(); n < 8 {
		t.Errorf("Power9 has %d events, want >= 8", n)
	}
	if n := len(p9.Rels); n < 3 {
		t.Errorf("Power9 has %d invariants, want >= 3", n)
	}

	// Fixed + programmable partition covers every event in both catalogs.
	for _, c := range Catalogs() {
		if got := len(c.FixedEvents()) + len(c.ProgrammableEvents()); got != c.NumEvents() {
			t.Errorf("%s: fixed+prog = %d, want %d", c.Arch, got, c.NumEvents())
		}
	}
}

func TestEvalDerived(t *testing.T) {
	c := Skylake()
	v := consistentSkylake(c)
	ipc := c.EvalDerived(c.DerivedByName("IPC"), v)
	want := v[c.MustEvent("INST_RETIRED.ANY")] / v[c.MustEvent("CPU_CLK_UNHALTED.THREAD")]
	if math.Abs(ipc-want) > 1e-12 {
		t.Errorf("IPC = %v, want %v", ipc, want)
	}
}

// TestGradientAnalyticMatchesFallback checks, for every derived event in
// both catalogs, that the declared analytic gradient agrees with the
// central-difference fallback at a consistent operating point — and that
// formulas without a declared gradient (Backend_Bound) produce a finite
// fallback gradient.
func TestGradientAnalyticMatchesFallback(t *testing.T) {
	for _, tc := range []struct {
		cat  *Catalog
		vals []float64
	}{
		{Skylake(), nil}, {Power9(), nil},
	} {
		if tc.cat.Arch == "x86_64-skylake" {
			tc.vals = consistentSkylake(tc.cat)
		} else {
			tc.vals = consistentPower9(tc.cat)
		}
		for di := range tc.cat.Derived {
			d := &tc.cat.Derived[di]
			in := make([]float64, len(d.Inputs))
			for i, id := range d.Inputs {
				in[i] = tc.vals[id]
			}
			got := d.Gradient(in)
			// Strip the analytic gradient and re-derive numerically.
			numeric := Derived{Name: d.Name, Inputs: d.Inputs, Eval: d.Eval}
			want := numeric.Gradient(in)
			for i := range got {
				if math.IsNaN(got[i]) || math.IsInf(got[i], 0) {
					t.Errorf("%s/%s: gradient[%d] = %v", tc.cat.Arch, d.Name, i, got[i])
				}
				tol := 1e-4 * math.Max(math.Abs(want[i]), 1e-300)
				if math.Abs(got[i]-want[i]) > tol {
					t.Errorf("%s/%s: gradient[%d] = %g, central difference %g",
						tc.cat.Arch, d.Name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPropagateStdGoldenIPC is the golden delta-method check: for
// IPC = I/C with I = 1e9 ± 1e7 and C = 8e8 ± 4e6, the propagated std must
// equal the hand-computed √((σ_I/C)² + (I·σ_C/C²)²).
func TestPropagateStdGoldenIPC(t *testing.T) {
	c := Skylake()
	d := c.DerivedByName("IPC")
	const (
		instr, sigI = 1.0e9, 1.0e7
		cyc, sigC   = 8.0e8, 4.0e6
	)
	got := d.PropagateStd([]float64{instr, cyc}, []float64{sigI, sigC})
	want := math.Sqrt(math.Pow(sigI/cyc, 2) + math.Pow(instr*sigC/(cyc*cyc), 2))
	if math.Abs(got-want) > 1e-12*want {
		t.Errorf("IPC propagated std = %g, hand-computed %g", got, want)
	}
	// Sanity: the relative std of a ratio of ~1%-and-0.5%-accurate inputs
	// lands near √(1%² + 0.5%²).
	ipc := d.Eval([]float64{instr, cyc})
	rel := got / ipc
	if rel < 0.010 || rel > 0.013 {
		t.Errorf("IPC relative std = %.4f, want ≈ 0.0112", rel)
	}
}

// TestPropagateStdCovGoldenIPC extends the golden delta-method check with
// a correlated pair: for IPC = I/C with correlation ρ between the inputs,
// the covariance-aware std must equal the hand-computed
// √((σ_I/C)² + (I·σ_C/C²)² + 2·(σ_I/C)·(−I·σ_C/C²)·ρ) — strictly below
// the diagonal value for ρ > 0 (errors that move together cancel in a
// ratio) and above it for ρ < 0.
func TestPropagateStdCovGoldenIPC(t *testing.T) {
	c := Skylake()
	d := c.DerivedByName("IPC")
	const (
		instr, sigI = 1.0e9, 1.0e7
		cyc, sigC   = 8.0e8, 4.0e6
	)
	in := []float64{instr, cyc}
	sd := []float64{sigI, sigC}
	diag := d.PropagateStd(in, sd)
	for _, rho := range []float64{0.8, -0.8} {
		got := d.PropagateStdCov(in, sd, func(i, j int) float64 { return rho })
		gI, gC := 1/cyc, -instr/(cyc*cyc)
		want := math.Sqrt(gI*sigI*gI*sigI + gC*sigC*gC*sigC + 2*gI*sigI*gC*sigC*rho)
		if math.Abs(got-want) > 1e-12*want {
			t.Errorf("rho=%v: covariance-aware std = %g, hand-computed %g", rho, got, want)
		}
		if rho > 0 && got >= diag {
			t.Errorf("rho=%v: covariance-aware std %g not below diagonal %g", rho, got, diag)
		}
		if rho < 0 && got <= diag {
			t.Errorf("rho=%v: covariance-aware std %g not above diagonal %g", rho, got, diag)
		}
	}

	// nil corr — and a corr that always reports independence — reproduce
	// the diagonal propagation bit for bit.
	if got := d.PropagateStdCov(in, sd, nil); got != diag {
		t.Errorf("nil-corr covariance propagation %g != diagonal %g", got, diag)
	}
	if got := d.PropagateStdCov(in, sd, func(i, j int) float64 { return 0 }); got != diag {
		t.Errorf("zero-corr covariance propagation %g != diagonal %g", got, diag)
	}

	// Out-of-range correlations clamp to ±1 instead of breaking the
	// variance's positivity; the fully-cancelling direction floors at 0.
	if got := d.PropagateStdCov(in, sd, func(i, j int) float64 { return 99 }); math.IsNaN(got) || got < 0 {
		t.Errorf("clamped correlation produced std %v", got)
	}
	wantClamped := d.PropagateStdCov(in, sd, func(i, j int) float64 { return 1 })
	if got := d.PropagateStdCov(in, sd, func(i, j int) float64 { return 99 }); got != wantClamped {
		t.Errorf("rho=99 std %g != rho=1 std %g", got, wantClamped)
	}
	// NaN correlations are ignored (treated as uncoupled), never
	// propagated.
	if got := d.PropagateStdCov(in, sd, func(i, j int) float64 { return math.NaN() }); got != diag {
		t.Errorf("NaN-corr std %g != diagonal %g", got, diag)
	}
}

// TestDerivedZeroDenominator exercises every catalog formula's safeDiv
// guard: with an all-zero input vector the value is 0 and the propagated
// std stays finite and non-negative (the guard's discontinuity must not
// leak NaN/Inf through the gradient).
func TestDerivedZeroDenominator(t *testing.T) {
	for _, cat := range Catalogs() {
		zeros := make([]float64, cat.NumEvents())
		ones := make([]float64, cat.NumEvents())
		for i := range ones {
			ones[i] = 1
		}
		for di := range cat.Derived {
			d := &cat.Derived[di]
			if v := cat.EvalDerived(d, zeros); v != 0 {
				t.Errorf("%s/%s: Eval at zero vector = %v, want 0", cat.Arch, d.Name, v)
			}
			mean, std := d.PosteriorFrom(zeros, ones)
			if mean != 0 {
				t.Errorf("%s/%s: PosteriorFrom mean at zero vector = %v, want 0", cat.Arch, d.Name, mean)
			}
			if math.IsNaN(std) || math.IsInf(std, 0) || std < 0 {
				t.Errorf("%s/%s: PosteriorFrom std at zero vector = %v", cat.Arch, d.Name, std)
			}
		}
	}
}

// TestPosteriorFromGathersInputs checks the EventID→Inputs gathering of
// Derived.PosteriorFrom against a direct inputs-order computation.
func TestPosteriorFromGathersInputs(t *testing.T) {
	c := Power9()
	v := consistentPower9(c)
	stds := make([]float64, c.NumEvents())
	for i := range stds {
		stds[i] = 0.01 * math.Max(v[i], 1)
	}
	d := c.DerivedByName("DL1_MPKI")
	in := []float64{v[d.Inputs[0]], v[d.Inputs[1]]}
	sd := []float64{stds[d.Inputs[0]], stds[d.Inputs[1]]}
	mean, std := d.PosteriorFrom(v, stds)
	if mean != d.Eval(in) {
		t.Errorf("PosteriorFrom mean = %v, Eval = %v", mean, d.Eval(in))
	}
	if want := d.PropagateStd(in, sd); math.Abs(std-want) > 1e-15*want {
		t.Errorf("PosteriorFrom std = %v, PropagateStd = %v", std, want)
	}
	if std <= 0 {
		t.Errorf("PosteriorFrom std = %v, want > 0", std)
	}
}
