// Package uarch defines the microarchitectural knowledge base that drives
// BayesPerf: per-CPU event catalogs (fixed and programmable events together
// with their counter-placement constraints), the library of algebraic
// invariants between events (§3–§4 of the paper: "microarchitectural
// invariants … can be composed, encoded as statistical relationships"), and
// the derived-event formulas evaluated in §6.2.
//
// The catalogs model an Intel Skylake-like x86_64 core and an IBM
// Power9-like ppc64 core. Event semantics are grounded in a common set of
// machine primitives (see internal/measure's workload generator), so the
// invariants declared here hold exactly in the simulated ground truth, just
// as the vendor-documented relations hold on real silicon.
package uarch

import (
	"fmt"
	"math"
	"math/bits"
)

// EventID indexes an event within one catalog. IDs are dense from 0.
type EventID int

// InvalidEvent is the sentinel for "no event".
const InvalidEvent EventID = -1

// Event describes one countable architectural or microarchitectural event.
type Event struct {
	ID    EventID
	Name  string
	Fixed bool // counted on a dedicated fixed counter, never multiplexed
	// FixedIndex is the fixed-counter slot for fixed events (0-based).
	FixedIndex int
	// CounterMask is the bitmask of programmable counters able to count the
	// event (bit i set ⇒ counter c_i can host it). Ignored for fixed events.
	// This models constraints like "L1D_PEND_MISS.PENDING can be only
	// counted on the third HPC on Haswell/Broadwell systems" (§4).
	CounterMask uint
	// NeedsMSR marks off-core-response style events that consume one of the
	// PMU's auxiliary MSRs in addition to a counter ("an Intel off-core
	// response event requires one HPC and one MSR register", §4).
	NeedsMSR bool
	// Model grounds the event in the shared machine primitives of the
	// simulated core (internal/measure): the event's value is the linear
	// combination Σ Model[p]·primitive(p). Catalogs declared as data (JSON
	// specs) carry their ground-truth semantics here instead of in compiled
	// Go, which is what lets a catalog defined purely in JSON run end to
	// end through the simulator.
	Model map[string]float64
	Desc  string
}

// Term is one addend of a linear invariant: Coeff · value(Event).
type Term struct {
	Event EventID
	Coeff float64
}

// Relation is a linear microarchitectural invariant Σᵢ Coeffᵢ·eᵢ ≈ 0.
// RelTol expresses how exactly it holds as a fraction of the relation's
// magnitude; it becomes the factor noise scale in the factor graph.
type Relation struct {
	Name   string
	Terms  []Term
	RelTol float64
	Desc   string
}

// Residual evaluates Σᵢ Coeffᵢ·vals[eᵢ] for the relation.
func (r Relation) Residual(vals []float64) float64 {
	var s float64
	for _, t := range r.Terms {
		s += t.Coeff * vals[t.Event]
	}
	return s
}

// Magnitude returns the scale of the relation at the given values:
// Σᵢ |Coeffᵢ·vals[eᵢ]| / 2 (half the gross flow, so that an exact A=B+C
// relation has magnitude ≈ A).
func (r Relation) Magnitude(vals []float64) float64 {
	var s float64
	for _, t := range r.Terms {
		s += math.Abs(t.Coeff * vals[t.Event])
	}
	return s / 2
}

// Expression kinds a Derived formula can be declared as when the catalog is
// expressed as data (see Spec). Every built-in formula is one of these, so
// catalogs round-trip through JSON without losing their derived events.
const (
	// KindRatio is Scale·in[0]/in[1] with safeDiv's zero-denominator guard
	// and the analytic ratioGrad gradient.
	KindRatio = "ratio"
	// KindLinearRatio is ΣNum[i]·in[i] / ΣDen[i]·in[i] (safeDiv-guarded),
	// with no analytic gradient: uncertainty propagation exercises the
	// central-difference fallback, exactly as the builder catalogs do.
	KindLinearRatio = "linear_ratio"
)

// Derived is a derived event (§2 "Errors in Derived Events"): a mathematical
// combination of individual HPC values, e.g. IPC or Backend_Bound.
type Derived struct {
	Name   string
	Inputs []EventID
	// Eval computes the derived value from the input event values, in
	// Inputs order.
	Eval func(in []float64) float64
	// Grad, when declared, returns ∂Eval/∂inᵢ at in, in Inputs order.
	// Formulas without an analytic gradient fall back to a central finite
	// difference in Gradient.
	Grad func(in []float64) []float64
	// Kind, Scale, Num and Den are the data form of the formula (KindRatio
	// or KindLinearRatio): the serialization metadata from which Eval/Grad
	// were built. Empty Kind marks a hand-written closure that cannot be
	// expressed as a Spec.
	Kind     string
	Scale    float64
	Num, Den []float64
	Desc     string
}

// newRatioDerived builds the KindRatio formula scale·num/den with its
// analytic gradient. Both the catalog builders and the Spec loader construct
// ratios through here, so a spec-loaded catalog's formulas are bit-identical
// to the builder's.
func newRatioDerived(name, desc string, num, den EventID, scale float64) Derived {
	return Derived{
		Name:   name,
		Inputs: []EventID{num, den},
		Eval:   func(in []float64) float64 { return safeDiv(scale*in[0], in[1]) },
		Grad:   ratioGrad(scale),
		Kind:   KindRatio,
		Scale:  scale,
		Desc:   desc,
	}
}

// newLinearRatioDerived builds the KindLinearRatio formula
// Σ num[i]·in[i] / Σ den[i]·in[i]. Grad stays nil on purpose: the builder
// catalogs leave their weighted-sum ratios on the central-difference
// fallback, and the spec loader must reproduce that bit for bit.
func newLinearRatioDerived(name, desc string, inputs []EventID, num, den []float64) Derived {
	num = append([]float64(nil), num...)
	den = append([]float64(nil), den...)
	return Derived{
		Name:   name,
		Inputs: append([]EventID(nil), inputs...),
		Eval: func(in []float64) float64 {
			var n, d float64
			for i := range in {
				n += num[i] * in[i]
				d += den[i] * in[i]
			}
			return safeDiv(n, d)
		},
		Kind: KindLinearRatio,
		Num:  num,
		Den:  den,
		Desc: desc,
	}
}

// Gradient returns ∂Eval/∂inᵢ at in (Inputs order): the declared analytic
// gradient when present, otherwise a central finite difference with a
// per-coordinate step h = ε·max(|inᵢ|, 1). The fallback is exact for the
// linear-fractional formulas used in the catalogs up to O(h²).
func (d *Derived) Gradient(in []float64) []float64 {
	if d.Grad != nil {
		return d.Grad(in)
	}
	const eps = 1e-6
	g := make([]float64, len(in))
	x := append([]float64(nil), in...)
	for i := range x {
		h := eps * math.Max(math.Abs(x[i]), 1)
		orig := x[i]
		x[i] = orig + h
		fp := d.Eval(x)
		x[i] = orig - h
		fm := d.Eval(x)
		x[i] = orig
		g[i] = (fp - fm) / (2 * h)
	}
	return g
}

// PropagateStd applies the first-order delta method at the point in: the
// std of Eval given per-input stds, treating the inputs as independent
// (the factor graph exposes marginals only, so cross-covariances are not
// available; the diagonal approximation is conservative for the
// negatively-correlated ratio formulas here). Non-finite gradient
// components — e.g. a finite difference straddling safeDiv's zero-
// denominator guard — contribute nothing instead of poisoning the result.
func (d *Derived) PropagateStd(in, std []float64) float64 {
	g := d.Gradient(in)
	var v float64
	for i, gi := range g {
		if math.IsNaN(gi) || math.IsInf(gi, 0) {
			continue
		}
		t := gi * std[i]
		v += t * t
	}
	return math.Sqrt(v)
}

// PropagateStdCov is the covariance-aware delta method: like PropagateStd,
// but cross-input coupling enters through corr(i, j) — the posterior
// correlation of inputs i and j (positions in Inputs order), as extracted
// per relation clique by the factor graph. A nil corr, or one returning 0
// for every pair, reproduces the diagonal PropagateStd bit for bit.
// Correlations are clamped to [−1, 1] and the accumulated variance floored
// at 0, so an inconsistent covariance model can never yield a NaN std.
func (d *Derived) PropagateStdCov(in, std []float64, corr func(i, j int) float64) float64 {
	g := d.Gradient(in)
	var v float64
	for i, gi := range g {
		if math.IsNaN(gi) || math.IsInf(gi, 0) {
			continue
		}
		t := gi * std[i]
		v += t * t
	}
	if corr != nil {
		for i, gi := range g {
			if math.IsNaN(gi) || math.IsInf(gi, 0) {
				continue
			}
			for j := i + 1; j < len(g); j++ {
				gj := g[j]
				if math.IsNaN(gj) || math.IsInf(gj, 0) {
					continue
				}
				rho := corr(i, j)
				if rho == 0 || math.IsNaN(rho) { //bayesvet:bitwise corrFn returns exact 0 for untracked pairs; skip the term
					continue
				}
				if rho > 1 {
					rho = 1
				} else if rho < -1 {
					rho = -1
				}
				v += 2 * (gi * std[i]) * (gj * std[j]) * rho
			}
		}
	}
	if v < 0 {
		v = 0 // clamped correlations keep this near-impossible for k=2; guard k>2
	}
	return math.Sqrt(v)
}

// Catalog is the complete event model for one CPU architecture.
type Catalog struct {
	Arch     string // e.g. "x86_64-skylake"
	NumFixed int    // fixed HPCs (n_f in the paper's formalism)
	NumProg  int    // programmable HPCs (n_p)
	NumMSR   int    // auxiliary off-core-response MSRs available
	Events   []Event
	Rels     []Relation
	Derived  []Derived

	byName map[string]EventID
}

// newCatalog starts a catalog builder.
func newCatalog(arch string, numFixed, numProg, numMSR int) *Catalog {
	return &Catalog{
		Arch:     arch,
		NumFixed: numFixed,
		NumProg:  numProg,
		NumMSR:   numMSR,
		byName:   make(map[string]EventID),
	}
}

func (c *Catalog) addEvent(e Event) EventID {
	if _, dup := c.byName[e.Name]; dup {
		panic(fmt.Sprintf("uarch: duplicate event %q in %s", e.Name, c.Arch))
	}
	e.ID = EventID(len(c.Events))
	c.Events = append(c.Events, e)
	c.byName[e.Name] = e.ID
	return e.ID
}

// fixed registers a fixed-counter event at the given fixed slot.
func (c *Catalog) fixed(name string, slot int, desc string) EventID {
	return c.addEvent(Event{Name: name, Fixed: true, FixedIndex: slot, Desc: desc})
}

// prog registers a programmable event with the given counter mask.
func (c *Catalog) prog(name string, mask uint, desc string) EventID {
	return c.addEvent(Event{Name: name, CounterMask: mask, Desc: desc})
}

// progMSR registers a programmable event that also consumes an MSR.
func (c *Catalog) progMSR(name string, mask uint, desc string) EventID {
	return c.addEvent(Event{Name: name, CounterMask: mask, NeedsMSR: true, Desc: desc})
}

// relation registers a linear invariant by event name. Terms are given as
// (coeff, name) pairs.
func (c *Catalog) relation(name string, relTol float64, desc string, terms ...Term) {
	c.Rels = append(c.Rels, Relation{Name: name, Terms: terms, RelTol: relTol, Desc: desc})
}

func (c *Catalog) derived(name, desc string, inputs []EventID, eval func([]float64) float64) {
	c.Derived = append(c.Derived, Derived{Name: name, Inputs: inputs, Eval: eval, Desc: desc})
}

// derivedRatio registers a scale·num/den ratio formula (KindRatio) with its
// analytic gradient.
func (c *Catalog) derivedRatio(name, desc string, num, den EventID, scale float64) {
	c.Derived = append(c.Derived, newRatioDerived(name, desc, num, den, scale))
}

// derivedLinear registers a weighted-sum-over-weighted-sum formula
// (KindLinearRatio); gradient comes from the central-difference fallback.
func (c *Catalog) derivedLinear(name, desc string, inputs []EventID, num, den []float64) {
	c.Derived = append(c.Derived, newLinearRatioDerived(name, desc, inputs, num, den))
}

// setModels assigns each named event's ground-truth model (see Event.Model).
// Unknown names panic: the builder catalogs call this at construction time
// only, so a typo fails loudly in every test.
func (c *Catalog) setModels(models map[string]map[string]float64) {
	for name, m := range models { //bayesvet:maporder each iteration writes a distinct slice index keyed by event name; order-insensitive
		c.Events[c.MustEvent(name)].Model = m
	}
}

// Lookup returns the EventID for name, or InvalidEvent if unknown.
func (c *Catalog) Lookup(name string) EventID {
	if id, ok := c.byName[name]; ok {
		return id
	}
	return InvalidEvent
}

// MustEvent returns the EventID for name, panicking if unknown. It is used
// at catalog-construction and test time only.
func (c *Catalog) MustEvent(name string) EventID {
	id := c.Lookup(name)
	if id == InvalidEvent {
		panic(fmt.Sprintf("uarch: unknown event %q in %s", name, c.Arch))
	}
	return id
}

// Event returns the event descriptor for id.
func (c *Catalog) Event(id EventID) Event { return c.Events[id] }

// NumEvents returns the number of events in the catalog (n_e).
func (c *Catalog) NumEvents() int { return len(c.Events) }

// FixedEvents returns the IDs of all fixed-counter events.
func (c *Catalog) FixedEvents() []EventID {
	var out []EventID
	for _, e := range c.Events {
		if e.Fixed {
			out = append(out, e.ID)
		}
	}
	return out
}

// ProgrammableEvents returns the IDs of all programmable events.
func (c *Catalog) ProgrammableEvents() []EventID {
	var out []EventID
	for _, e := range c.Events {
		if !e.Fixed {
			out = append(out, e.ID)
		}
	}
	return out
}

// RelationsOf returns the indices (into Rels) of every relation mentioning
// the event.
func (c *Catalog) RelationsOf(id EventID) []int {
	var out []int
	for i, r := range c.Rels {
		for _, t := range r.Terms {
			if t.Event == id {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// DerivedByName returns the derived-event definition, or nil.
func (c *Catalog) DerivedByName(name string) *Derived {
	for i := range c.Derived {
		if c.Derived[i].Name == name {
			return &c.Derived[i]
		}
	}
	return nil
}

// Validate checks internal consistency of the catalog. It is called by the
// constructors and exercised directly in tests.
func (c *Catalog) Validate() error {
	if c.NumFixed < 0 || c.NumProg <= 0 {
		return fmt.Errorf("uarch: %s: need at least one programmable counter", c.Arch)
	}
	// CounterMask is a uint, so a catalog can address at most UintSize−1
	// programmable counters; beyond that the full-mask shift below would
	// overflow and mask validation would silently accept garbage.
	if c.NumProg > bits.UintSize-1 {
		return fmt.Errorf("uarch: %s: NumProg %d exceeds the %d counters addressable by a counter mask",
			c.Arch, c.NumProg, bits.UintSize-1)
	}
	fullMask := uint(1)<<uint(c.NumProg) - 1
	fixedSeen := make(map[int]string)
	for _, e := range c.Events {
		if e.Fixed {
			if e.FixedIndex < 0 || e.FixedIndex >= c.NumFixed {
				return fmt.Errorf("uarch: %s: %s fixed slot %d out of range", c.Arch, e.Name, e.FixedIndex)
			}
			if prev, dup := fixedSeen[e.FixedIndex]; dup {
				return fmt.Errorf("uarch: %s: fixed slot %d claimed by both %s and %s", c.Arch, e.FixedIndex, prev, e.Name)
			}
			fixedSeen[e.FixedIndex] = e.Name
			continue
		}
		if e.CounterMask == 0 {
			return fmt.Errorf("uarch: %s: %s has empty counter mask", c.Arch, e.Name)
		}
		if e.NeedsMSR && c.NumMSR < 1 {
			return fmt.Errorf("uarch: %s: %s needs an MSR but catalog has none", c.Arch, e.Name)
		}
		if e.CounterMask&^fullMask != 0 {
			return fmt.Errorf("uarch: %s: %s mask %#x exceeds %d counters", c.Arch, e.Name, e.CounterMask, c.NumProg)
		}
	}
	for _, r := range c.Rels {
		if len(r.Terms) < 2 {
			return fmt.Errorf("uarch: %s: relation %s has <2 terms", c.Arch, r.Name)
		}
		if r.RelTol <= 0 {
			return fmt.Errorf("uarch: %s: relation %s has non-positive tolerance", c.Arch, r.Name)
		}
		for _, t := range r.Terms {
			if t.Event < 0 || int(t.Event) >= len(c.Events) {
				return fmt.Errorf("uarch: %s: relation %s references unknown event %d", c.Arch, r.Name, t.Event)
			}
			if t.Coeff == 0 { //bayesvet:bitwise validation rejects an exactly-zero coefficient, which the spec assigns
				return fmt.Errorf("uarch: %s: relation %s has zero coefficient", c.Arch, r.Name)
			}
		}
	}
	for _, d := range c.Derived {
		if d.Eval == nil {
			return fmt.Errorf("uarch: %s: derived %s has no formula", c.Arch, d.Name)
		}
		for _, in := range d.Inputs {
			if in < 0 || int(in) >= len(c.Events) {
				return fmt.Errorf("uarch: %s: derived %s references unknown event %d", c.Arch, d.Name, in)
			}
		}
		switch d.Kind {
		case "": // hand-written closure: nothing more to check
		case KindRatio:
			if len(d.Inputs) != 2 {
				return fmt.Errorf("uarch: %s: ratio derived %s needs 2 inputs, has %d", c.Arch, d.Name, len(d.Inputs))
			}
			if d.Scale == 0 { //bayesvet:bitwise validation rejects an exactly-zero scale, which the spec assigns
				return fmt.Errorf("uarch: %s: ratio derived %s has zero scale", c.Arch, d.Name)
			}
		case KindLinearRatio:
			if len(d.Num) != len(d.Inputs) || len(d.Den) != len(d.Inputs) {
				return fmt.Errorf("uarch: %s: linear_ratio derived %s coefficient lengths %d/%d do not match %d inputs",
					c.Arch, d.Name, len(d.Num), len(d.Den), len(d.Inputs))
			}
		default:
			return fmt.Errorf("uarch: %s: derived %s has unknown kind %q", c.Arch, d.Name, d.Kind)
		}
	}
	return nil
}

// EvalDerived computes a derived event from a full event-value vector
// (indexed by EventID).
func (c *Catalog) EvalDerived(d *Derived, vals []float64) float64 {
	in := make([]float64, len(d.Inputs))
	for i, id := range d.Inputs {
		in[i] = vals[id]
	}
	return d.Eval(in)
}

// PosteriorFrom computes the derived event's (mean, std) from full
// per-event posterior mean and std vectors (indexed by EventID): the value
// at the posterior mean and the delta-method std (PropagateStd). It is the
// single gather point shared by the batch (graph.Result) and any
// vector-shaped caller, so a future covariance-aware propagation lands in
// one place.
func (d *Derived) PosteriorFrom(mean, std []float64) (dMean, dStd float64) {
	in := make([]float64, len(d.Inputs))
	sd := make([]float64, len(d.Inputs))
	for i, id := range d.Inputs {
		in[i] = mean[id]
		sd[i] = std[id]
	}
	return d.Eval(in), d.PropagateStd(in, sd)
}

// anyCtr returns the "any programmable counter" mask for n counters.
func anyCtr(n int) uint { return uint(1)<<uint(n) - 1 }

// loCtr returns the mask selecting the low k of n counters.
func loCtr(k int) uint { return uint(1)<<uint(k) - 1 }

// oneCtr returns the mask selecting exactly counter i.
func oneCtr(i int) uint { return uint(1) << uint(i) }

func safeDiv(a, b float64) float64 {
	if b == 0 { //bayesvet:bitwise guard against exact-zero denominator
		return 0
	}
	return a / b
}

// ratioGrad returns the analytic gradient of the scaled ratio
// f(a, b) = k·a/b under safeDiv's zero-denominator guard: (k/b, −k·a/b²),
// and the guard's flat (0, 0) at b = 0 — a zero denominator carries no
// first-order information.
func ratioGrad(k float64) func(in []float64) []float64 {
	return func(in []float64) []float64 {
		a, b := in[0], in[1]
		if b == 0 { //bayesvet:bitwise guard against exact-zero denominator
			return []float64{0, 0}
		}
		return []float64{k / b, -k * a / (b * b)}
	}
}
