// Catalogs as data: Spec is the JSON-serializable description of one CPU
// event catalog — events with counter-placement constraints, linear
// invariants, and derived metrics declared by expression kind — from which a
// full *Catalog is built without recompiling. The named registry below lets
// downstream layers (CLI -arch, sweeps) resolve catalogs by name, and new
// architectures ship as .json files loadable with LoadSpecFile (see
// examples/catalogs/zen.json).
package uarch

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sort"
	"sync"
)

// Spec is the data form of a Catalog. It round-trips through JSON, and
// Spec.Catalog reconstructs formulas from their declared kinds, so a
// spec-built catalog's inference behavior is bit-identical to one assembled
// by the Go builders.
type Spec struct {
	Arch          string         `json:"arch"`
	FixedCounters int            `json:"fixed_counters"`
	ProgCounters  int            `json:"prog_counters"`
	MSRs          int            `json:"msrs,omitempty"`
	Events        []EventSpec    `json:"events"`
	Relations     []RelationSpec `json:"relations,omitempty"`
	Derived       []DerivedSpec  `json:"derived,omitempty"`
}

// EventSpec describes one event. Counters lists the programmable counters
// able to host the event (empty = any); Slot is the fixed-counter index for
// fixed events. Model is the event's ground-truth semantics as a linear
// combination of machine primitives (see Event.Model).
type EventSpec struct {
	Name     string             `json:"name"`
	Fixed    bool               `json:"fixed,omitempty"`
	Slot     int                `json:"slot,omitempty"`
	Counters []int              `json:"counters,omitempty"`
	NeedsMSR bool               `json:"needs_msr,omitempty"`
	Model    map[string]float64 `json:"model,omitempty"`
	Desc     string             `json:"desc,omitempty"`
}

// TermSpec is one addend of a relation, referencing its event by name.
type TermSpec struct {
	Event string  `json:"event"`
	Coeff float64 `json:"coeff"`
}

// RelationSpec is a linear invariant Σ coeff·event ≈ 0.
type RelationSpec struct {
	Name   string     `json:"name"`
	RelTol float64    `json:"rel_tol"`
	Terms  []TermSpec `json:"terms"`
	Desc   string     `json:"desc,omitempty"`
}

// DerivedSpec declares a derived metric by expression kind: KindRatio
// (scale·inputs[0]/inputs[1], default scale 1) or KindLinearRatio
// (Σ num[i]·inputs[i] / Σ den[i]·inputs[i]).
type DerivedSpec struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Inputs []string  `json:"inputs"`
	Scale  float64   `json:"scale,omitempty"`
	Num    []float64 `json:"num,omitempty"`
	Den    []float64 `json:"den,omitempty"`
	Desc   string    `json:"desc,omitempty"`
}

// Catalog builds and validates the full catalog the spec describes.
func (s Spec) Catalog() (*Catalog, error) {
	c := newCatalog(s.Arch, s.FixedCounters, s.ProgCounters, s.MSRs)
	for _, e := range s.Events {
		if _, dup := c.byName[e.Name]; dup {
			return nil, fmt.Errorf("uarch: spec %s: duplicate event %q", s.Arch, e.Name)
		}
		// Reject fixed/programmable field mixups instead of silently
		// dropping the inapplicable knob (the spec-level cousin of
		// LoadSpec's DisallowUnknownFields).
		if !e.Fixed && e.Slot != 0 {
			return nil, fmt.Errorf("uarch: spec %s: event %s declares slot %d but is not fixed (forgot \"fixed\": true?)", s.Arch, e.Name, e.Slot)
		}
		if e.Fixed && len(e.Counters) > 0 {
			return nil, fmt.Errorf("uarch: spec %s: fixed event %s cannot declare programmable counters", s.Arch, e.Name)
		}
		ev := Event{
			Name:       e.Name,
			Fixed:      e.Fixed,
			FixedIndex: e.Slot,
			NeedsMSR:   e.NeedsMSR,
			Desc:       e.Desc,
		}
		if len(e.Model) > 0 {
			ev.Model = make(map[string]float64, len(e.Model))
			for k, v := range e.Model {
				ev.Model[k] = v
			}
		}
		if !e.Fixed {
			if len(e.Counters) == 0 {
				ev.CounterMask = anyCtr(s.ProgCounters)
			} else {
				for _, ctr := range e.Counters {
					if ctr < 0 || ctr >= bits.UintSize-1 {
						return nil, fmt.Errorf("uarch: spec %s: event %s counter %d out of range", s.Arch, e.Name, ctr)
					}
					ev.CounterMask |= oneCtr(ctr)
				}
			}
		}
		c.addEvent(ev)
	}
	for _, r := range s.Relations {
		rel := Relation{Name: r.Name, RelTol: r.RelTol, Desc: r.Desc}
		for _, t := range r.Terms {
			id := c.Lookup(t.Event)
			if id == InvalidEvent {
				return nil, fmt.Errorf("uarch: spec %s: relation %s references unknown event %q", s.Arch, r.Name, t.Event)
			}
			rel.Terms = append(rel.Terms, Term{Event: id, Coeff: t.Coeff})
		}
		c.Rels = append(c.Rels, rel)
	}
	for _, d := range s.Derived {
		inputs := make([]EventID, len(d.Inputs))
		for i, name := range d.Inputs {
			id := c.Lookup(name)
			if id == InvalidEvent {
				return nil, fmt.Errorf("uarch: spec %s: derived %s references unknown event %q", s.Arch, d.Name, name)
			}
			inputs[i] = id
		}
		switch d.Kind {
		case KindRatio:
			if len(inputs) != 2 {
				return nil, fmt.Errorf("uarch: spec %s: ratio derived %s needs 2 inputs, has %d", s.Arch, d.Name, len(inputs))
			}
			scale := d.Scale
			if scale == 0 { //bayesvet:bitwise exact zero means scale omitted in JSON; default to 1
				scale = 1
			}
			c.Derived = append(c.Derived, newRatioDerived(d.Name, d.Desc, inputs[0], inputs[1], scale))
		case KindLinearRatio:
			if len(d.Num) != len(inputs) || len(d.Den) != len(inputs) {
				return nil, fmt.Errorf("uarch: spec %s: linear_ratio derived %s coefficient lengths %d/%d do not match %d inputs",
					s.Arch, d.Name, len(d.Num), len(d.Den), len(inputs))
			}
			c.Derived = append(c.Derived, newLinearRatioDerived(d.Name, d.Desc, inputs, d.Num, d.Den))
		default:
			return nil, fmt.Errorf("uarch: spec %s: derived %s has unknown kind %q", s.Arch, d.Name, d.Kind)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustCatalog is Catalog for known-good specs (the registry's built-ins),
// panicking on error.
func (s Spec) MustCatalog() *Catalog {
	c, err := s.Catalog()
	if err != nil {
		panic(err)
	}
	return c
}

// Spec converts the catalog back to its data form. It fails only on derived
// events declared as hand-written closures (empty Kind), which have no data
// representation.
func (c *Catalog) Spec() (Spec, error) {
	s := Spec{
		Arch:          c.Arch,
		FixedCounters: c.NumFixed,
		ProgCounters:  c.NumProg,
		MSRs:          c.NumMSR,
	}
	full := anyCtr(c.NumProg)
	for _, e := range c.Events {
		es := EventSpec{Name: e.Name, Desc: e.Desc, NeedsMSR: e.NeedsMSR}
		if e.Fixed {
			es.Fixed = true
			es.Slot = e.FixedIndex
		} else if e.CounterMask != full {
			for i := 0; i < c.NumProg; i++ {
				if e.CounterMask&oneCtr(i) != 0 {
					es.Counters = append(es.Counters, i)
				}
			}
		}
		if len(e.Model) > 0 {
			es.Model = make(map[string]float64, len(e.Model))
			for k, v := range e.Model {
				es.Model[k] = v
			}
		}
		s.Events = append(s.Events, es)
	}
	for _, r := range c.Rels {
		rs := RelationSpec{Name: r.Name, RelTol: r.RelTol, Desc: r.Desc}
		for _, t := range r.Terms {
			rs.Terms = append(rs.Terms, TermSpec{Event: c.Event(t.Event).Name, Coeff: t.Coeff})
		}
		s.Relations = append(s.Relations, rs)
	}
	for i := range c.Derived {
		d := &c.Derived[i]
		if d.Kind == "" {
			return Spec{}, fmt.Errorf("uarch: %s: derived %s is a hand-written closure and cannot be expressed as a spec", c.Arch, d.Name)
		}
		ds := DerivedSpec{Name: d.Name, Kind: d.Kind, Scale: d.Scale, Desc: d.Desc}
		if d.Kind == KindRatio && ds.Scale == 1 { //bayesvet:bitwise scale 1 is the canonical no-op, stored exactly; omit from JSON
			ds.Scale = 0 // omitted in JSON; Catalog() defaults it back to 1
		}
		ds.Num = append([]float64(nil), d.Num...)
		ds.Den = append([]float64(nil), d.Den...)
		for _, id := range d.Inputs {
			ds.Inputs = append(ds.Inputs, c.Event(id).Name)
		}
		s.Derived = append(s.Derived, ds)
	}
	return s, nil
}

// LoadSpec decodes a catalog spec from JSON. Unknown fields are rejected so
// schema typos surface as errors rather than silently-ignored knobs.
func LoadSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("uarch: decoding catalog spec: %w", err)
	}
	return s, nil
}

// LoadSpecFile reads a catalog spec from a JSON file.
func LoadSpecFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	s, err := LoadSpec(f)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Save writes the spec as indented JSON, the inverse of LoadSpec.
func (s Spec) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// clone deep-copies the spec (slices and model maps), so registry entries
// and lookups never share mutable state with callers.
func (s Spec) clone() Spec {
	out := s
	out.Events = append([]EventSpec(nil), s.Events...)
	for i := range out.Events {
		if m := out.Events[i].Model; m != nil {
			cp := make(map[string]float64, len(m))
			for k, v := range m {
				cp[k] = v
			}
			out.Events[i].Model = cp
		}
		out.Events[i].Counters = append([]int(nil), out.Events[i].Counters...)
	}
	out.Relations = append([]RelationSpec(nil), s.Relations...)
	for i := range out.Relations {
		out.Relations[i].Terms = append([]TermSpec(nil), out.Relations[i].Terms...)
	}
	out.Derived = append([]DerivedSpec(nil), s.Derived...)
	for i := range out.Derived {
		out.Derived[i].Inputs = append([]string(nil), out.Derived[i].Inputs...)
		out.Derived[i].Num = append([]float64(nil), out.Derived[i].Num...)
		out.Derived[i].Den = append([]float64(nil), out.Derived[i].Den...)
	}
	return out
}

// The named catalog registry: built-in architectures register their specs at
// init, and embedders can Register their own. All operations are safe for
// concurrent use; specs are deep-copied on the way in and out, so mutating
// a registered or looked-up spec never corrupts the registry.
var registry = struct {
	mu sync.RWMutex
	m  map[string]Spec
}{m: make(map[string]Spec)}

// Register adds a named spec to the registry. Names must be unique and the
// spec must build a valid catalog.
func Register(name string, s Spec) error {
	if name == "" {
		return fmt.Errorf("uarch: Register with empty name")
	}
	if _, err := s.Catalog(); err != nil {
		return fmt.Errorf("uarch: Register(%q): %w", name, err)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.m[name]; dup {
		return fmt.Errorf("uarch: Register(%q): name already registered", name)
	}
	registry.m[name] = s.clone()
	return nil
}

// MustRegister is Register panicking on error, for init-time seeding.
func MustRegister(name string, s Spec) {
	if err := Register(name, s); err != nil {
		panic(err)
	}
}

// Lookup returns the named spec (a private copy — mutating it does not
// affect the registry).
func Lookup(name string) (Spec, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	s, ok := registry.m[name]
	if !ok {
		return Spec{}, false
	}
	return s.clone(), true
}

// Names returns every registered catalog name, sorted.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
