package uarch_test

// External test package: the spec round-trip assertions need internal/graph
// and internal/measure, which themselves import uarch.

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"bayesperf/internal/graph"
	"bayesperf/internal/measure"
	"bayesperf/internal/rng"
	"bayesperf/internal/uarch"
)

// roundTrip converts a builder catalog to its spec, through JSON bytes, and
// back to a catalog.
func roundTrip(t *testing.T, cat *uarch.Catalog) (uarch.Spec, *uarch.Catalog) {
	t.Helper()
	spec, err := cat.Spec()
	if err != nil {
		t.Fatalf("%s: Spec: %v", cat.Arch, err)
	}
	var buf bytes.Buffer
	if err := spec.Save(&buf); err != nil {
		t.Fatalf("%s: Save: %v", cat.Arch, err)
	}
	loaded, err := uarch.LoadSpec(&buf)
	if err != nil {
		t.Fatalf("%s: LoadSpec: %v", cat.Arch, err)
	}
	if !reflect.DeepEqual(spec, loaded) {
		t.Fatalf("%s: spec did not survive the JSON round trip:\nbefore %+v\nafter  %+v", cat.Arch, spec, loaded)
	}
	rebuilt, err := loaded.Catalog()
	if err != nil {
		t.Fatalf("%s: Catalog from loaded spec: %v", cat.Arch, err)
	}
	if err := rebuilt.Validate(); err != nil {
		t.Fatalf("%s: rebuilt catalog invalid: %v", cat.Arch, err)
	}
	return loaded, rebuilt
}

// TestSpecRoundTripShape: builder → Spec → JSON → LoadSpec preserves the
// catalog structure exactly (events, masks, relations, derived metadata).
func TestSpecRoundTripShape(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		_, rebuilt := roundTrip(t, cat)
		if rebuilt.Arch != cat.Arch || rebuilt.NumEvents() != cat.NumEvents() ||
			rebuilt.NumFixed != cat.NumFixed || rebuilt.NumProg != cat.NumProg || rebuilt.NumMSR != cat.NumMSR {
			t.Fatalf("%s: rebuilt catalog shape differs", cat.Arch)
		}
		for id, want := range cat.Events {
			got := rebuilt.Event(uarch.EventID(id))
			if got.Name != want.Name || got.Fixed != want.Fixed ||
				got.FixedIndex != want.FixedIndex || got.CounterMask != want.CounterMask ||
				got.NeedsMSR != want.NeedsMSR || !reflect.DeepEqual(got.Model, want.Model) {
				t.Errorf("%s: event %s differs after round trip: %+v vs %+v", cat.Arch, want.Name, got, want)
			}
		}
		if !reflect.DeepEqual(rebuilt.Rels, cat.Rels) {
			t.Errorf("%s: relations differ after round trip", cat.Arch)
		}
		if len(rebuilt.Derived) != len(cat.Derived) {
			t.Fatalf("%s: %d derived after round trip, want %d", cat.Arch, len(rebuilt.Derived), len(cat.Derived))
		}
		for i := range cat.Derived {
			want, got := &cat.Derived[i], &rebuilt.Derived[i]
			if got.Name != want.Name || got.Kind != want.Kind || got.Scale != want.Scale ||
				!reflect.DeepEqual(got.Inputs, want.Inputs) ||
				!reflect.DeepEqual(got.Num, want.Num) || !reflect.DeepEqual(got.Den, want.Den) {
				t.Errorf("%s: derived %s metadata differs after round trip", cat.Arch, want.Name)
			}
		}
	}
}

// TestSpecRoundTripGroundTruth: the spec-loaded catalog produces the exact
// ground-truth trace of the builder catalog (bit-identical model
// evaluation), with zero invariant residuals on the truth vector.
func TestSpecRoundTripGroundTruth(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		_, rebuilt := roundTrip(t, cat)
		wl := measure.DefaultWorkload(40)
		trA := measure.GroundTruth(cat, wl, rng.New(9))
		trB := measure.GroundTruth(rebuilt, wl, rng.New(9))
		for id := range trA.Series {
			for ti := range trA.Series[id] {
				if trA.Series[id][ti] != trB.Series[id][ti] {
					t.Fatalf("%s: event %d interval %d: builder %v vs spec %v",
						cat.Arch, id, ti, trA.Series[id][ti], trB.Series[id][ti])
				}
			}
		}
		totals := trB.Totals()
		for _, rel := range rebuilt.Rels {
			if res := math.Abs(rel.Residual(totals)); res > 1e-6*rel.Magnitude(totals) {
				t.Errorf("%s: relation %s residual %g on spec-built truth totals", cat.Arch, rel.Name, res)
			}
		}
	}
}

// TestSpecRoundTripPosteriorsBitIdentical is the acceptance criterion: the
// builder-based and spec-loaded catalogs produce bit-identical graph.Infer
// posteriors for the same observations, and bit-identical derived
// posteriors through the reconstructed formulas.
func TestSpecRoundTripPosteriorsBitIdentical(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		_, rebuilt := roundTrip(t, cat)
		r := rng.New(7)
		tr := measure.GroundTruth(cat, measure.DefaultWorkload(60), r.Split())
		mux := measure.Multiplex(tr, measure.DefaultMuxConfig(), r.Split())

		infer := func(c *uarch.Catalog) graph.Result {
			g := graph.Build(c)
			for id, est := range mux.Est {
				if est.N > 0 {
					g.Observe(uarch.EventID(id), est.Total, est.Std)
				}
			}
			return g.Infer(500, 1e-9)
		}
		postA, postB := infer(cat), infer(rebuilt)
		if postA.Iters != postB.Iters || postA.Converged != postB.Converged {
			t.Fatalf("%s: inference trajectory differs: %d/%v vs %d/%v",
				cat.Arch, postA.Iters, postA.Converged, postB.Iters, postB.Converged)
		}
		for id := range postA.Mean {
			if postA.Mean[id] != postB.Mean[id] || postA.Std[id] != postB.Std[id] {
				t.Fatalf("%s: event %d posterior differs: %v±%v vs %v±%v", cat.Arch, id,
					postA.Mean[id], postA.Std[id], postB.Mean[id], postB.Std[id])
			}
		}
		for i := range cat.Derived {
			mA, sA := postA.DerivedPosterior(&cat.Derived[i])
			mB, sB := postB.DerivedPosterior(&rebuilt.Derived[i])
			if mA != mB || sA != sB {
				t.Fatalf("%s: derived %s posterior differs: %v±%v vs %v±%v",
					cat.Arch, cat.Derived[i].Name, mA, sA, mB, sB)
			}
		}
	}
}

// TestSpecCatalogErrors: malformed specs fail with descriptive errors
// instead of building broken catalogs.
func TestSpecCatalogErrors(t *testing.T) {
	base := func() uarch.Spec {
		s, err := uarch.Skylake().Spec()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name   string
		mutate func(*uarch.Spec)
		want   string
	}{
		{"unknown relation event", func(s *uarch.Spec) {
			s.Relations[0].Terms[0].Event = "NO_SUCH_EVENT"
		}, "unknown event"},
		{"unknown derived input", func(s *uarch.Spec) {
			s.Derived[0].Inputs[0] = "NO_SUCH_EVENT"
		}, "unknown event"},
		{"unknown derived kind", func(s *uarch.Spec) {
			s.Derived[0].Kind = "polynomial"
		}, "unknown kind"},
		{"ratio arity", func(s *uarch.Spec) {
			s.Derived[0].Inputs = append(s.Derived[0].Inputs, s.Events[0].Name)
		}, "needs 2 inputs"},
		{"linear_ratio coefficient lengths", func(s *uarch.Spec) {
			for i := range s.Derived {
				if s.Derived[i].Kind == uarch.KindLinearRatio {
					s.Derived[i].Num = s.Derived[i].Num[:1]
				}
			}
		}, "do not match"},
		{"duplicate event", func(s *uarch.Spec) {
			s.Events = append(s.Events, s.Events[3])
		}, "duplicate event"},
		{"counter out of mask range", func(s *uarch.Spec) {
			s.Events[3].Counters = []int{99}
		}, "out of range"},
		{"counter beyond the catalog's counters", func(s *uarch.Spec) {
			s.Events[3].Counters = []int{5}
		}, "exceeds"},
		{"invalid relation tolerance", func(s *uarch.Spec) {
			s.Relations[0].RelTol = 0
		}, "non-positive tolerance"},
		{"slot on a programmable event", func(s *uarch.Spec) {
			s.Events[3].Slot = 1 // forgot "fixed": true
		}, "not fixed"},
		{"counters on a fixed event", func(s *uarch.Spec) {
			s.Events[0].Counters = []int{0}
		}, "cannot declare programmable counters"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(&s)
			_, err := s.Catalog()
			if err == nil {
				t.Fatalf("spec with %s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadSpecRejectsUnknownFields: schema typos in a JSON spec surface as
// decode errors, not silently ignored knobs.
func TestLoadSpecRejectsUnknownFields(t *testing.T) {
	_, err := uarch.LoadSpec(strings.NewReader(`{"arch":"x","prog_counterz":4}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestRegistry: the built-ins are registered under their short names, and
// Register rejects duplicates, empty names, and invalid specs.
func TestRegistry(t *testing.T) {
	names := uarch.Names()
	for _, want := range []string{"power9", "skylake"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry names %v missing %q", names, want)
		}
	}
	spec, ok := uarch.Lookup("skylake")
	if !ok {
		t.Fatal("Lookup(skylake) failed")
	}
	if spec.Arch != "x86_64-skylake" {
		t.Errorf("skylake spec arch = %q", spec.Arch)
	}
	if _, ok := uarch.Lookup("no-such-arch"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	if err := uarch.Register("skylake", spec); err == nil {
		t.Error("duplicate Register accepted")
	}
	if err := uarch.Register("", spec); err == nil {
		t.Error("empty-name Register accepted")
	}
	bad := spec
	bad.Relations = append([]uarch.RelationSpec(nil), bad.Relations...)
	bad.Relations[0].RelTol = -1
	if err := uarch.Register("bad-spec", bad); err == nil {
		t.Error("invalid-spec Register accepted")
	}
}

// TestLookupReturnsCopy: mutating a looked-up spec (slices and model maps)
// must not corrupt the registry for later users.
func TestLookupReturnsCopy(t *testing.T) {
	spec, ok := uarch.Lookup("skylake")
	if !ok {
		t.Fatal("Lookup(skylake) failed")
	}
	spec.Events[0].Model["inst"] = 999
	spec.Relations[0].RelTol = -1
	spec.Derived[0].Inputs[0] = "CORRUPTED"

	again, _ := uarch.Lookup("skylake")
	if again.Events[0].Model["inst"] == 999 || again.Relations[0].RelTol == -1 ||
		again.Derived[0].Inputs[0] == "CORRUPTED" {
		t.Fatal("mutating a looked-up spec corrupted the registry")
	}
	if _, err := again.Catalog(); err != nil {
		t.Fatalf("registry spec no longer builds: %v", err)
	}
}

// TestGroundTruthPanicsOnUnknownPrimitive: a typo'd primitive in an event
// model fails loudly at simulation time instead of silently producing a
// zero series (the canonical-order walk would otherwise just skip it).
func TestGroundTruthPanicsOnUnknownPrimitive(t *testing.T) {
	spec, _ := uarch.Lookup("skylake")
	spec.Events[0].Model = map[string]float64{"l1hit": 1} // typo for l1_hit
	cat, err := spec.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("GroundTruth accepted an unknown primitive silently")
		}
		if !strings.Contains(r.(string), "l1hit") {
			t.Errorf("panic %v does not name the unknown primitive", r)
		}
	}()
	measure.GroundTruth(cat, measure.DefaultWorkload(2), rng.New(1))
}

// TestValidateModels: every built-in catalog's events carry complete models
// over known primitives, and the check catches both failure modes.
func TestValidateModels(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		if err := measure.ValidateModels(cat); err != nil {
			t.Errorf("%s: %v", cat.Arch, err)
		}
	}
	spec, _ := uarch.Lookup("skylake")
	spec.Events = append([]uarch.EventSpec(nil), spec.Events...)

	noModel := spec
	noModel.Events[0].Model = nil
	cat, err := noModel.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if err := measure.ValidateModels(cat); err == nil || !strings.Contains(err.Error(), "no ground-truth model") {
		t.Errorf("model-less event not caught: %v", err)
	}

	badPrim := spec
	badPrim.Events[0].Model = map[string]float64{"flux_capacitance": 1}
	cat, err = badPrim.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if err := measure.ValidateModels(cat); err == nil || !strings.Contains(err.Error(), "unknown primitive") {
		t.Errorf("unknown primitive not caught: %v", err)
	}
}

// TestValidateModelsErrorIsDeterministic: with several unknown primitives in
// one model, the error must list all of them in sorted order rather than
// naming whichever one map iteration yields first (found by bayesvet's
// maporder rule).
func TestValidateModelsErrorIsDeterministic(t *testing.T) {
	spec, _ := uarch.Lookup("skylake")
	spec.Events = append([]uarch.EventSpec(nil), spec.Events...)
	spec.Events[0].Model = map[string]float64{
		"zeta_flux": 1, "alpha_flux": 1, "mid_flux": 1,
	}
	cat, err := spec.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	first := measure.ValidateModels(cat)
	if first == nil {
		t.Fatal("unknown primitives not caught")
	}
	if !strings.Contains(first.Error(), `"alpha_flux" "mid_flux" "zeta_flux"`) {
		t.Errorf("error does not list the unknown primitives in sorted order: %v", first)
	}
	for i := 0; i < 10; i++ {
		if err := measure.ValidateModels(cat); err.Error() != first.Error() {
			t.Fatalf("error message is nondeterministic:\n%v\n%v", first, err)
		}
	}
}

// TestRegistryConcurrentAccess is the regression test for the registry's
// locking: it used to embed sync.RWMutex in the (copyable) registry struct,
// which bayesvet's locksafe copylock check now forbids — the lock is a
// named field. Hammering Register/Lookup/Names concurrently keeps the
// discipline honest under -race.
func TestRegistryConcurrentAccess(t *testing.T) {
	base, ok := uarch.Lookup("skylake")
	if !ok {
		t.Fatal("Lookup(skylake) failed")
	}
	var wg sync.WaitGroup
	wg.Add(8)
	for i := 0; i < 8; i++ {
		i := i
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("concurrent-%d", i)
			if err := uarch.Register(name, base); err != nil {
				t.Errorf("Register(%s): %v", name, err)
			}
			for j := 0; j < 50; j++ {
				if _, ok := uarch.Lookup(name); !ok {
					t.Errorf("Lookup(%s) lost a registered spec", name)
					return
				}
				uarch.Names()
			}
		}()
	}
	wg.Wait()
}
