package stats

import (
	"math"
	"testing"
	"testing/quick"

	"bayesperf/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningMatchesBatch(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 500)
	var run Running
	for i := range xs {
		xs[i] = r.Gaussian(3, 2)
		run.Add(xs[i])
	}
	if !almostEq(run.Mean(), Mean(xs), 1e-9) {
		t.Errorf("running mean %v != batch mean %v", run.Mean(), Mean(xs))
	}
	if !almostEq(run.Variance(), Variance(xs), 1e-9) {
		t.Errorf("running var %v != batch var %v", run.Variance(), Variance(xs))
	}
	if run.N() != 500 {
		t.Errorf("N = %d, want 500", run.N())
	}
}

func TestRunningMinMax(t *testing.T) {
	var run Running
	for _, x := range []float64{3, -1, 7, 2} {
		run.Add(x)
	}
	if run.Min() != -1 || run.Max() != 7 {
		t.Errorf("min/max = %v/%v, want -1/7", run.Min(), run.Max())
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	// Property: merging two accumulators equals accumulating the
	// concatenation. This is the invariant the accelerator's parallel EP
	// engines rely on.
	prop := func(seed uint64, nA, nB uint8) bool {
		r := rng.New(seed)
		var a, b, all Running
		for i := 0; i < int(nA)+1; i++ {
			x := r.Gaussian(0, 5)
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(nB)+1; i++ {
			x := r.Gaussian(10, 1)
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			almostEq(a.Mean(), all.Mean(), 1e-8) &&
			almostEq(a.Variance(), all.Variance(), 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(2)
	want := a
	a.Merge(b) // merging empty is a no-op
	if a != want {
		t.Errorf("merge with empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || !almostEq(b.Mean(), 1.5, 1e-12) {
		t.Errorf("merge into empty: %v", b.String())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be modified.
	if xs[0] != 5 {
		t.Error("Quantile modified its input")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) != 0")
	}
}

// TestQuantileNaN is the NaN-hardening regression test: NaN samples used
// to poison sort.Float64s ordering and shift every order statistic.
func TestQuantileNaN(t *testing.T) {
	// NaNs mixed in must not change the result.
	xs := []float64{5, math.NaN(), 1, 3, math.NaN(), 2, 4}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5},
	} {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) with NaNs = %v, want %v", c.q, got, c.want)
		}
	}
	// All-NaN input signals corruption instead of inventing a 0.
	if got := Quantile([]float64{math.NaN(), math.NaN()}, 0.5); !math.IsNaN(got) {
		t.Errorf("Quantile(all-NaN) = %v, want NaN", got)
	}
	// Empty input keeps its documented 0.
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) != 0")
	}
}

func TestMedianInterpolates(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 4}); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Median = %v, want 2.5", got)
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	for _, q := range []float64{0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999} {
		x := NormalQuantile(q)
		back := NormalCDF(x, 0, 1)
		if !almostEq(back, q, 1e-8) {
			t.Errorf("CDF(Quantile(%v)) = %v", q, back)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	if got := NormalQuantile(0.975); !almostEq(got, 1.959963985, 1e-6) {
		t.Errorf("z(0.975) = %v, want 1.96", got)
	}
	if got := NormalQuantile(0.5); !almostEq(got, 0, 1e-9) {
		t.Errorf("z(0.5) = %v, want 0", got)
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	var sum float64
	const dx = 0.001
	for x := -10.0; x < 10; x += dx {
		sum += NormalPDF(x, 0, 1) * dx
	}
	if !almostEq(sum, 1, 1e-3) {
		t.Errorf("∫pdf = %v, want 1", sum)
	}
}

func TestNormalLogPDFConsistent(t *testing.T) {
	for _, x := range []float64{-3, -0.5, 0, 1.7, 4} {
		if !almostEq(math.Exp(NormalLogPDF(x, 1, 2)), NormalPDF(x, 1, 2), 1e-12) {
			t.Errorf("logpdf inconsistent at %v", x)
		}
	}
}

func TestNormalLogPDFDegenerateStd(t *testing.T) {
	for _, std := range []float64{0, -1} {
		if got := NormalLogPDF(2, 2, std); !math.IsInf(got, 1) {
			t.Errorf("NormalLogPDF(x==mean, std=%v) = %v, want +Inf", std, got)
		}
		if got := NormalLogPDF(3, 2, std); !math.IsInf(got, -1) {
			t.Errorf("NormalLogPDF(x!=mean, std=%v) = %v, want -Inf", std, got)
		}
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	prop := func(xRaw int16, nuRaw uint8) bool {
		x := float64(xRaw) / 1000
		nu := float64(nuRaw%30) + 1
		return almostEq(StudentTCDF(x, nu)+StudentTCDF(-x, nu), 1, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStudentTApproachesNormal(t *testing.T) {
	// For large ν the t CDF approaches the Gaussian CDF.
	for _, x := range []float64{-2, -1, 0.5, 1.5} {
		tv := StudentTCDF(x, 1000)
		nv := NormalCDF(x, 0, 1)
		if !almostEq(tv, nv, 2e-3) {
			t.Errorf("t(1000) CDF(%v) = %v, normal = %v", x, tv, nv)
		}
	}
}

func TestStudentTQuantileKnown(t *testing.T) {
	// t(ν=4) 97.5% quantile is 2.776.
	if got := StudentTQuantile(0.975, 4); !almostEq(got, 2.776, 2e-3) {
		t.Errorf("t4 quantile(0.975) = %v, want 2.776", got)
	}
	// Heavier tails than the Gaussian for small ν.
	if StudentTQuantile(0.975, 3) <= NormalQuantile(0.975) {
		t.Error("t(3) should have heavier tails than the Gaussian")
	}
}

func TestStudentTPDFIntegratesToOne(t *testing.T) {
	var sum float64
	const dx = 0.01
	for x := -60.0; x < 60; x += dx {
		sum += StudentTPDF(x, 3) * dx
	}
	if !almostEq(sum, 1, 2e-3) {
		t.Errorf("∫t3 pdf = %v, want 1", sum)
	}
}

func TestStudentTStdFactor(t *testing.T) {
	if !math.IsInf(StudentTStdFactor(2), 1) {
		t.Error("ν=2 should have infinite std")
	}
	if got := StudentTStdFactor(10); !almostEq(got, math.Sqrt(10.0/8), 1e-12) {
		t.Errorf("std factor(10) = %v", got)
	}
}

func TestGumbelQuantileCDFRoundTrip(t *testing.T) {
	for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
		x := GumbelQuantile(q, 2, 3)
		if got := GumbelCDF(x, 2, 3); !almostEq(got, q, 1e-9) {
			t.Errorf("Gumbel CDF(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestGumbelFitMoments(t *testing.T) {
	// Sample from a known Gumbel via inverse CDF and re-fit.
	r := rng.New(99)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = GumbelQuantile(r.Float64(), 10, 2)
	}
	mu, beta := GumbelFitMoments(xs)
	if !almostEq(mu, 10, 0.1) || !almostEq(beta, 2, 0.1) {
		t.Errorf("fit = (%v, %v), want (10, 2)", mu, beta)
	}
}

func TestGumbelFilterMax(t *testing.T) {
	// A well-behaved Gaussian sample with two injected spikes: the filter
	// must drop the spikes and only the spikes.
	r := rng.New(4)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Gaussian(1000, 30)
	}
	xs[17] *= 8
	xs[140] *= 6
	kept, rejected := GumbelFilterMax(xs, 0.995)
	if rejected != 2 {
		t.Fatalf("rejected %d samples, want 2", rejected)
	}
	if len(kept) != len(xs)-2 {
		t.Fatalf("kept %d of %d", len(kept), len(xs))
	}
	for _, x := range kept {
		if x > 5000 {
			t.Errorf("spike %v survived the filter", x)
		}
	}
	// Order is preserved.
	if kept[0] != xs[0] || kept[16] != xs[16] || kept[17] != xs[18] {
		t.Error("filter reordered the surviving samples")
	}
}

func TestGumbelFilterMaxPassThrough(t *testing.T) {
	clean := []float64{10, 11, 9, 10.5, 9.5, 10.2, 9.8, 10.1}
	kept, rejected := GumbelFilterMax(clean, 0.995)
	if rejected != 0 || &kept[0] != &clean[0] {
		t.Errorf("clean sample was filtered (rejected=%d)", rejected)
	}
	// Tiny samples and degenerate quantiles pass through untouched.
	tiny := []float64{1, 100, 1}
	if kept, rejected = GumbelFilterMax(tiny, 0.995); rejected != 0 || len(kept) != 3 {
		t.Error("n<4 sample was filtered")
	}
	if _, rejected = GumbelFilterMax(clean, 0); rejected != 0 {
		t.Error("q=0 filtered")
	}
	constant := []float64{5, 5, 5, 5, 5, 5}
	if _, rejected = GumbelFilterMax(constant, 0.9); rejected != 0 {
		t.Error("constant sample was filtered")
	}
}

// TestGumbelFilterMaxNaN is the NaN-hardening regression test: a NaN
// reading used to poison the moment fit and make every x > thr comparison
// false, silently keeping the whole corrupted sample.
func TestGumbelFilterMaxNaN(t *testing.T) {
	r := rng.New(4)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Gaussian(1000, 30)
	}
	xs[17] *= 8 // spike the filter must still catch
	xs[50] = math.NaN()
	xs[51] = math.NaN()
	kept, rejected := GumbelFilterMax(xs, 0.995)
	if rejected != 3 {
		t.Fatalf("rejected %d samples, want 3 (2 NaN + 1 spike)", rejected)
	}
	if len(kept) != len(xs)-3 {
		t.Fatalf("kept %d of %d", len(kept), len(xs))
	}
	for _, x := range kept {
		if math.IsNaN(x) || x > 5000 {
			t.Errorf("corrupted reading %v survived the filter", x)
		}
	}
	// NaNs alone are rejected even when the remainder is too small to fit.
	kept, rejected = GumbelFilterMax([]float64{1, math.NaN(), 2}, 0.995)
	if rejected != 1 || len(kept) != 2 {
		t.Errorf("tiny sample: kept %v rejected %d, want 2 kept / 1 rejected", kept, rejected)
	}
	// An all-NaN sample rejects everything.
	kept, rejected = GumbelFilterMax([]float64{math.NaN(), math.NaN()}, 0.995)
	if rejected != 2 || len(kept) != 0 {
		t.Errorf("all-NaN sample: kept %v rejected %d", kept, rejected)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("I_0 or I_1 wrong")
	}
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.42, 0.9} {
		if got := RegIncBeta(1, 1, x); !almostEq(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	if got := RegIncBeta(2.5, 4, 0.3) + RegIncBeta(4, 2.5, 0.7); !almostEq(got, 1, 1e-10) {
		t.Errorf("symmetry violated: %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100, 1); !almostEq(got, 0.1, 1e-12) {
		t.Errorf("RelErr = %v, want 0.1", got)
	}
	// Floor prevents blow-up at zero.
	if got := RelErr(5, 0, 10); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("RelErr with floor = %v, want 0.5", got)
	}
}
