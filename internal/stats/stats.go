// Package stats provides the statistical primitives shared across the
// BayesPerf reproduction: running moments, robust summaries, and the
// distribution functions (Gaussian, Student-t, Gumbel) that appear in the
// paper's observation model (§4.2) and in the CounterMiner baseline's
// Gumbel outlier test (§6).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming mean and variance using Welford's algorithm.
// The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the unbiased sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 if empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 if empty).
func (r *Running) Max() float64 { return r.max }

// Merge combines another accumulator into r (parallel-reduction form of
// Welford's update; used by the accelerator model's parallel EP engines).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	r.mean += delta * float64(o.n) / float64(n)
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// String summarizes the accumulator for logging.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		r.n, r.Mean(), r.Std(), r.min, r.max)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for n < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies xs; the input is not
// modified. NaN samples are dropped up front — sort.Float64s leaves them
// in an arbitrary position, which would silently shift every order
// statistic. Quantile of an empty slice is 0; of an all-NaN slice, NaN.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			s = append(s, x)
		}
	}
	if len(s) == 0 {
		return math.NaN()
	}
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// --- Gaussian ---

// NormalPDF returns the density of N(mean, std²) at x.
func NormalPDF(x, mean, std float64) float64 {
	if std <= 0 {
		if x == mean { //bayesvet:bitwise degenerate zero-variance point mass: density is exactly at the mean or nowhere
			return math.Inf(1)
		}
		return 0
	}
	z := (x - mean) / std
	return math.Exp(-0.5*z*z) / (std * math.Sqrt(2*math.Pi))
}

// NormalLogPDF returns the log density of N(mean, std²) at x. Degenerate
// std <= 0 mirrors NormalPDF: log of a point mass at mean (+Inf at x ==
// mean, -Inf elsewhere) instead of NaN/±Inf garbage from the division.
func NormalLogPDF(x, mean, std float64) float64 {
	if std <= 0 {
		if x == mean { //bayesvet:bitwise degenerate zero-variance point mass: density is exactly at the mean or nowhere
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	z := (x - mean) / std
	return -0.5*z*z - math.Log(std) - 0.5*math.Log(2*math.Pi)
}

// NormalCDF returns P(X ≤ x) for X ~ N(mean, std²).
func NormalCDF(x, mean, std float64) float64 {
	return 0.5 * math.Erfc(-(x-mean)/(std*math.Sqrt2))
}

// NormalQuantile returns the q-quantile of the standard Gaussian using the
// Acklam rational approximation (|relative error| < 1.15e-9), refined with
// one Halley step against math.Erfc.
func NormalQuantile(q float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case q < pLow:
		u := math.Sqrt(-2 * math.Log(q))
		x = (((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	case q <= 1-pLow:
		u := q - 0.5
		t := u * u
		x = (((((a[0]*t+a[1])*t+a[2])*t+a[3])*t+a[4])*t + a[5]) * u /
			(((((b[0]*t+b[1])*t+b[2])*t+b[3])*t+b[4])*t + 1)
	default:
		u := math.Sqrt(-2 * math.Log(1-q))
		x = -(((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	}
	// One Halley refinement step.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - q
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// --- Student-t ---
//
// The paper (§4.2) models the marginal of an event's unknown true mean,
// after marginalizing the unknown variance, as a scaled/shifted Student-t:
// v_c ~ μ + S/√N · Student(ν = N−1), with the confidence level set to 95%.

// StudentTPDF returns the density of the standard Student-t with nu degrees
// of freedom at x.
func StudentTPDF(x, nu float64) float64 {
	if nu <= 0 {
		return 0
	}
	lg1, _ := math.Lgamma((nu + 1) / 2)
	lg2, _ := math.Lgamma(nu / 2)
	logc := lg1 - lg2 - 0.5*math.Log(nu*math.Pi)
	return math.Exp(logc - (nu+1)/2*math.Log(1+x*x/nu))
}

// StudentTCDF returns P(T ≤ x) for a standard Student-t with nu degrees of
// freedom, via the regularized incomplete beta function.
func StudentTCDF(x, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	if x == 0 { //bayesvet:bitwise exact symmetry point of the t CDF
		return 0.5
	}
	ib := RegIncBeta(nu/2, 0.5, nu/(nu+x*x))
	if x > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// StudentTQuantile returns the q-quantile of a standard Student-t with nu
// degrees of freedom, by bisection on the CDF (the quantile is only needed
// at setup time, so simplicity beats speed here).
func StudentTQuantile(q, nu float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	lo, hi := -1e6, 1e6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if StudentTCDF(mid, nu) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// StudentTStdFactor returns the standard deviation of a standard Student-t
// with nu degrees of freedom (√(ν/(ν−2)) for ν>2, +Inf otherwise). BayesPerf
// uses it to convert the t-marginal of an event mean into the Gaussian
// observation variance consumed by EP.
func StudentTStdFactor(nu float64) float64 {
	if nu <= 2 {
		return math.Inf(1)
	}
	return math.Sqrt(nu / (nu - 2))
}

// --- Gumbel ---
//
// CounterMiner (Lv et al., MICRO'18) detects outlier HPC samples with a
// Gumbel test: the maximum of n i.i.d. samples follows a Gumbel law, so a
// sample exceeding a high Gumbel quantile is flagged as an outlier.

// GumbelCDF returns the CDF of the Gumbel(mu, beta) distribution at x.
func GumbelCDF(x, mu, beta float64) float64 {
	return math.Exp(-math.Exp(-(x - mu) / beta))
}

// GumbelQuantile returns the q-quantile of Gumbel(mu, beta).
func GumbelQuantile(q, mu, beta float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return mu - beta*math.Log(-math.Log(q))
}

// GumbelFitFromMoments converts a sample mean and std into Gumbel
// location/scale by the method of moments: beta = s·√6/π,
// mu = mean − γ·beta (γ is Euler–Mascheroni). Callers that maintain
// running moments (e.g. the stream layer's window rings) can fit in O(1).
func GumbelFitFromMoments(mean, std float64) (mu, beta float64) {
	const eulerGamma = 0.5772156649015329
	beta = std * math.Sqrt(6) / math.Pi
	mu = mean - eulerGamma*beta
	return mu, beta
}

// GumbelFitMoments fits Gumbel location/scale from a sample via the method
// of moments.
func GumbelFitMoments(xs []float64) (mu, beta float64) {
	return GumbelFitFromMoments(Mean(xs), Std(xs))
}

// GumbelFilterMax applies CounterMiner's high-side outlier test to a sample
// of per-interval counter readings: fit Gumbel(mu, beta) by moments, then
// reject every reading above the q-quantile of the fitted law (a reading
// that extreme among n i.i.d. samples indicates OS interference or counter
// corruption rather than workload behavior). NaN readings are the most
// corrupted of all and are rejected up front — left in, one NaN poisons
// the moment fit and makes every x > thr comparison false, silently
// keeping the whole sample. It returns the surviving readings in their
// original order and the number rejected; when nothing is rejected, the
// input slice itself is returned. Samples too small to fit (n < 4) and
// degenerate q are passed through untouched (minus any NaNs).
func GumbelFilterMax(xs []float64, q float64) (kept []float64, rejected int) {
	clean := xs
	nan := 0
	for _, x := range xs {
		if math.IsNaN(x) {
			nan++
		}
	}
	if nan > 0 {
		clean = make([]float64, 0, len(xs)-nan)
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
	}
	if len(clean) < 4 || q <= 0 || q >= 1 {
		return clean, nan
	}
	mu, beta := GumbelFitMoments(clean)
	if beta <= 0 { // constant sample: nothing can be an outlier
		return clean, nan
	}
	thr := GumbelQuantile(q, mu, beta)
	for _, x := range clean {
		if x > thr {
			rejected++
		}
	}
	if rejected == 0 || rejected == len(clean) {
		return clean, nan
	}
	kept = make([]float64, 0, len(clean)-rejected)
	for _, x := range clean {
		if x <= thr {
			kept = append(kept, x)
		}
	}
	return kept, rejected + nan
}

// --- Regularized incomplete beta (for the t CDF) ---

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// RelErr returns |got−want| / max(|want|, floor): the relative error metric
// used throughout the evaluation, with a floor to avoid division blow-ups on
// near-zero counts.
func RelErr(got, want, floor float64) float64 {
	den := math.Abs(want)
	if den < floor {
		den = floor
	}
	return math.Abs(got-want) / den
}
