package timeseries

import (
	"math"
	"testing"
	"testing/quick"

	"bayesperf/internal/rng"
)

func TestSeriesBasics(t *testing.T) {
	s := Series{1, 2, 3, 4}
	if s.Sum() != 10 || s.Mean() != 2.5 {
		t.Errorf("sum/mean = %v/%v", s.Sum(), s.Mean())
	}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Clone aliased the backing array")
	}
	s.Scale(2)
	if s[3] != 8 {
		t.Errorf("Scale: %v", s)
	}
	if (Series{}).Mean() != 0 {
		t.Error("empty mean must be 0")
	}
}

func TestDownsample(t *testing.T) {
	s := Series{1, 1, 2, 2, 3}
	got := s.Downsample(2)
	want := Series{2, 4, 3}
	if len(got) != len(want) {
		t.Fatalf("downsample len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("downsample[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// width 1 is a copy
	d1 := s.Downsample(1)
	d1[0] = 42
	if s[0] == 42 {
		t.Error("Downsample(1) aliased input")
	}
}

func TestMap(t *testing.T) {
	a := Series{10, 20, 30, 40}
	b := Series{2, 4, 5} // shorter: result is clipped to the common length
	ratio := Map(func(in []float64) float64 { return in[0] / in[1] }, a, b)
	want := Series{5, 5, 6}
	if len(ratio) != len(want) {
		t.Fatalf("Map length %d, want %d", len(ratio), len(want))
	}
	for i := range want {
		if ratio[i] != want[i] {
			t.Errorf("Map[%d] = %v, want %v", i, ratio[i], want[i])
		}
	}
	// Single series and empty inputs.
	double := Map(func(in []float64) float64 { return 2 * in[0] }, b)
	if len(double) != 3 || double[2] != 10 {
		t.Errorf("Map over one series = %v", double)
	}
	if got := Map(func([]float64) float64 { return 1 }); got != nil {
		t.Errorf("Map with no series = %v, want nil", got)
	}
}

func TestDTWIdenticalIsZero(t *testing.T) {
	s := Series{1, 5, 2, 8, 3}
	cost, path, err := DTW(s, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Errorf("self-DTW cost = %v, want 0", cost)
	}
	// Diagonal path.
	if len(path) != len(s) {
		t.Errorf("self path length = %d", len(path))
	}
	for _, p := range path {
		if p.I != p.J {
			t.Errorf("self path should be diagonal, got %v", p)
		}
	}
}

func TestDTWShiftInvariance(t *testing.T) {
	// A time-shifted copy of a spiky series should align with near-zero
	// cost — this is exactly why the paper uses DTW rather than pointwise
	// comparison of asynchronous traces.
	base := Series{0, 0, 10, 0, 0, 0, 7, 0, 0}
	shifted := Series{0, 0, 0, 10, 0, 0, 0, 7, 0}
	costDTW, _, err := DTW(base, shifted, 0)
	if err != nil {
		t.Fatal(err)
	}
	pointwise := MAPE(base, shifted, 1) // large
	if costDTW != 0 {
		t.Errorf("DTW cost of shifted spikes = %v, want 0", costDTW)
	}
	if pointwise == 0 {
		t.Error("pointwise metric should see the shift (sanity)")
	}
}

func TestDTWEmpty(t *testing.T) {
	if _, _, err := DTW(nil, Series{1}, 0); err != ErrDTWEmpty {
		t.Errorf("err = %v, want ErrDTWEmpty", err)
	}
}

func TestDTWPathEndpoints(t *testing.T) {
	prop := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 1
		m := int(mRaw%20) + 1
		r := rng.New(seed)
		a := make(Series, n)
		b := make(Series, m)
		for i := range a {
			a[i] = r.Float64() * 10
		}
		for i := range b {
			b[i] = r.Float64() * 10
		}
		_, path, err := DTW(a, b, 0)
		if err != nil || len(path) == 0 {
			return false
		}
		first, last := path[0], path[len(path)-1]
		if first.I != 0 || first.J != 0 || last.I != n-1 || last.J != m-1 {
			return false
		}
		// Monotone, unit steps.
		for i := 1; i < len(path); i++ {
			di := path[i].I - path[i-1].I
			dj := path[i].J - path[i-1].J
			if di < 0 || dj < 0 || di > 1 || dj > 1 || (di == 0 && dj == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDTWBandMatchesUnconstrainedWhenWide(t *testing.T) {
	r := rng.New(5)
	a := make(Series, 40)
	b := make(Series, 40)
	for i := range a {
		a[i] = r.Float64()
		b[i] = r.Float64()
	}
	cFull, _, _ := DTW(a, b, 0)
	cBand, _, _ := DTW(a, b, 40)
	if math.Abs(cFull-cBand) > 1e-12 {
		t.Errorf("wide band cost %v != unconstrained %v", cBand, cFull)
	}
	// A narrow band can only raise the cost.
	cNarrow, _, err := DTW(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cNarrow < cFull-1e-12 {
		t.Errorf("narrow band cost %v below optimum %v", cNarrow, cFull)
	}
}

func TestDTWUnequalLengths(t *testing.T) {
	a := Series{1, 2, 3}
	b := Series{1, 1, 2, 2, 3, 3}
	if _, _, err := DTW(a, b, 1); err != nil {
		t.Fatalf("banded DTW on unequal lengths: %v", err)
	}
}

func TestAlignedRelError(t *testing.T) {
	ref := Series{100, 100, 100, 100}
	target := Series{110, 110, 110, 110} // uniform +10%
	e, err := AlignedRelError(ref, target, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-0.10) > 1e-9 {
		t.Errorf("error = %v, want 0.10", e)
	}
	// Identical series → zero error.
	e, _ = AlignedRelError(ref, ref, 0, 1)
	if e != 0 {
		t.Errorf("self error = %v", e)
	}
}

func TestAlignedRelErrorFloor(t *testing.T) {
	ref := Series{0, 0}
	target := Series{5, 5}
	e, err := AlignedRelError(ref, target, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-0.5) > 1e-9 {
		t.Errorf("floored error = %v, want 0.5", e)
	}
}

func TestNormalizedError(t *testing.T) {
	if got := NormalizedError(0.40, 0.05); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("normalized = %v", got)
	}
	if NormalizedError(0.03, 0.05) != 0 {
		t.Error("normalized error must floor at 0")
	}
}

func TestMAPE(t *testing.T) {
	ref := Series{10, 20}
	target := Series{11, 18}
	want := (0.1 + 0.1) / 2
	if got := MAPE(ref, target, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("MAPE = %v, want %v", got, want)
	}
	if MAPE(nil, nil, 1) != 0 {
		t.Error("empty MAPE must be 0")
	}
}

func TestMAPENonNegativeProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		a := make(Series, 16)
		b := make(Series, 16)
		for i := range a {
			a[i] = r.Gaussian(0, 100)
			b[i] = r.Gaussian(0, 100)
		}
		return MAPE(a, b, 1) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDTW256(b *testing.B) {
	r := rng.New(1)
	a := make(Series, 256)
	c := make(Series, 256)
	for i := range a {
		a[i] = r.Float64()
		c[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = DTW(a, c, 16)
	}
}
