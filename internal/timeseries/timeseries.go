// Package timeseries implements the trace representation and the dynamic
// time warping (DTW) error metric the paper uses to quantify HPC measurement
// error (§2): "HPC error [is the] magnitude of difference between
// corresponding HPC measurements made in two runs of a workload, one in
// polling and other in sampling mode. The correspondence between the two HPC
// traces is established by dynamic time warping."
package timeseries

import (
	"errors"
	"math"
)

// Series is a uniformly sampled scalar trace (one value per sampling
// interval) for one event.
type Series []float64

// Clone returns a copy of the series.
func (s Series) Clone() Series { return append(Series(nil), s...) }

// Sum returns the total of the series.
func (s Series) Sum() float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

// Mean returns the average value (0 for an empty series).
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s))
}

// Scale multiplies every point by k, in place, returning s.
func (s Series) Scale(k float64) Series {
	for i := range s {
		s[i] *= k
	}
	return s
}

// Downsample aggregates the series into buckets of the given width by
// summation (counts accumulate). The last partial bucket is kept.
func (s Series) Downsample(width int) Series {
	if width <= 1 {
		return s.Clone()
	}
	out := make(Series, 0, (len(s)+width-1)/width)
	for i := 0; i < len(s); i += width {
		end := i + width
		if end > len(s) {
			end = len(s)
		}
		var sum float64
		for _, v := range s[i:end] {
			sum += v
		}
		out = append(out, sum)
	}
	return out
}

// Map evaluates fn pointwise across the input series — the shape of a
// derived-event formula applied to per-interval event rates — producing a
// series of the common (minimum) length. The input slice passed to fn is
// reused between calls; fn must not retain it. Map with no series returns
// nil.
func Map(fn func(in []float64) float64, series ...Series) Series {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0])
	for _, s := range series[1:] {
		if len(s) < n {
			n = len(s)
		}
	}
	out := make(Series, n)
	in := make([]float64, len(series))
	for t := 0; t < n; t++ {
		for i, s := range series {
			in[i] = s[t]
		}
		out[t] = fn(in)
	}
	return out
}

// ErrDTWEmpty is returned when either input series is empty.
var ErrDTWEmpty = errors.New("timeseries: DTW on empty series")

// DTWPath is one aligned index pair produced by DTW.
type DTWPath struct{ I, J int }

// DTW computes the dynamic-time-warping alignment between a and b under a
// Sakoe–Chiba band of the given half-width (window <= 0 means unconstrained)
// with absolute-difference local cost. It returns the total alignment cost
// and the warping path (monotone in both indices, from (0,0) to (n−1,m−1)).
func DTW(a, b Series, window int) (cost float64, path []DTWPath, err error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, nil, ErrDTWEmpty
	}
	if window <= 0 {
		window = n + m // effectively unconstrained
	}
	// Ensure the band is wide enough to reach the corner when n != m.
	diff := n - m
	if diff < 0 {
		diff = -diff
	}
	if window < diff+1 {
		window = diff + 1
	}

	inf := math.Inf(1)
	d := make([][]float64, n+1)
	for i := range d {
		d[i] = make([]float64, m+1)
		for j := range d[i] {
			d[i][j] = inf
		}
	}
	d[0][0] = 0
	for i := 1; i <= n; i++ {
		jLo := i - window
		if jLo < 1 {
			jLo = 1
		}
		jHi := i + window
		if jHi > m {
			jHi = m
		}
		for j := jLo; j <= jHi; j++ {
			c := math.Abs(a[i-1] - b[j-1])
			best := d[i-1][j-1]
			if d[i-1][j] < best {
				best = d[i-1][j]
			}
			if d[i][j-1] < best {
				best = d[i][j-1]
			}
			d[i][j] = c + best
		}
	}
	if math.IsInf(d[n][m], 1) {
		return 0, nil, errors.New("timeseries: DTW band excluded the corner")
	}

	// Backtrack the optimal path.
	i, j := n, m
	for i > 0 && j > 0 {
		path = append(path, DTWPath{i - 1, j - 1})
		diag, up, left := d[i-1][j-1], d[i-1][j], d[i][j-1]
		switch {
		case diag <= up && diag <= left:
			i, j = i-1, j-1
		case up <= left:
			i--
		default:
			j--
		}
	}
	// Reverse into forward order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return d[n][m], path, nil
}

// AlignedRelError computes the paper's error metric: DTW-align the reference
// (polling) trace with the target (sampled/corrected) trace, then average the
// relative difference |target−ref|/max(|ref|, floor) over the warping path.
// The result is a fraction (0.40 ≡ 40% error).
func AlignedRelError(ref, target Series, window int, floor float64) (float64, error) {
	_, path, err := DTW(ref, target, window)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, p := range path {
		den := math.Abs(ref[p.I])
		if den < floor {
			den = floor
		}
		sum += math.Abs(target[p.J]-ref[p.I]) / den
	}
	return sum / float64(len(path)), nil
}

// NormalizedError reproduces the normalization in §6.2: the raw
// polling-vs-target error is divided down by the polling-vs-polling
// run-pair baseline ("that way, we could correct for any OS-based
// nondeterminism in the result"). The baseline error is subtracted in
// quadrature-free form: normalized = max(raw − base, 0) is too aggressive
// and raw/(1+base) too weak, so like the paper we report the excess error
// over the baseline, floored at a small epsilon.
func NormalizedError(raw, base float64) float64 {
	e := raw - base
	if e < 0 {
		return 0
	}
	return e
}

// MAPE returns the index-aligned mean absolute percentage error between two
// equal-length series. It is the cheap metric used inside tight loops (the
// full DTW metric is used for reported results).
func MAPE(ref, target Series, floor float64) float64 {
	n := len(ref)
	if len(target) < n {
		n = len(target)
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		den := math.Abs(ref[i])
		if den < floor {
			den = floor
		}
		sum += math.Abs(target[i]-ref[i]) / den
	}
	return sum / float64(n)
}
