package timeseries

import (
	"testing"

	"bayesperf/internal/rng"
)

func randomSeries(n int, seed uint64) Series {
	r := rng.New(seed)
	s := make(Series, n)
	for i := range s {
		s[i] = r.Gaussian(1000, 100)
	}
	return s
}

func benchDTW(b *testing.B, n, window int) {
	a := randomSeries(n, 1)
	c := randomSeries(n, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DTW(a, c, window); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTW256Unconstrained(b *testing.B)  { benchDTW(b, 256, 0) }
func BenchmarkDTW1024Unconstrained(b *testing.B) { benchDTW(b, 1024, 0) }
func BenchmarkDTW1024Band32(b *testing.B)        { benchDTW(b, 1024, 32) }

func BenchmarkAlignedRelError512(b *testing.B) {
	ref := randomSeries(512, 3)
	target := randomSeries(512, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AlignedRelError(ref, target, 64, 1); err != nil {
			b.Fatal(err)
		}
	}
}
