// Package stream implements BayesPerf's online deployment mode (§5 of the
// paper): instead of correcting whole-run totals after the fact, it
// consumes a live interval stream of multiplexed counter samples and emits
// a continuous per-interval posterior series (mean ± std per event).
//
// The engine slides a Window accumulator over the stream; every hop it
// snapshots the window's observations (scaled totals plus incrementally
// re-derived Student-t stds) and fans the snapshot out to a pool of
// workers, each owning one reusable graph.Graph EP engine. Posteriors come
// back asynchronously, are re-ordered, and overlapping windows are stitched
// into one corrected trace by precision weighting. The posterior
// uncertainty also closes the measurement loop: a
// measure.AdaptiveScheduler fed the epoch-averaged posterior
// (EpochPosterior) re-prioritizes the multiplexing groups each epoch,
// replacing pure round-robin.
package stream

import (
	"math"
	"runtime"
	"sync"

	"bayesperf/internal/graph"
	"bayesperf/internal/measure"
	"bayesperf/internal/obs"
	"bayesperf/internal/rng"
	"bayesperf/internal/stats"
	"bayesperf/internal/timeseries"
	"bayesperf/internal/uarch"
)

// Config controls the streaming engine.
type Config struct {
	// Window is the number of intervals per inference window.
	Window int
	// Hop is the stride between consecutive window starts; hop < window
	// makes the windows overlap and the stitched trace smoother.
	Hop int
	// Workers is the number of parallel EP engines (0 = all cores, capped
	// at 8 — windows are small, so more engines stop paying off).
	Workers int
	// Batch is the number of windows fused into one compiled-plan Execute
	// call per worker (0 = default 8). Each batch lane runs the identical
	// per-window arithmetic, so the stitched output is bit-identical for
	// every batch size; larger batches only amortize the message-schedule
	// walk across more windows.
	Batch int
	// Covariance switches the derived-event posterior std series from the
	// diagonal delta method to clique-covariance-aware propagation: each
	// window's per-relation posterior correlations are stitched alongside
	// the marginals and enter the delta method's cross terms.
	Covariance bool
	// FastMath switches every worker's batch to the fused fast-math message
	// schedule (graph.Batch.FastMath): posteriors agree with the exact
	// kernel to a tight relative tolerance instead of bit for bit, and the
	// output remains deterministic across worker counts and batch sizes.
	// Composes with Covariance.
	FastMath bool
	// MaxIter and Tol are passed to graph.Infer per window.
	MaxIter int
	Tol     float64
	// Mux carries the observation model shared with the measurement layer:
	// noise level, std floors, and the Gumbel rejection switches.
	Mux measure.MuxConfig
	// SizeHint presizes the per-interval accumulators when the stream
	// length is known up front (0 = unknown, grow on demand).
	SizeHint int
	// Metrics, when non-nil, receives the engine's instrumentation: stage
	// latency histograms, window/batch counters, ingestion-quality counters,
	// and the graph layer's per-Execute outcomes (see internal/obs). Nil
	// keeps every recording site a free no-op; the stitched output is
	// bitwise identical either way.
	Metrics *obs.Registry
}

// DefaultConfig returns the evaluation defaults: 24-interval windows
// sliding by 4. The window length balances two pressures — much larger
// windows smear phase boundaries and lose per-interval accuracy faster
// than their extra samples pay back, while shorter ones pin every group's
// per-window sample count to the Student-t finite-variance floor and
// leave the adaptive scheduler no slack to reallocate.
func DefaultConfig() Config {
	return Config{
		Window:  24,
		Hop:     4,
		Batch:   8,
		MaxIter: 500,
		Tol:     1e-9,
		Mux:     measure.DefaultMuxConfig(),
	}
}

// WithDefaults fills zero fields and clamps inconsistent ones; NewEngine
// applies it automatically, callers only need it to display the resolved
// configuration.
func (c Config) WithDefaults() Config {
	if c.Window <= 0 {
		c.Window = 24
	}
	if c.Hop <= 0 {
		c.Hop = 4
	}
	if c.Hop > c.Window {
		c.Hop = c.Window // a hop past the window would leave coverage gaps
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 500
	}
	if c.Tol <= 0 {
		c.Tol = 1e-9
	}
	return c
}

// WindowPosterior is one window's inference output: posterior mean and std
// of every event's window total, plus the echoed observation model so the
// stitcher can weight raw and corrected series identically.
type WindowPosterior struct {
	Index      int
	Start, End int
	Mean, Std  []float64
	ObsStd     []float64
	Disp       []float64
	Observed   []bool
	// Rho is the window's posterior correlation per tracked event pair
	// (the engine's covPairs order): clique correlations of derived-input
	// pairs that share an invariant. Nil unless Config.Covariance.
	Rho       []float64
	Iters     int
	Converged bool
}

// Result is the outcome of one streamed run.
type Result struct {
	Intervals int
	Windows   int
	// Corrected and CorrectedStd are the stitched per-interval posterior
	// series (rates per interval), indexed by EventID.
	Corrected    []timeseries.Series
	CorrectedStd []timeseries.Series
	// WindowedRaw is the same sliding-window estimate without inference:
	// what window smoothing alone buys.
	WindowedRaw []timeseries.Series
	// NaiveRaw is the live multiplexed baseline: per interval, each
	// event's most recent counted sample (sample-and-hold extrapolation).
	NaiveRaw []timeseries.Series
	// Derived-event posterior series (§2 "Errors in Derived Events"),
	// indexed like the catalog's Derived slice. DerivedCorrected evaluates
	// each formula at the stitched posterior mean per interval;
	// DerivedCorrectedStd is the first-order delta-method std propagated
	// from CorrectedStd through the formula's gradient at that point.
	// DerivedWindowedRaw and DerivedNaive push the two baselines through
	// the same formulas, so the three estimators stay comparable.
	DerivedCorrected    []timeseries.Series
	DerivedCorrectedStd []timeseries.Series
	DerivedWindowedRaw  []timeseries.Series
	DerivedNaive        []timeseries.Series
	// PostRelStd pools each window's posterior relative std over all
	// events — the uncertainty metric the adaptive scheduler minimizes.
	PostRelStd stats.Running
	// InferIters pools per-window message-passing sweep counts, reduced
	// across the worker pool via stats.Running.Merge.
	InferIters stats.Running
	// AllConverged reports whether every window's inference converged.
	AllConverged bool
	// Unconverged counts the windows whose inference exhausted MaxIter
	// without meeting Tol (AllConverged == (Unconverged == 0)).
	Unconverged int
	// TotalSweeps is the message-passing sweep total across all windows.
	TotalSweeps int
	// Reprioritizations counts adaptive slot-plan rebuilds (0 under
	// round-robin).
	Reprioritizations int
}

// Engine is the streaming correction pipeline. Feed it intervals with
// Ingest, optionally Flush at epoch boundaries to read back the
// epoch-averaged posterior, then Finish to drain the pool and collect the
// stitched trace.
// An Engine is single-producer: Ingest/Flush/Finish must come from one
// goroutine (the worker pool parallelism is internal).
type Engine struct {
	cat  *uarch.Catalog
	cfg  Config
	plan *graph.Plan // compiled once, shared read-only by every worker

	win         *Window
	ingested    int
	lastEmitEnd int
	nextIdx     int
	pending     int

	// Snapshotted windows accumulate here until a full batch (cfg.Batch)
	// is ready to dispatch; Flush and Finish dispatch partial batches.
	jobBuf  []windowJob
	jobs    chan []windowJob
	results chan WindowPosterior
	wg      sync.WaitGroup

	// Tracked posterior-correlation pairs (Config.Covariance): the derived
	// formulas' input pairs that share a relation clique. derivedPairs maps
	// each derived metric onto its pairs' indices.
	covPairs     []covPair
	derivedPairs [][]pairRef
	rhoNum       [][]float64 // per pair, per interval: Σ tri·ρ over windows
	rhoDen       [][]float64 // per pair, per interval: Σ tri

	// Out-of-order posteriors park here until their index is next; all
	// stitching happens in index order so results are bit-identical for
	// any worker count.
	parked   map[int]WindowPosterior
	stitched int

	// Per-event stitch accumulators, grown one slot per interval. The
	// stitched estimate at an interval is the inverse-variance fusion of
	// every covering window's estimate plus — when the event was live that
	// interval — the counted sample itself, whose per-interval noise
	// precision dwarfs any window's rate precision. Live fusion is what
	// keeps fully counted events at sample resolution instead of window
	// resolution; it applies identically to the raw and corrected series,
	// so their difference isolates the inference layer.
	corrNum [][]float64 // Σ w·posteriorRate over covering windows
	corrDen [][]float64 // Σ w
	stdNum  [][]float64 // Σ w·posteriorRateStd
	rawNum  [][]float64 // Σ w·observedRate
	rawDen  [][]float64
	liveNum [][]float64 // wv·sample at counted intervals (0 elsewhere)
	liveDen [][]float64
	liveStd [][]float64 // wv·sampleStd
	naive   [][]float64
	lastVal []float64
	firstT  []int // first interval each event was counted (-1 if never)

	postRelStd  stats.Running
	workerIters []stats.Running
	converged   bool
	unconverged int
	totalSweeps int
	tri         []float64 // per-window triangular kernel scratch

	// Instrumentation (all nil-safe no-ops when Config.Metrics is nil):
	// stream-stage instruments, the shared measure-layer counters, the
	// graph layer's per-Execute recorder handed to every worker batch, and
	// the once-per-engine non-finite-drop warning latch.
	m          engineMetrics
	mm         measure.Metrics
	gm         *graph.Metrics
	warnedDrop bool

	// Epoch feedback accumulators: per-event posterior (and observation)
	// sums over the windows stitched since the last EpochPosterior call.
	// Averaging a whole epoch's windows gives the adaptive scheduler a far
	// less noisy urgency signal than any single window.
	epochMean   []float64
	epochStd    []float64
	epochObsStd []float64
	epochObsN   []int
	epochN      int
}

// covPair is one tracked posterior-correlation pair.
type covPair struct {
	a, b uarch.EventID
}

// pairRef ties a derived metric's input positions (i < j) to the tracked
// pair's index in the engine's covPairs.
type pairRef struct {
	i, j, pi int
}

// NewEngine starts a streaming engine (and its worker pool) over the
// catalog. The factor graph is compiled once here; every worker executes
// batches of windows against the shared plan.
func NewEngine(cat *uarch.Catalog, cfg Config) *Engine {
	cfg = cfg.WithDefaults()
	ne := cat.NumEvents()
	e := &Engine{
		cat:         cat,
		cfg:         cfg,
		plan:        graph.Compile(cat),
		win:         NewWindow(cat, cfg.Window),
		jobs:        make(chan []windowJob, 2*cfg.Workers),
		results:     make(chan WindowPosterior, 4*cfg.Workers),
		parked:      make(map[int]WindowPosterior),
		corrNum:     make([][]float64, ne),
		corrDen:     make([][]float64, ne),
		stdNum:      make([][]float64, ne),
		rawNum:      make([][]float64, ne),
		rawDen:      make([][]float64, ne),
		liveNum:     make([][]float64, ne),
		liveDen:     make([][]float64, ne),
		liveStd:     make([][]float64, ne),
		naive:       make([][]float64, ne),
		lastVal:     make([]float64, ne),
		firstT:      make([]int, ne),
		epochMean:   make([]float64, ne),
		epochStd:    make([]float64, ne),
		epochObsStd: make([]float64, ne),
		epochObsN:   make([]int, ne),
		workerIters: make([]stats.Running, cfg.Workers),
		converged:   true,
		m:           newEngineMetrics(cfg.Metrics),
		mm:          measure.NewMetrics(cfg.Metrics),
		gm:          graph.NewMetrics(cfg.Metrics),
	}
	for id := range e.firstT {
		e.firstT[id] = -1
	}
	if cfg.SizeHint > 0 {
		for id := 0; id < ne; id++ {
			for _, arr := range []*[]float64{
				&e.corrNum[id], &e.corrDen[id], &e.stdNum[id],
				&e.rawNum[id], &e.rawDen[id],
				&e.liveNum[id], &e.liveDen[id], &e.liveStd[id],
				&e.naive[id],
			} {
				*arr = make([]float64, 0, cfg.SizeHint)
			}
		}
	}
	e.tri = make([]float64, cfg.Window)
	e.jobBuf = make([]windowJob, 0, cfg.Batch)
	if cfg.Covariance {
		e.buildCovPairs()
	}
	e.wg.Add(cfg.Workers)
	for wi := 0; wi < cfg.Workers; wi++ {
		go e.worker(wi)
	}
	return e
}

// buildCovPairs enumerates the derived formulas' input pairs that share a
// relation clique — the pairs whose posterior correlation each window must
// report for covariance-aware derived stds — deduplicated across formulas.
func (e *Engine) buildCovPairs() {
	e.derivedPairs = make([][]pairRef, len(e.cat.Derived))
	index := make(map[[2]uarch.EventID]int)
	for di := range e.cat.Derived {
		d := &e.cat.Derived[di]
		for i := 0; i < len(d.Inputs); i++ {
			for j := i + 1; j < len(d.Inputs); j++ {
				a, b := d.Inputs[i], d.Inputs[j]
				if a == b || !e.plan.SharesClique(a, b) {
					continue
				}
				key := [2]uarch.EventID{a, b}
				if a > b {
					key = [2]uarch.EventID{b, a}
				}
				pi, ok := index[key]
				if !ok {
					pi = len(e.covPairs)
					index[key] = pi
					e.covPairs = append(e.covPairs, covPair{a: key[0], b: key[1]})
				}
				e.derivedPairs[di] = append(e.derivedPairs[di], pairRef{i: i, j: j, pi: pi})
			}
		}
	}
	e.rhoNum = make([][]float64, len(e.covPairs))
	e.rhoDen = make([][]float64, len(e.covPairs))
	if e.cfg.SizeHint > 0 {
		for pi := range e.rhoNum {
			e.rhoNum[pi] = make([]float64, 0, e.cfg.SizeHint)
			e.rhoDen[pi] = make([]float64, 0, e.cfg.SizeHint)
		}
	}
}

// worker is one EP engine: it owns one batch over the engine's shared
// compiled plan, re-observes its lanes per dispatched batch of windows,
// and executes them in a single schedule walk. The steady state allocates
// only the posteriors it ships back.
func (e *Engine) worker(wi int) {
	defer e.wg.Done()
	batch := e.plan.NewBatch(e.cfg.Batch)
	batch.FastMath = e.cfg.FastMath
	batch.SetMetrics(e.gm)
	if len(e.covPairs) > 0 {
		batch.EnableCovariance()
	}
	var iters stats.Running
	var br *graph.BatchResult // reused across batches; Window copies lanes out
	for jobs := range e.jobs {
		batch.ClearObservations()
		for lane, job := range jobs {
			for id, ok := range job.observed {
				if ok {
					batch.Observe(lane, uarch.EventID(id), job.obsMean[id], job.obsStd[id])
				}
			}
		}
		sp := obs.StartSpan(e.m.stInfer)
		br = batch.ExecuteInto(br, len(jobs), e.cfg.MaxIter, e.cfg.Tol)
		sp.End()
		for lane, job := range jobs {
			res := br.Window(lane)
			iters.Add(float64(res.Iters))
			var rho []float64
			if len(e.covPairs) > 0 {
				rho = make([]float64, len(e.covPairs))
				for pi, p := range e.covPairs {
					rho[pi] = res.Corr(p.a, p.b)
				}
			}
			e.results <- WindowPosterior{
				Index: job.index, Start: job.start, End: job.end,
				Mean: res.Mean, Std: res.Std,
				ObsStd: job.obsStd, Disp: job.disp, Observed: job.observed,
				Rho:   rho,
				Iters: res.Iters, Converged: res.Converged,
			}
		}
	}
	e.workerIters[wi] = iters
}

// Ingest feeds one interval into the window; at hop boundaries the window
// is snapshotted and dispatched to the pool.
func (e *Engine) Ingest(s measure.IntervalSample) {
	// Ingest is the only per-interval stage, so its latency span is sampled
	// 1-in-16: two clock reads per interval would be the single largest
	// instrumentation cost of the whole pipeline, while a sampled histogram
	// of a stage this uniform loses nothing.
	var sp obs.Span
	if e.ingested&0xf == 0 {
		sp = obs.StartSpan(e.m.stIngest)
	}
	defer sp.End()
	e.m.intervals.Inc()
	for i, id := range s.Events {
		if !finite(s.Values[i]) {
			// Corrupted reading: keep it out of the naive series. Count the
			// drop (once per reading — the fusion loop below skips the same
			// values) and warn the first time this stream drops one.
			e.mm.DroppedNonFinite.Inc()
			if !e.warnedDrop {
				e.warnedDrop = true
				warnf("stream: dropping non-finite reading for event %s at interval %d "+
					"(further drops counted in bayesperf_measure_dropped_nonfinite_total)",
					e.cat.Event(id).Name, e.ingested)
			}
			continue
		}
		e.lastVal[id] = s.Values[i]
		if e.firstT[id] < 0 {
			e.firstT[id] = e.ingested
		}
	}
	for id := range e.naive {
		e.corrNum[id] = append(e.corrNum[id], 0)
		e.corrDen[id] = append(e.corrDen[id], 0)
		e.stdNum[id] = append(e.stdNum[id], 0)
		e.rawNum[id] = append(e.rawNum[id], 0)
		e.rawDen[id] = append(e.rawDen[id], 0)
		e.liveNum[id] = append(e.liveNum[id], 0)
		e.liveDen[id] = append(e.liveDen[id], 0)
		e.liveStd[id] = append(e.liveStd[id], 0)
		e.naive[id] = append(e.naive[id], e.lastVal[id])
	}
	for pi := range e.rhoNum {
		e.rhoNum[pi] = append(e.rhoNum[pi], 0)
		e.rhoDen[pi] = append(e.rhoDen[pi], 0)
	}
	e.win.Push(s)
	e.ingested++
	// Fuse the live samples at their own interval. With Gumbel rejection
	// on, a sample the trailing window's fit flags as an outlier is not
	// trusted at full noise precision (the window estimate, itself
	// filtered, covers its interval instead).
	for i, id := range s.Events {
		v := s.Values[i]
		if !finite(v) {
			continue // corrupted reading: no live-precision fusion either
		}
		if e.cfg.Mux.GumbelReject && e.win.lastIsOutlier(id, e.cfg.Mux.RejectQuantile()) {
			e.m.liveOutliers.Inc()
			continue
		}
		sv := e.cfg.Mux.NoiseFrac * v
		if floor := e.cfg.Mux.StdFloorFrac * v; sv < floor {
			sv = floor
		}
		if sv == 0 { //bayesvet:bitwise exact-zero sentinel: std was assigned zero, never computed
			sv = 1 // zero reading: unit count uncertainty
		}
		wv := 1 / (sv * sv)
		t := e.ingested - 1
		e.liveNum[id][t] = wv * v
		e.liveDen[id][t] = wv
		e.liveStd[id][t] = wv * sv
	}
	if e.ingested >= e.cfg.Window && (e.ingested-e.cfg.Window)%e.cfg.Hop == 0 {
		e.emit()
	}
}

// emit snapshots the current window into the batch buffer; a full buffer
// (cfg.Batch windows) is dispatched to the pool as one batched job.
func (e *Engine) emit() {
	// Per-window spans are sampled 1-in-8 like the per-interval ingest span:
	// snapshot latency is uniform across windows and the clock reads would
	// otherwise be the dominant cost of instrumenting this stage.
	var sp obs.Span
	if e.nextIdx&7 == 0 {
		sp = obs.StartSpan(e.m.stSnapshot)
	}
	job := e.win.snapshot(e.nextIdx, e.cfg.Mux)
	sp.End()
	e.m.windows.Inc()
	if job.rejected > 0 {
		e.m.gumbel.Add(uint64(job.rejected))
	}
	e.stitchRaw(job)
	e.nextIdx++
	e.pending++
	e.lastEmitEnd = job.end
	e.jobBuf = append(e.jobBuf, job)
	if len(e.jobBuf) == e.cfg.Batch {
		e.dispatch()
	}
}

// dispatch hands the buffered windows (a full or partial batch) to the
// pool, absorbing finished posteriors whenever the job queue pushes back.
func (e *Engine) dispatch() {
	if len(e.jobBuf) == 0 {
		return
	}
	jobs := e.jobBuf
	e.jobBuf = make([]windowJob, 0, e.cfg.Batch)
	e.m.batches.Inc()
	e.m.fillRatio.Observe(float64(len(jobs)) / float64(e.cfg.Batch))
	sp := obs.StartSpan(e.m.stDispatch)
	defer sp.End()
	for {
		select {
		case e.jobs <- jobs:
			return
		case r := <-e.results:
			e.absorb(r)
		}
	}
}

// absorb parks one posterior and immediately stitches the contiguous
// prefix: stitching stays in strict window-index order (deterministic for
// any worker count) while the parked map stays O(workers) on arbitrarily
// long streams instead of accumulating every window until Finish.
func (e *Engine) absorb(r WindowPosterior) {
	e.parked[r.Index] = r
	e.pending--
	for {
		next, ok := e.parked[e.stitched]
		if !ok {
			return
		}
		delete(e.parked, e.stitched)
		var sp obs.Span
		if e.stitched&7 == 0 { // sampled 1-in-8, matching emit's snapshot span
			sp = obs.StartSpan(e.m.stStitch)
		}
		e.stitchCorrected(next)
		sp.End()
		e.stitched++
	}
}

// Flush dispatches any partially filled batch and blocks until every
// emitted window's posterior has been stitched. Call it at epoch
// boundaries before reading EpochPosterior, so the scheduler feedback does
// not depend on worker timing (or on where the epoch falls within a
// batch).
func (e *Engine) Flush() {
	e.dispatch()
	for e.pending > 0 {
		e.absorb(<-e.results)
	}
}

// triWeight is the stitching kernel: a window's estimate is most
// representative of its center, so its weight ramps linearly from the
// edges (where a boundary-straddling window smears the most) to the
// middle. Combined with precision weighting this keeps the effective
// smoothing kernel at one window width instead of two.
func triWeight(t, start, end int) float64 {
	span := float64(end - start)
	center := float64(start) + (span-1)/2
	return 1 - math.Abs(float64(t)-center)/((span+1)/2)
}

// triKernel fills e.tri with the window's triangular weights so the
// per-event stitch loops do one multiply per point instead of recomputing
// the kernel event-by-event.
func (e *Engine) triKernel(start, end int) []float64 {
	w := end - start
	if cap(e.tri) < w {
		e.tri = make([]float64, w)
	}
	tri := e.tri[:w]
	for i := range tri {
		tri[i] = triWeight(start+i, start, end)
	}
	return tri
}

// predictivePrec is the weight of a window's estimate when predicting one
// interval's value: the inverse of (mean-estimate variance + within-window
// dispersion²), per the law of total variance. Dispersion is what keeps a
// window from claiming sample-level certainty about any single interval.
func predictivePrec(rateStd, disp float64) float64 {
	return 1 / math.Max(rateStd*rateStd+disp*disp, 1e-300)
}

// stitchRaw folds one window's uncorrected observations into the windowed
// raw baseline, weighted by predictive precision.
//
//bayesperf:hotpath
func (e *Engine) stitchRaw(job windowJob) {
	w := float64(job.end - job.start)
	tri := e.triKernel(job.start, job.end)
	for id, ok := range job.observed {
		if !ok {
			continue
		}
		rate := job.obsMean[id] / w
		prec := predictivePrec(job.obsStd[id]/w, job.disp[id])
		num := e.rawNum[id][job.start:job.end]
		den := e.rawDen[id][job.start:job.end]
		for i, k := range tri {
			wt := prec * k
			num[i] += wt * rate
			den[i] += wt
		}
	}
}

// stitchCorrected folds one window's posterior into the corrected series
// and the pooled uncertainty metric. Runs strictly in window-index order.
// The stitch weight is the same observation precision stitchRaw uses (the
// posterior stds of overlapping windows are correlated, so they are
// reported, not used as weights): raw and corrected then differ only in
// the estimate each window contributes.
//
//bayesperf:hotpath
func (e *Engine) stitchCorrected(r WindowPosterior) {
	w := float64(r.End - r.Start)
	e.converged = e.converged && r.Converged
	if !r.Converged {
		e.unconverged++
	}
	e.totalSweeps += r.Iters
	tri := e.triKernel(r.Start, r.End)
	for id := range r.Mean {
		rate := r.Mean[id] / w
		rateStd := r.Std[id] / w
		weightStd := rateStd
		if r.Observed[id] {
			weightStd = r.ObsStd[id] / w
		}
		prec := predictivePrec(weightStd, r.Disp[id])
		num := e.corrNum[id][r.Start:r.End]
		den := e.corrDen[id][r.Start:r.End]
		std := e.stdNum[id][r.Start:r.End]
		for i, k := range tri {
			wt := prec * k
			num[i] += wt * rate
			den[i] += wt
			std[i] += wt * rateStd
		}
		scale := math.Abs(r.Mean[id])
		if scale < 1 {
			scale = 1
		}
		e.postRelStd.Add(r.Std[id] / scale)
		e.epochMean[id] += r.Mean[id]
		e.epochStd[id] += r.Std[id]
		if r.Observed[id] {
			e.epochObsStd[id] += r.ObsStd[id]
			e.epochObsN[id]++
		}
	}
	// Stitch the tracked clique correlations with the triangular kernel
	// alone: ρ is dimensionless and the windows covering an interval see
	// near-identical observation precisions, so precision weighting would
	// only re-derive the kernel. The stitched ρ̄(t) recombines with the
	// stitched marginal stds in stitchDerived.
	for pi := range r.Rho {
		rho := r.Rho[pi]
		rn := e.rhoNum[pi][r.Start:r.End]
		rd := e.rhoDen[pi][r.Start:r.End]
		for i, k := range tri {
			rn[i] += k * rho
			rd[i] += k
		}
	}
	e.epochN++
}

// EpochPosterior returns the per-event posterior mean/std and observation
// std averaged over the windows stitched since the previous call (valid
// after a Flush; obsStd is 0 where the event went unobserved all epoch),
// and resets the accumulator — the feedback signal for
// measure.(*AdaptiveScheduler).Reprioritize.
func (e *Engine) EpochPosterior() (mean, std, obsStd []float64, ok bool) {
	if e.epochN == 0 {
		return nil, nil, nil, false
	}
	n := float64(e.epochN)
	mean = make([]float64, len(e.epochMean))
	std = make([]float64, len(e.epochStd))
	obsStd = make([]float64, len(e.epochObsStd))
	for id := range mean {
		mean[id] = e.epochMean[id] / n
		std[id] = e.epochStd[id] / n
		if e.epochObsN[id] > 0 {
			obsStd[id] = e.epochObsStd[id] / float64(e.epochObsN[id])
		}
		e.epochMean[id] = 0
		e.epochStd[id] = 0
		e.epochObsStd[id] = 0
		e.epochObsN[id] = 0
	}
	e.epochN = 0
	return mean, std, obsStd, true
}

// Finish emits a final window over the stream's tail (so every interval is
// covered), drains the pool, and assembles the stitched result. The engine
// cannot be used after Finish.
func (e *Engine) Finish() *Result {
	if e.ingested > 0 && e.lastEmitEnd < e.ingested {
		e.emit()
	}
	e.dispatch()
	close(e.jobs)
	e.Flush()
	e.wg.Wait()
	sp := obs.StartSpan(e.m.stReport)
	defer sp.End()

	ne := e.cat.NumEvents()
	res := &Result{
		Intervals:    e.ingested,
		Windows:      e.nextIdx,
		Corrected:    make([]timeseries.Series, ne),
		CorrectedStd: make([]timeseries.Series, ne),
		WindowedRaw:  make([]timeseries.Series, ne),
		NaiveRaw:     make([]timeseries.Series, ne),
		PostRelStd:   e.postRelStd,
		AllConverged: e.converged,
		Unconverged:  e.unconverged,
		TotalSweeps:  e.totalSweeps,
	}
	for _, wi := range e.workerIters {
		res.InferIters.Merge(wi)
	}
	for id := 0; id < ne; id++ {
		corr := make(timeseries.Series, e.ingested)
		cstd := make(timeseries.Series, e.ingested)
		raw := make(timeseries.Series, e.ingested)
		naive := append(timeseries.Series(nil), e.naive[id]...)
		// Backfill the naive baseline's leading intervals (before the
		// event's group first went live) with its first reading.
		if ft := e.firstT[id]; ft > 0 {
			for t := 0; t < ft; t++ {
				naive[t] = naive[ft]
			}
		}
		for t := 0; t < e.ingested; t++ {
			if den := e.corrDen[id][t] + e.liveDen[id][t]; den > 0 {
				corr[t] = (e.corrNum[id][t] + e.liveNum[id][t]) / den
				cstd[t] = (e.stdNum[id][t] + e.liveStd[id][t]) / den
			}
			if den := e.rawDen[id][t] + e.liveDen[id][t]; den > 0 {
				raw[t] = (e.rawNum[id][t] + e.liveNum[id][t]) / den
			} else {
				raw[t] = naive[t] // window never saw the event: hold the sample
			}
		}
		res.Corrected[id] = corr
		res.CorrectedStd[id] = cstd
		res.WindowedRaw[id] = raw
		res.NaiveRaw[id] = naive
	}
	e.stitchDerived(res)
	return res
}

// stitchDerived rides the derived-event formulas on top of the stitched
// per-event series: the corrected posterior (mean via the formula at the
// posterior mean, std via the delta method over the stitched posterior
// stds) plus the windowed-raw and naive baselines through the same
// formulas. With Config.Covariance the delta method additionally receives
// each input pair's stitched clique correlation ρ̄(t), so e.g. a ratio
// whose numerator and denominator share an invariant stops counting their
// coupling as independent noise. Runs once at Finish; derived ratios are
// scale-free, so per-interval rates feed them directly.
func (e *Engine) stitchDerived(res *Result) {
	nd := len(e.cat.Derived)
	res.DerivedCorrected = make([]timeseries.Series, nd)
	res.DerivedCorrectedStd = make([]timeseries.Series, nd)
	res.DerivedWindowedRaw = make([]timeseries.Series, nd)
	res.DerivedNaive = make([]timeseries.Series, nd)
	rhoBar := e.stitchedRho()
	for di := range e.cat.Derived {
		d := &e.cat.Derived[di]
		in := make([]float64, len(d.Inputs))
		sd := make([]float64, len(d.Inputs))
		corr := make(timeseries.Series, e.ingested)
		cstd := make(timeseries.Series, e.ingested)
		// Covariance-aware propagation: resolve this formula's tracked
		// pairs once, then hand PropagateStdCov a lookup over the current
		// interval's stitched correlations. A formula with no coupled
		// pairs keeps corrFn nil, which PropagateStdCov reduces to the
		// diagonal PropagateStd bit for bit.
		var corrFn func(i, j int) float64
		tt := 0 // the interval corrFn reads; advanced by the loop below
		if len(e.derivedPairs) > 0 && len(e.derivedPairs[di]) > 0 {
			refs := make(map[int]int, len(e.derivedPairs[di]))
			for _, pr := range e.derivedPairs[di] {
				refs[pr.i<<16|pr.j] = pr.pi
			}
			corrFn = func(i, j int) float64 {
				if pi, ok := refs[i<<16|j]; ok {
					return rhoBar[pi][tt]
				}
				return 0
			}
		}
		for t := 0; t < e.ingested; t++ {
			for i, id := range d.Inputs {
				in[i] = res.Corrected[id][t]
				sd[i] = res.CorrectedStd[id][t]
			}
			tt = t
			corr[t] = d.Eval(in)
			cstd[t] = d.PropagateStdCov(in, sd, corrFn)
		}
		res.DerivedCorrected[di] = corr
		res.DerivedCorrectedStd[di] = cstd
		e.stitchDerivedBaselines(res, di)
	}
}

// stitchDerivedBaselines pushes the windowed-raw and naive baselines
// through one derived formula.
func (e *Engine) stitchDerivedBaselines(res *Result, di int) {
	d := &e.cat.Derived[di]
	gatherRaw := make([]timeseries.Series, len(d.Inputs))
	gatherNaive := make([]timeseries.Series, len(d.Inputs))
	for i, id := range d.Inputs {
		gatherRaw[i] = res.WindowedRaw[id]
		gatherNaive[i] = res.NaiveRaw[id]
	}
	res.DerivedWindowedRaw[di] = timeseries.Map(d.Eval, gatherRaw...)
	res.DerivedNaive[di] = timeseries.Map(d.Eval, gatherNaive...)
}

// stitchedRho resolves the tracked pairs' per-interval stitched
// correlations ρ̄(t) = Σ tri·ρ / Σ tri over the covering windows (0 where
// no window covered the interval). Returns nil when no pairs are tracked.
func (e *Engine) stitchedRho() [][]float64 {
	if len(e.covPairs) == 0 {
		return nil
	}
	out := make([][]float64, len(e.covPairs))
	for pi := range e.covPairs {
		rb := make([]float64, e.ingested)
		for t := 0; t < e.ingested; t++ {
			if den := e.rhoDen[pi][t]; den > 0 {
				rb[t] = e.rhoNum[pi][t] / den
			}
		}
		out[pi] = rb
	}
	return out
}

// IntervalSource feeds the streaming engine: anything that emits a sequence
// of multiplexed interval samples. measure.Sampler implements it; so does
// any pkg/bayesperf.Source, which is how a future perf-event reader plugs
// into this engine without changes here.
type IntervalSource interface {
	Next() (measure.IntervalSample, bool)
}

// Run streams a source through the engine end to end. When sched is a
// *measure.AdaptiveScheduler the posterior feedback loop closes: each epoch
// the engine is flushed and the epoch-averaged posterior re-prioritizes the
// multiplexing slots (pass the scheduler actually driving the source, or
// nil for scheduler-less sources). Results are deterministic for a given
// (source, scheduler, config) regardless of the worker count.
func Run(cat *uarch.Catalog, src IntervalSource, sched measure.Scheduler, cfg Config) *Result {
	e := NewEngine(cat, cfg)
	ad, adaptive := sched.(*measure.AdaptiveScheduler)
	var sm measure.SchedMetrics
	var prevMoves int
	if adaptive {
		// Registered only when the feedback loop is live: a round-robin run
		// has no scheduler decisions to observe.
		sm = measure.NewSchedMetrics(cfg.Metrics)
	}
	t := 0
	for {
		s, ok := src.Next()
		if !ok {
			break
		}
		e.Ingest(s)
		t++
		if adaptive && t%ad.EpochLen() == 0 {
			e.Flush()
			if mean, std, obsStd, ok := e.EpochPosterior(); ok {
				ad.Reprioritize(mean, std, obsStd)
				moves := ad.Moves()
				sm.RecordEpoch(moves-prevMoves, pooledRelStd(mean, std))
				prevMoves = moves
			}
		}
	}
	res := e.Finish()
	if adaptive {
		res.Reprioritizations = ad.Reprioritizations()
	}
	return res
}

// pooledRelStd pools a posterior's per-event relative std (std over
// |mean|, floored at 1 so near-zero events don't dominate) into one
// scheduler-facing uncertainty number — the same normalization
// stitchCorrected feeds Result.PostRelStd.
func pooledRelStd(mean, std []float64) float64 {
	if len(mean) == 0 {
		return 0
	}
	var sum float64
	for id := range mean {
		scale := math.Abs(mean[id])
		if scale < 1 {
			scale = 1
		}
		sum += std[id] / scale
	}
	return sum / float64(len(mean))
}

// RunTrace streams a ground-truth trace through sampler → engine end to
// end; see Run for the feedback-loop semantics.
func RunTrace(tr *measure.Trace, sched measure.Scheduler, cfg Config, r *rng.Rand) *Result {
	cfg.SizeHint = tr.Intervals()
	cfg = cfg.WithDefaults()
	return Run(tr.Cat, measure.NewSampler(tr, cfg.Mux, sched, r), sched, cfg)
}
