package stream

import (
	"math"
	"strconv"
	"testing"

	"bayesperf/internal/graph"
	"bayesperf/internal/measure"
	"bayesperf/internal/rng"
	"bayesperf/internal/stats"
	"bayesperf/internal/timeseries"
	"bayesperf/internal/uarch"
)

// testConfig keeps unit-test runs small and single-seeded.
func testConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.Workers = workers
	return cfg
}

// trueRates converts a ground-truth trace to per-interval rate series
// (identical representation to the stream result).
func trueRates(tr *measure.Trace) []timeseries.Series {
	out := make([]timeseries.Series, len(tr.Series))
	for id, s := range tr.Series {
		out[id] = s.Clone()
	}
	return out
}

// TestWindowIncrementalMatchesBatch drives a window far enough to slide
// many times, then checks that the incrementally maintained observation
// snapshot equals one recomputed from scratch on the same intervals.
func TestWindowIncrementalMatchesBatch(t *testing.T) {
	cat := uarch.Skylake()
	tr := measure.GroundTruth(cat, measure.DefaultWorkload(40), rng.New(8))
	smp := measure.NewSampler(tr, measure.DefaultMuxConfig(), measure.NewRoundRobin(cat), rng.New(9))

	const size = 16
	slid := NewWindow(cat, size)
	var history []measure.IntervalSample
	for {
		s, ok := smp.Next()
		if !ok {
			break
		}
		slid.Push(s)
		history = append(history, s)

		if s.T < size || s.T%7 != 0 {
			continue
		}
		// Rebuild the same window from scratch.
		fresh := NewWindow(cat, size)
		for _, hs := range history[len(history)-size:] {
			fresh.Push(hs)
		}
		a := slid.snapshot(0, measure.DefaultMuxConfig())
		b := fresh.snapshot(0, measure.DefaultMuxConfig())
		if a.start != b.start || a.end != b.end {
			t.Fatalf("t=%d: span (%d,%d) vs (%d,%d)", s.T, a.start, a.end, b.start, b.end)
		}
		for id := range a.observed {
			if a.observed[id] != b.observed[id] {
				t.Fatalf("t=%d event %d: observed %v vs %v", s.T, id, a.observed[id], b.observed[id])
			}
			if !a.observed[id] {
				continue
			}
			if math.Abs(a.obsMean[id]-b.obsMean[id]) > 1e-6*math.Abs(b.obsMean[id]) {
				t.Fatalf("t=%d event %d: incremental mean %v, batch %v", s.T, id, a.obsMean[id], b.obsMean[id])
			}
			if math.Abs(a.obsStd[id]-b.obsStd[id]) > 1e-6*b.obsStd[id]+1e-9 {
				t.Fatalf("t=%d event %d: incremental std %v, batch %v", s.T, id, a.obsStd[id], b.obsStd[id])
			}
		}
	}
}

// TestSnapshotDispFloor is the regression test for the lone-sample
// dispersion hole: a single zero-valued reading used to produce disp = 0,
// which the stitcher's predictive precision read as "this window predicts
// that interval perfectly". disp must be floored like obsStd is.
func TestSnapshotDispFloor(t *testing.T) {
	cat := uarch.Skylake()
	mux := measure.DefaultMuxConfig()
	loads := cat.MustEvent("MEM_INST_RETIRED.ALL_LOADS")

	// One interval, one event, reading 0.
	w := NewWindow(cat, 8)
	w.Push(measure.IntervalSample{T: 0, Events: []uarch.EventID{loads}, Values: []float64{0}})
	job := w.snapshot(0, mux)
	if !job.observed[loads] {
		t.Fatal("zero-valued event not observed")
	}
	if job.disp[loads] != 1 {
		t.Errorf("lone zero sample disp = %v, want unit-count floor 1", job.disp[loads])
	}

	// A constant run of zeros must not claim perfection either.
	w = NewWindow(cat, 8)
	for ti := 0; ti < 5; ti++ {
		w.Push(measure.IntervalSample{T: ti, Events: []uarch.EventID{loads}, Values: []float64{0}})
	}
	if job = w.snapshot(0, mux); job.disp[loads] != 1 {
		t.Errorf("constant-zero disp = %v, want 1", job.disp[loads])
	}

	// A lone nonzero sample keeps its maximally-vague |mean| dispersion.
	w = NewWindow(cat, 8)
	w.Push(measure.IntervalSample{T: 0, Events: []uarch.EventID{loads}, Values: []float64{5e6}})
	if job = w.snapshot(0, mux); job.disp[loads] != 5e6 {
		t.Errorf("lone nonzero sample disp = %v, want |mean| = 5e6", job.disp[loads])
	}
}

// TestSnapshotAllNaNWindow: with Gumbel rejection on, a window whose every
// reading of an event is NaN must mark the event unobserved (the
// invariants infer it) instead of shipping NaN observations to the graph.
func TestSnapshotAllNaNWindow(t *testing.T) {
	cat := uarch.Skylake()
	mux := measure.DefaultMuxConfig()
	mux.GumbelReject = true
	loads := cat.MustEvent("MEM_INST_RETIRED.ALL_LOADS")
	w := NewWindow(cat, 8)
	for ti := 0; ti < 5; ti++ {
		w.Push(measure.IntervalSample{T: ti, Events: []uarch.EventID{loads}, Values: []float64{math.NaN()}})
	}
	job := w.snapshot(0, mux)
	if job.observed[loads] {
		t.Errorf("all-NaN event marked observed (obsMean=%v obsStd=%v)",
			job.obsMean[loads], job.obsStd[loads])
	}
}

// TestStreamTransientCorruption: a single corrupted reading (NaN or Inf)
// must not poison the window's running sums after it slides out
// (sum + NaN − NaN, and Inf − Inf on eviction, would stay NaN forever),
// the naive series, or the live fusion — with or without Gumbel rejection
// the engine must neither panic nor emit non-finite values.
func TestStreamTransientCorruption(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		cat := uarch.Skylake()
		tr := measure.GroundTruth(cat, measure.DefaultWorkload(30), rng.New(3))
		// Poison one reading of a fixed counter (counted every interval,
		// so the corruption is guaranteed to enter and leave the window).
		id := cat.MustEvent("INST_RETIRED.ANY")
		tr.Series[id][11] = bad
		for _, reject := range []bool{false, true} {
			cfg := testConfig(2)
			cfg.Mux.GumbelReject = reject
			res := RunTrace(tr, measure.NewRoundRobin(cat), cfg, rng.New(5))
			for eid := range res.Corrected {
				for _, series := range [][]float64{
					res.Corrected[eid], res.CorrectedStd[eid],
					res.WindowedRaw[eid], res.NaiveRaw[eid],
				} {
					for ti, v := range series {
						if math.IsNaN(v) || math.IsInf(v, 0) {
							t.Fatalf("bad=%v gumbel=%v event %d interval %d leaked %v",
								bad, reject, eid, ti, v)
						}
					}
				}
			}
		}
	}
}

// TestWindowTransientNaNSums: unit-level form of the poisoned-ring bug —
// after a NaN reading is evicted, the snapshot must be finite again.
func TestWindowTransientNaNSums(t *testing.T) {
	cat := uarch.Skylake()
	loads := cat.MustEvent("MEM_INST_RETIRED.ALL_LOADS")
	w := NewWindow(cat, 4)
	w.Push(measure.IntervalSample{T: 0, Events: []uarch.EventID{loads}, Values: []float64{math.NaN()}})
	for ti := 1; ti < 8; ti++ { // slide far enough to evict the NaN
		w.Push(measure.IntervalSample{T: ti, Events: []uarch.EventID{loads}, Values: []float64{1e6}})
	}
	job := w.snapshot(0, measure.DefaultMuxConfig())
	if !job.observed[loads] {
		t.Fatal("event with finite samples not observed")
	}
	if math.IsNaN(job.obsMean[loads]) || math.IsNaN(job.obsStd[loads]) || math.IsNaN(job.disp[loads]) {
		t.Errorf("evicted NaN poisoned the snapshot: mean=%v std=%v disp=%v",
			job.obsMean[loads], job.obsStd[loads], job.disp[loads])
	}
}

// TestPosteriorBeatsObservationsPerWindow isolates the inference layer at
// the resolution it operates on: across every emitted window, the
// posterior's window-total error must be well below the raw observations'.
func TestPosteriorBeatsObservationsPerWindow(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		r := rng.New(7)
		tr := measure.GroundTruth(cat, measure.DefaultWorkload(100), r.Split())
		cfg := testConfig(0)
		smp := measure.NewSampler(tr, cfg.Mux, measure.NewRoundRobin(cat), r.Split())
		win := NewWindow(cat, cfg.Window)
		g := graph.Build(cat)
		var obsErr, postErr stats.Running
		for {
			s, ok := smp.Next()
			if !ok {
				break
			}
			win.Push(s)
			if s.T < cfg.Window-1 || (s.T-cfg.Window+1)%cfg.Hop != 0 {
				continue
			}
			job := win.snapshot(0, cfg.Mux)
			g.ClearObservations()
			for id, observed := range job.observed {
				if observed {
					g.Observe(uarch.EventID(id), job.obsMean[id], job.obsStd[id])
				}
			}
			res := g.Infer(cfg.MaxIter, cfg.Tol)
			for id := range job.observed {
				var truthTot float64
				for tt := job.start; tt < job.end; tt++ {
					truthTot += tr.Series[id][tt]
				}
				if job.observed[id] {
					obsErr.Add(stats.RelErr(job.obsMean[id], truthTot, 1))
				}
				postErr.Add(stats.RelErr(res.Mean[id], truthTot, 1))
			}
		}
		t.Logf("%s window-total err: observations %.3f%% posterior %.3f%%",
			cat.Arch, 100*obsErr.Mean(), 100*postErr.Mean())
		if postErr.Mean() >= 0.9*obsErr.Mean() {
			t.Errorf("%s: posterior window error %.4f%% not at least 10%% below observation error %.4f%%",
				cat.Arch, 100*postErr.Mean(), 100*obsErr.Mean())
		}
	}
}

// TestStreamDeterministicAcrossWorkers: the stitched output must be
// bit-identical for any pool size — inference is per-window and stitching
// is forced into window-index order.
func TestStreamDeterministicAcrossWorkers(t *testing.T) {
	cat := uarch.Power9()
	tr := measure.GroundTruth(cat, measure.DefaultWorkload(60), rng.New(5))
	var base *Result
	for _, workers := range []int{1, 4} {
		res := RunTrace(tr, measure.NewRoundRobin(cat), testConfig(workers), rng.New(6))
		if base == nil {
			base = res
			continue
		}
		if res.Windows != base.Windows || res.Intervals != base.Intervals {
			t.Fatalf("workers=%d: shape %d/%d vs %d/%d", workers,
				res.Windows, res.Intervals, base.Windows, base.Intervals)
		}
		for id := range base.Corrected {
			for _, pair := range []struct {
				name string
				a, b timeseries.Series
			}{
				{"corrected", res.Corrected[id], base.Corrected[id]},
				{"correctedStd", res.CorrectedStd[id], base.CorrectedStd[id]},
				{"windowedRaw", res.WindowedRaw[id], base.WindowedRaw[id]},
				{"naiveRaw", res.NaiveRaw[id], base.NaiveRaw[id]},
			} {
				for ti := range pair.b {
					if pair.a[ti] != pair.b[ti] {
						t.Fatalf("workers=%d: %s[%d][%d] = %v, want %v",
							workers, pair.name, id, ti, pair.a[ti], pair.b[ti])
					}
				}
			}
		}
		if res.PostRelStd != base.PostRelStd {
			t.Errorf("workers=%d: posterior-std pool diverged", workers)
		}
	}
}

// TestStreamDeterministicAcrossBatchSizes is the batching regression test:
// the stitched output — every event series, the pooled uncertainty metric,
// and the derived posterior series (covariance-aware included) — must be
// bit-identical for any batch width × worker count. Batch lanes run
// independent arithmetic and stitching is forced into window-index order,
// so no grouping of windows into Execute calls may leak into the result.
func TestStreamDeterministicAcrossBatchSizes(t *testing.T) {
	cat := uarch.Skylake()
	tr := measure.GroundTruth(cat, measure.DefaultWorkload(60), rng.New(5))
	for _, covariance := range []bool{false, true} {
		var base *Result
		var baseLabel string
		for _, batch := range []int{1, 3, 8, 64} {
			for _, workers := range []int{1, 4} {
				cfg := testConfig(workers)
				cfg.Batch = batch
				cfg.Covariance = covariance
				label := "batch=" + strconv.Itoa(batch) + " workers=" + strconv.Itoa(workers)
				res := RunTrace(tr, measure.NewRoundRobin(cat), cfg, rng.New(6))
				if base == nil {
					base, baseLabel = res, label
					continue
				}
				if res.Windows != base.Windows || res.Intervals != base.Intervals {
					t.Fatalf("cov=%v %s: shape %d/%d vs %s %d/%d", covariance, label,
						res.Windows, res.Intervals, baseLabel, base.Windows, base.Intervals)
				}
				for id := range base.Corrected {
					for _, pair := range []struct {
						name string
						a, b timeseries.Series
					}{
						{"corrected", res.Corrected[id], base.Corrected[id]},
						{"correctedStd", res.CorrectedStd[id], base.CorrectedStd[id]},
						{"windowedRaw", res.WindowedRaw[id], base.WindowedRaw[id]},
						{"naiveRaw", res.NaiveRaw[id], base.NaiveRaw[id]},
					} {
						for ti := range pair.b {
							if pair.a[ti] != pair.b[ti] {
								t.Fatalf("cov=%v %s: %s[%d][%d] = %v, want %v (%s)",
									covariance, label, pair.name, id, ti, pair.a[ti], pair.b[ti], baseLabel)
							}
						}
					}
				}
				for di := range base.DerivedCorrected {
					for _, pair := range []struct {
						name string
						a, b timeseries.Series
					}{
						{"derivedCorrected", res.DerivedCorrected[di], base.DerivedCorrected[di]},
						{"derivedCorrectedStd", res.DerivedCorrectedStd[di], base.DerivedCorrectedStd[di]},
					} {
						for ti := range pair.b {
							if pair.a[ti] != pair.b[ti] {
								t.Fatalf("cov=%v %s: %s[%d][%d] = %v, want %v (%s)",
									covariance, label, pair.name, di, ti, pair.a[ti], pair.b[ti], baseLabel)
							}
						}
					}
				}
				if res.PostRelStd != base.PostRelStd {
					t.Errorf("cov=%v %s: posterior-std pool diverged from %s", covariance, label, baseLabel)
				}
			}
		}
	}
}

// TestStreamCovarianceAwareDerivedStd checks the covariance threading end
// to end at the stream level: with Config.Covariance the derived posterior
// std series of a clique-coupled ratio (Branch_Misp_Rate: numerator and
// denominator share branch_breakdown) changes and stays strictly positive
// and finite, the corrected mean series is untouched, and formulas with no
// coupled inputs keep their diagonal stds bit for bit.
func TestStreamCovarianceAwareDerivedStd(t *testing.T) {
	cat := uarch.Skylake()
	tr := measure.GroundTruth(cat, measure.DefaultWorkload(60), rng.New(5))
	run := func(covariance bool) *Result {
		cfg := testConfig(2)
		cfg.Covariance = covariance
		return RunTrace(tr, measure.NewRoundRobin(cat), cfg, rng.New(6))
	}
	diag := run(false)
	cov := run(true)

	coupled := -1
	for di := range cat.Derived {
		if cat.Derived[di].Name == "Branch_Misp_Rate" {
			coupled = di
		}
	}
	if coupled < 0 {
		t.Fatal("Skylake catalog lost Branch_Misp_Rate")
	}
	for di := range cat.Derived {
		for ti := range diag.DerivedCorrected[di] {
			if cov.DerivedCorrected[di][ti] != diag.DerivedCorrected[di][ti] {
				t.Fatalf("%s: covariance mode changed the corrected mean at interval %d",
					cat.Derived[di].Name, ti)
			}
		}
	}
	changed := 0
	for ti := range diag.DerivedCorrectedStd[coupled] {
		c, d := cov.DerivedCorrectedStd[coupled][ti], diag.DerivedCorrectedStd[coupled][ti]
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("covariance-aware Branch_Misp_Rate std[%d] = %v", ti, c)
		}
		if c != d {
			changed++
		}
	}
	if changed == 0 {
		t.Error("covariance mode left every Branch_Misp_Rate std bit-identical to the diagonal")
	}
	// IPC's inputs share no relation on Skylake: its stds must be
	// untouched by the covariance mode.
	ipc := -1
	for di := range cat.Derived {
		if cat.Derived[di].Name == "IPC" {
			ipc = di
		}
	}
	for ti := range diag.DerivedCorrectedStd[ipc] {
		if cov.DerivedCorrectedStd[ipc][ti] != diag.DerivedCorrectedStd[ipc][ti] {
			t.Fatalf("uncoupled IPC std changed at interval %d", ti)
		}
	}
}

// TestStreamCorrectsLiveTrace is the streaming headline result on both
// catalogs: the stitched posterior's DTW-aligned per-interval error is
// below the naive multiplexed stream's, and the correction also beats
// window smoothing alone.
func TestStreamCorrectsLiveTrace(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		r := rng.New(42)
		tr := measure.GroundTruth(cat, measure.DefaultWorkload(100), r.Split())
		res := RunTrace(tr, measure.NewRoundRobin(cat), testConfig(0), r.Split())
		if !res.AllConverged {
			t.Errorf("%s: some windows did not converge", cat.Arch)
		}
		if res.Intervals != tr.Intervals() {
			t.Fatalf("%s: %d intervals out, want %d", cat.Arch, res.Intervals, tr.Intervals())
		}
		truth := trueRates(tr)
		var naive, windowed, corrected stats.Running
		for id := range truth {
			ne, err := timeseries.AlignedRelError(truth[id], res.NaiveRaw[id], res.Intervals/4, 1)
			if err != nil {
				t.Fatal(err)
			}
			we, err := timeseries.AlignedRelError(truth[id], res.WindowedRaw[id], res.Intervals/4, 1)
			if err != nil {
				t.Fatal(err)
			}
			ce, err := timeseries.AlignedRelError(truth[id], res.Corrected[id], res.Intervals/4, 1)
			if err != nil {
				t.Fatal(err)
			}
			naive.Add(ne)
			windowed.Add(we)
			corrected.Add(ce)
		}
		t.Logf("%s aligned err: naive %.3f%% windowed %.3f%% corrected %.3f%%",
			cat.Arch, 100*naive.Mean(), 100*windowed.Mean(), 100*corrected.Mean())
		if corrected.Mean() >= naive.Mean() {
			t.Errorf("%s: corrected aligned error %.4f%% not below naive %.4f%%",
				cat.Arch, 100*corrected.Mean(), 100*naive.Mean())
		}
		// Inference must never materially regress the windowed estimate it
		// starts from (per-interval error is dispersion-dominated, so the
		// window-level posterior win shows up only as a thin margin here;
		// the decisive posterior-vs-observation comparison is
		// TestPosteriorBeatsObservationsPerWindow).
		if corrected.Mean() >= 1.02*windowed.Mean() {
			t.Errorf("%s: corrected aligned error %.4f%% regresses windowed raw %.4f%%",
				cat.Arch, 100*corrected.Mean(), 100*windowed.Mean())
		}
	}
}

// derivedTruth evaluates one derived formula over the ground-truth trace's
// per-interval rates.
func derivedTruth(tr *measure.Trace, d *uarch.Derived) timeseries.Series {
	gather := make([]timeseries.Series, len(d.Inputs))
	for i, id := range d.Inputs {
		gather[i] = tr.Series[id]
	}
	return timeseries.Map(d.Eval, gather...)
}

// TestStreamDerivedSeries is the tentpole's §6.2 result at the stream
// level: every emitted interval carries each derived event's posterior
// (mean ± std), the stds are strictly positive, and the corrected derived
// series beats both baselines on DTW-aligned error — by more than the raw
// events do, since ratio numerator/denominator errors no longer compound.
func TestStreamDerivedSeries(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		r := rng.New(42)
		tr := measure.GroundTruth(cat, measure.DefaultWorkload(100), r.Split())
		res := RunTrace(tr, measure.NewRoundRobin(cat), testConfig(0), r.Split())
		if got := len(res.DerivedCorrected); got != len(cat.Derived) {
			t.Fatalf("%s: %d derived series, want %d", cat.Arch, got, len(cat.Derived))
		}
		var naive, windowed, corrected stats.Running
		for di := range cat.Derived {
			d := &cat.Derived[di]
			for _, s := range []timeseries.Series{
				res.DerivedCorrected[di], res.DerivedCorrectedStd[di],
				res.DerivedWindowedRaw[di], res.DerivedNaive[di],
			} {
				if len(s) != res.Intervals {
					t.Fatalf("%s/%s: series length %d, want %d", cat.Arch, d.Name, len(s), res.Intervals)
				}
			}
			for ti, v := range res.DerivedCorrectedStd[di] {
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s/%s: posterior std[%d] = %v, want > 0", cat.Arch, d.Name, ti, v)
				}
			}
			truth := derivedTruth(tr, d)
			band := res.Intervals / 4
			ne, err := timeseries.AlignedRelError(truth, res.DerivedNaive[di], band, 1e-3)
			if err != nil {
				t.Fatal(err)
			}
			we, err := timeseries.AlignedRelError(truth, res.DerivedWindowedRaw[di], band, 1e-3)
			if err != nil {
				t.Fatal(err)
			}
			ce, err := timeseries.AlignedRelError(truth, res.DerivedCorrected[di], band, 1e-3)
			if err != nil {
				t.Fatal(err)
			}
			naive.Add(ne)
			windowed.Add(we)
			corrected.Add(ce)
		}
		t.Logf("%s derived aligned err: naive %.3f%% windowed %.3f%% corrected %.3f%%",
			cat.Arch, 100*naive.Mean(), 100*windowed.Mean(), 100*corrected.Mean())
		if corrected.Mean() >= naive.Mean() {
			t.Errorf("%s: corrected derived aligned error %.4f%% not below naive %.4f%%",
				cat.Arch, 100*corrected.Mean(), 100*naive.Mean())
		}
		if corrected.Mean() >= windowed.Mean() {
			t.Errorf("%s: corrected derived aligned error %.4f%% not below windowed raw %.4f%%",
				cat.Arch, 100*corrected.Mean(), 100*windowed.Mean())
		}
	}
}

// TestAdaptiveBeatsRoundRobin closes the §5 loop end to end: steering
// multiplexing slots by posterior uncertainty must lower the pooled
// posterior relative std versus pure round-robin on both catalogs. The
// margin is structural on Skylake (its cache group's spread asymmetry
// gives the gradient several slots' worth of headroom, ~+5% across
// seeds); on Power9 the three groups divide the window evenly and
// round-robin is already near the measured optimum, so only small
// orientation-level gains remain.
func TestAdaptiveBeatsRoundRobin(t *testing.T) {
	for _, cat := range uarch.Catalogs() {
		r := rng.New(41)
		tr := measure.GroundTruth(cat, measure.DefaultWorkload(100), r.Split())
		seed := r.Split()

		cfg := testConfig(0)
		rr := RunTrace(tr, measure.NewRoundRobin(cat), cfg, rng.New(seed.Uint64()))
		ad := RunTrace(tr, measure.NewAdaptive(cat, cfg.Window), cfg, rng.New(seed.Uint64()))
		if ad.Reprioritizations == 0 {
			t.Fatalf("%s: adaptive loop never re-prioritized", cat.Arch)
		}
		if rr.Reprioritizations != 0 {
			t.Fatalf("%s: round-robin run reports reprioritizations", cat.Arch)
		}
		t.Logf("%s mean posterior rel std: round-robin %.4f%% adaptive %.4f%% (%d replans)",
			cat.Arch, 100*rr.PostRelStd.Mean(), 100*ad.PostRelStd.Mean(), ad.Reprioritizations)
		if ad.PostRelStd.Mean() >= rr.PostRelStd.Mean() {
			t.Errorf("%s: adaptive mean posterior rel std %.5f not below round-robin %.5f",
				cat.Arch, ad.PostRelStd.Mean(), rr.PostRelStd.Mean())
		}
	}
}

// TestStreamShortTrace: a trace shorter than one window still gets a
// (single, partial) window and full coverage.
func TestStreamShortTrace(t *testing.T) {
	cat := uarch.Skylake()
	wl := measure.Workload{Name: "short", Phases: []measure.Phase{{
		Name: "p", Intervals: 9, InstRate: 1e6,
		LoadFrac: 0.2, StoreFrac: 0.1, BranchFrac: 0.1, MispRate: 0.02,
		L1MissRate: 0.05, L2HitFrac: 0.6, L3HitFrac: 0.5,
		BaseCPI: 0.4, Jitter: 0.05,
	}}}
	tr := measure.GroundTruth(cat, wl, rng.New(2))
	res := RunTrace(tr, measure.NewRoundRobin(cat), testConfig(2), rng.New(3))
	if res.Windows != 1 {
		t.Fatalf("got %d windows, want 1", res.Windows)
	}
	if res.Intervals != 9 {
		t.Fatalf("got %d intervals, want 9", res.Intervals)
	}
	for id := range res.Corrected {
		if len(res.Corrected[id]) != 9 {
			t.Fatalf("event %d corrected length %d", id, len(res.Corrected[id]))
		}
		for ti, v := range res.Corrected[id] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("event %d interval %d corrected = %v", id, ti, v)
			}
		}
		for _, v := range res.CorrectedStd[id] {
			if v <= 0 || math.IsNaN(v) {
				t.Fatalf("event %d posterior std = %v", id, v)
			}
		}
	}
}

// TestStreamGumbelRejection: with corrupted readings injected, enabling the
// window-level Gumbel filter must lower the corrected trace's aligned
// error.
func TestStreamGumbelRejection(t *testing.T) {
	cat := uarch.Skylake()
	tr := measure.GroundTruth(cat, measure.DefaultWorkload(80), rng.New(13))
	truth := trueRates(tr)

	run := func(reject bool) float64 {
		cfg := testConfig(0)
		cfg.Mux.OutlierProb = 0.02
		cfg.Mux.OutlierMag = 8
		cfg.Mux.GumbelReject = reject
		res := RunTrace(tr, measure.NewRoundRobin(cat), cfg, rng.New(17))
		var errs stats.Running
		for id := range truth {
			e, err := timeseries.AlignedRelError(truth[id], res.Corrected[id], res.Intervals/4, 1)
			if err != nil {
				t.Fatal(err)
			}
			errs.Add(e)
		}
		return errs.Mean()
	}
	plain := run(false)
	filtered := run(true)
	t.Logf("corrected aligned err under outliers: unfiltered %.3f%% gumbel-filtered %.3f%%",
		100*plain, 100*filtered)
	if filtered >= plain {
		t.Errorf("Gumbel rejection did not help: %.4f%% -> %.4f%%", 100*plain, 100*filtered)
	}
}
