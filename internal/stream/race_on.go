//go:build race

package stream

// raceEnabled reports whether the race detector is compiled in; timing
// assertions are skipped under -race, where instrumentation skews ratios.
const raceEnabled = true
