package stream

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"bayesperf/internal/measure"
	"bayesperf/internal/obs"
	"bayesperf/internal/rng"
	"bayesperf/internal/uarch"
)

// benchTrace builds a trace long enough that per-window inference
// dominates the serial sampling/stitching work.
func benchTrace() *measure.Trace {
	return measure.GroundTruth(uarch.Skylake(), measure.DefaultWorkload(200), rng.New(1))
}

func benchStream(b *testing.B, tr *measure.Trace, workers int) {
	cfg := DefaultConfig()
	cfg.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := RunTrace(tr, measure.NewRoundRobin(tr.Cat), cfg, rng.New(2))
		if !res.AllConverged {
			b.Fatal("window inference did not converge")
		}
	}
}

// BenchmarkStreamWindow tracks the streaming hot path end to end (sample →
// window slide → per-window inference → stitch) and the worker pool's
// scaling: compare the workers=1 and workers=4 variants.
func BenchmarkStreamWindow(b *testing.B) {
	tr := benchTrace()
	b.Run("workers=1", func(b *testing.B) { benchStream(b, tr, 1) })
	b.Run("workers=2", func(b *testing.B) { benchStream(b, tr, 2) })
	b.Run("workers=4", func(b *testing.B) { benchStream(b, tr, 4) })
}

// BenchmarkStreamBatched tracks what window batching buys the streaming
// engine end to end: the same trace and worker pool at batch widths 1, 8
// and 32 under both inference kernels, with per-window cost emitted as
// ns/window so the trajectory is comparable across PRs and against
// BenchmarkInferBatch's inference-only number. cmd/benchjson snapshots it
// into BENCH_stream.json and CI gates regressions against that baseline.
func BenchmarkStreamBatched(b *testing.B) {
	tr := benchTrace()
	run := func(batch int, kernel string, reg *obs.Registry) func(*testing.B) {
		return func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Workers = 2
			cfg.Batch = batch
			cfg.FastMath = kernel == "fast"
			cfg.Metrics = reg
			windows := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := RunTrace(tr, measure.NewRoundRobin(tr.Cat), cfg, rng.New(2))
				if !res.AllConverged {
					b.Fatal("window inference did not converge")
				}
				windows = res.Windows
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*windows), "ns/window")
		}
	}
	for _, batch := range []int{1, 8, 32} {
		for _, kernel := range []string{"exact", "fast"} {
			b.Run(fmt.Sprintf("batch=%d/%s", batch, kernel), run(batch, kernel, nil))
		}
	}
	// The /obs variants run the identical workload with a live metrics
	// registry attached; cmd/benchjson's -obs-max-ratio gate pairs each one
	// against its metrics-off twin from the same run to bound the
	// instrumentation overhead (the registry is created outside the timed
	// region, as a real deployment would).
	for _, kernel := range []string{"exact", "fast"} {
		b.Run(fmt.Sprintf("batch=%d/%s/obs", 8, kernel), run(8, kernel, obs.NewRegistry()))
	}
}

// TestStreamParallelSpeedup pins the worker pool's reason to exist (and
// this PR's acceptance bar): with 4 EP engines the stream must run >1.5×
// faster than with 1. The test steps aside where timing is meaningless
// (<4 CPUs, race detector, -short).
func TestStreamParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing test skipped under the race detector")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need 4 CPUs, have %d", runtime.NumCPU())
	}
	tr := benchTrace()
	run := func(workers int) time.Duration {
		cfg := DefaultConfig()
		cfg.Workers = workers
		start := time.Now()
		for rep := 0; rep < 3; rep++ {
			res := RunTrace(tr, measure.NewRoundRobin(tr.Cat), cfg, rng.New(2))
			if !res.AllConverged {
				t.Fatal("window inference did not converge")
			}
		}
		return time.Since(start)
	}
	run(4) // warm up
	serial := run(1)
	parallel := run(4)
	speedup := float64(serial) / float64(parallel)
	t.Logf("1 worker %v, 4 workers %v: speedup %.2fx", serial, parallel, speedup)
	if speedup < 1.5 {
		t.Errorf("4-worker speedup %.2fx < 1.5x (serial %v, parallel %v)", speedup, serial, parallel)
	}
}
