package stream

import (
	"math"

	"bayesperf/internal/measure"
	"bayesperf/internal/stats"
	"bayesperf/internal/uarch"
)

// eventRing holds one event's counted per-interval values inside the
// current window, with the running sums needed to re-derive the §4.2
// Student-t observation std in O(1) per slide: Σx and Σx² for the mean and
// the noise model, and the sum of squared successive differences (the
// mean-squared-successive-difference spread estimator) for the t std.
type eventRing struct {
	buf  []float64
	head int
	n    int
	sum  float64
	sq   float64
	ssd  float64
}

//bayesperf:hotpath
func (e *eventRing) push(x float64) {
	if e.n > 0 {
		d := x - e.buf[(e.head+e.n-1)%len(e.buf)]
		e.ssd += d * d
	}
	e.buf[(e.head+e.n)%len(e.buf)] = x
	e.n++
	e.sum += x
	e.sq += x * x
}

//bayesperf:hotpath
func (e *eventRing) pop() {
	first := e.buf[e.head]
	if e.n > 1 {
		d := e.buf[(e.head+1)%len(e.buf)] - first
		e.ssd -= d * d
	}
	e.head = (e.head + 1) % len(e.buf)
	e.n--
	e.sum -= first
	e.sq -= first * first
	if e.n == 0 {
		// Re-zero exactly so float drift cannot accumulate across an
		// event's long absences.
		e.sum, e.sq, e.ssd = 0, 0, 0
	}
}

// ordered appends the ring's values in arrival order to dst[:0].
func (e *eventRing) ordered(dst []float64) []float64 {
	dst = dst[:0]
	for i := 0; i < e.n; i++ {
		dst = append(dst, e.buf[(e.head+i)%len(e.buf)])
	}
	return dst
}

// Window is the sliding accumulator of the streaming engine: it ingests the
// last size intervals' multiplexed samples and derives, per event, the
// scaled window total and its Student-t observation std incrementally —
// each slide is O(live events), not O(window).
type Window struct {
	cat     *uarch.Catalog
	size    int
	samples []measure.IntervalSample // ring of the intervals in the window
	head    int
	n       int
	ev      []eventRing
	scratch []float64 // Gumbel-rejection snapshot buffer
}

// NewWindow builds an empty window accumulator of the given span.
func NewWindow(cat *uarch.Catalog, size int) *Window {
	w := &Window{
		cat:     cat,
		size:    size,
		samples: make([]measure.IntervalSample, size),
		ev:      make([]eventRing, cat.NumEvents()),
		scratch: make([]float64, 0, size),
	}
	for i := range w.ev {
		w.ev[i].buf = make([]float64, size)
	}
	return w
}

// Len returns the number of intervals currently in the window.
func (w *Window) Len() int { return w.n }

// Span returns the half-open interval range [start, end) the window covers.
func (w *Window) Span() (start, end int) {
	if w.n == 0 {
		return 0, 0
	}
	start = w.samples[w.head].T
	return start, start + w.n
}

// finite reports whether x is a usable reading (neither NaN nor ±Inf).
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Push slides the window forward by one interval: the oldest interval's
// samples are retired (once the window is full) and the new interval's
// counted values are folded in. Non-finite readings (counter corruption)
// never enter the rings: a single NaN — or an Inf, whose eviction leaves
// Inf − Inf = NaN behind — would permanently poison the running sums long
// after the reading itself slid out of the window. The skip is mirrored
// on the eviction side so push/pop stay symmetric.
//
//bayesperf:hotpath
func (w *Window) Push(s measure.IntervalSample) {
	if w.n == w.size {
		old := w.samples[w.head]
		for i, id := range old.Events {
			if finite(old.Values[i]) {
				w.ev[id].pop()
			}
		}
		w.head = (w.head + 1) % w.size
		w.n--
	}
	w.samples[(w.head+w.n)%w.size] = s
	w.n++
	for i, id := range s.Events {
		if finite(s.Values[i]) {
			w.ev[id].push(s.Values[i])
		}
	}
}

// lastIsOutlier reports whether the most recently pushed value of the
// event sits above the Gumbel q-quantile fitted (by moments, from the
// ring's running sums) to the event's current in-window samples — the O(1)
// streaming form of stats.GumbelFilterMax's test, used to decide whether a
// live sample deserves full noise precision in the stitched trace.
func (w *Window) lastIsOutlier(id uarch.EventID, q float64) bool {
	er := &w.ev[id]
	if er.n < 4 || q <= 0 || q >= 1 {
		return false
	}
	n := float64(er.n)
	variance := (er.sq - er.sum*er.sum/n) / (n - 1)
	if variance <= 0 {
		return false
	}
	mu, beta := stats.GumbelFitFromMoments(er.sum/n, math.Sqrt(variance))
	last := er.buf[(er.head+er.n-1)%len(er.buf)]
	return last > stats.GumbelQuantile(q, mu, beta)
}

// windowJob is an immutable snapshot of one window's observations, handed
// to a pool worker for inference.
type windowJob struct {
	index      int
	start, end int
	obsMean    []float64 // extrapolated window total per event
	obsStd     []float64
	// disp is the within-window per-interval dispersion (plain sample
	// std, rate units): how far one interval's value strays from the
	// window mean. Unlike the successive-difference spread behind obsStd
	// (which cancels slow phase structure on purpose), disp must keep it:
	// a window straddling a phase boundary is a poor predictor of any
	// single interval and its large sample variance is what says so. The
	// stitcher adds disp² to the obs variance when predicting an interval
	// from a window (law of total variance), which both lets a live
	// sample outweigh the window at its own interval and shifts weight
	// away from boundary-straddling windows.
	disp     []float64
	observed []bool
	// rejected is the number of readings the Gumbel outlier filter dropped
	// while deriving this snapshot (0 unless MuxConfig.GumbelReject).
	rejected int
}

// snapshot derives each event's observation from the window's running
// sums, mirroring the batch simulator's §4.2 model: inverse-coverage
// extrapolated total, Student-t std from the successive-difference spread
// (noise-only std at full coverage), optional Gumbel outlier rejection,
// and the same std floors. The returned job owns its slices.
func (w *Window) snapshot(index int, mux measure.MuxConfig) windowJob {
	ne := w.cat.NumEvents()
	start, end := w.Span()
	job := windowJob{
		index:    index,
		start:    start,
		end:      end,
		obsMean:  make([]float64, ne),
		obsStd:   make([]float64, ne),
		disp:     make([]float64, ne),
		observed: make([]bool, ne),
	}
	intervals := w.n
	for id := range w.ev {
		er := &w.ev[id]
		if er.n == 0 {
			// Never counted in this window — including the case where
			// every reading was corrupted (non-finite values are dropped
			// in Push): the invariants infer the event.
			continue
		}
		n, sum, sq, ssd := er.n, er.sum, er.sq, er.ssd
		if mux.GumbelReject {
			// The rings hold only finite values, so the filter always
			// keeps at least one reading.
			kept, rejected := stats.GumbelFilterMax(er.ordered(w.scratch), mux.RejectQuantile())
			job.rejected += rejected
			if rejected > 0 {
				n, sum, sq, ssd = len(kept), 0, 0, 0
				for i, x := range kept {
					sum += x
					sq += x * x
					if i > 0 {
						d := x - kept[i-1]
						ssd += d * d
					}
				}
			}
		}
		mean := sum / float64(n)
		total := mean * float64(intervals)

		var std, disp float64
		if n >= 2 {
			disp = math.Sqrt(math.Max(sq-sum*sum/float64(n), 0) / float64(n-1))
		} else {
			disp = math.Abs(mean) // a lone sample: stay maximally vague
		}
		// Floor disp the same way obsStd is floored below: a lone zero
		// sample (or a constant run of zeros) would otherwise leave
		// disp = 0 and let the stitcher treat the window as a perfect
		// predictor of every interval it covers.
		if floor := mux.StdFloorFrac * math.Abs(mean); disp < floor {
			disp = floor
		}
		if disp == 0 { //bayesvet:bitwise exact-zero sentinel for a constant window
			disp = 1 // all-zero event: unit count dispersion
		}
		switch {
		case n < 2:
			// A lone sample carries no spread information: claim 100%
			// relative uncertainty on the extrapolated total.
			std = math.Abs(total)
		case n == intervals:
			// Full coverage: the total is a straight sum, so only the
			// per-interval measurement noise remains: Σ(noise·xᵢ)².
			std = mux.NoiseFrac * math.Sqrt(math.Max(sq, 0))
		default:
			spread := math.Sqrt(math.Max(ssd, 0) / (2 * float64(n-1)))
			std = measure.TObsStd(spread, n, intervals)
		}
		if floor := mux.StdFloorFrac * math.Abs(total); std < floor {
			std = floor
		}
		if std == 0 { //bayesvet:bitwise exact-zero sentinel for a constant window
			std = 1 // all-zero event: unit count uncertainty
		}
		job.obsMean[id] = total
		job.obsStd[id] = std
		job.disp[id] = disp
		job.observed[id] = true
	}
	return job
}
