package stream

import (
	"log"

	"bayesperf/internal/obs"
)

// warnf is the engine's one-line warning sink, a package variable so tests
// can capture it.
var warnf = log.Printf

// engineMetrics is the stream layer's instrument set. It is held by value:
// the zero value (metrics off) carries nil instruments whose methods —
// including span starts — are free no-ops, so the engine records
// unconditionally without branching on a registry.
type engineMetrics struct {
	intervals    *obs.Counter
	windows      *obs.Counter
	batches      *obs.Counter
	fillRatio    *obs.Histogram
	gumbel       *obs.Counter
	liveOutliers *obs.Counter

	// Per-stage latency histograms along the ingest → window-snapshot →
	// batch-dispatch → infer-sweep → stitch → report path, one observation
	// per stage execution (per interval, window, batch, batch, window, and
	// run respectively).
	stIngest   *obs.Histogram
	stSnapshot *obs.Histogram
	stDispatch *obs.Histogram
	stInfer    *obs.Histogram
	stStitch   *obs.Histogram
	stReport   *obs.Histogram
}

// newEngineMetrics registers the stream-layer instruments on r (eagerly, so
// a snapshot taken before any traffic still lists every metric at zero); a
// nil registry returns the zero (metrics-off) set.
func newEngineMetrics(r *obs.Registry) engineMetrics {
	if r == nil {
		return engineMetrics{}
	}
	stage := func(name string) *obs.Histogram {
		return r.Histogram("bayesperf_stream_stage_seconds",
			"Latency per pipeline stage execution (ingest=interval sampled 1-in-16, snapshot/stitch=window sampled 1-in-8, dispatch/infer=batch, report=run).",
			obs.LatencyBuckets(), obs.Label{Key: "stage", Value: name})
	}
	return engineMetrics{
		intervals: r.Counter("bayesperf_stream_intervals_total",
			"Interval samples ingested by the streaming engine."),
		windows: r.Counter("bayesperf_stream_windows_total",
			"Sliding windows snapshotted and dispatched for inference."),
		batches: r.Counter("bayesperf_stream_batches_total",
			"Window batches handed to the inference worker pool."),
		fillRatio: r.Histogram("bayesperf_stream_batch_fill_ratio",
			"Fraction of a dispatched batch's lanes actually filled with windows (partial batches come from Flush/Finish).",
			obs.RatioBuckets()),
		gumbel: r.Counter("bayesperf_stream_gumbel_rejected_total",
			"Window readings rejected by the Gumbel outlier filter at snapshot time."),
		liveOutliers: r.Counter("bayesperf_stream_live_outliers_total",
			"Live samples denied full noise precision by the streaming Gumbel test."),
		stIngest:   stage("ingest"),
		stSnapshot: stage("snapshot"),
		stDispatch: stage("dispatch"),
		stInfer:    stage("infer"),
		stStitch:   stage("stitch"),
		stReport:   stage("report"),
	}
}
