package stream

import (
	"math"
	"strconv"
	"testing"

	"bayesperf/internal/measure"
	"bayesperf/internal/rng"
	"bayesperf/internal/timeseries"
	"bayesperf/internal/uarch"
)

// fastStreamTol bounds the stitched fast-vs-exact drift of the posterior
// mean and std series. It inherits the graph-level accuracy gate
// (fastAccuracyTol in internal/graph) with one decade of headroom for the
// stitcher's hop-overlap averaging accumulating per-window deltas.
const fastStreamTol = 1e-6

// fastDerivedStdTol bounds the covariance-aware derived-event posterior
// std series. It is looser than fastStreamTol because that series consumes
// clique correlations, and a correlation whose cavity precision sits near
// the vanishing floor is ill-conditioned in both kernels (see the
// conditioning note on the graph-level accuracy gate); the bound asserts
// the drift stays below anything a consumer of an uncertainty band could
// perceive, not bit-level agreement.
const fastDerivedStdTol = 1e-3

// TestStreamFastMathAccuracy: a -fast streaming run must stitch the same
// story as the exact kernel on the same trace — every corrected event
// series (means and stds) within fastStreamTol relative, every derived
// posterior series within its gate — with covariance-aware derived stds on.
func TestStreamFastMathAccuracy(t *testing.T) {
	for _, arch := range []*uarch.Catalog{uarch.Skylake(), uarch.Power9()} {
		tr := measure.GroundTruth(arch, measure.DefaultWorkload(60), rng.New(5))
		runWith := func(fast bool) *Result {
			cfg := testConfig(2)
			cfg.Covariance = true
			cfg.FastMath = fast
			return RunTrace(tr, measure.NewRoundRobin(arch), cfg, rng.New(6))
		}
		exact := runWith(false)
		fast := runWith(true)
		if fast.Windows != exact.Windows || fast.Intervals != exact.Intervals {
			t.Fatalf("%s: fast shape %d/%d vs exact %d/%d", arch.Arch,
				fast.Windows, fast.Intervals, exact.Windows, exact.Intervals)
		}
		within := func(name string, a, b []timeseries.Series, tol float64) {
			t.Helper()
			for id := range b {
				for ti := range b[id] {
					d := math.Abs(a[id][ti]-b[id][ti]) / math.Max(math.Abs(b[id][ti]), 1)
					if d > tol || math.IsNaN(a[id][ti]) {
						t.Fatalf("%s: %s[%d][%d] = %v, exact %v (rel delta %.3g > %g)",
							arch.Arch, name, id, ti, a[id][ti], b[id][ti], d, tol)
					}
				}
			}
		}
		within("corrected", fast.Corrected, exact.Corrected, fastStreamTol)
		within("correctedStd", fast.CorrectedStd, exact.CorrectedStd, fastStreamTol)
		within("derivedCorrected", fast.DerivedCorrected, exact.DerivedCorrected, fastStreamTol)
		within("derivedCorrectedStd", fast.DerivedCorrectedStd, exact.DerivedCorrectedStd, fastDerivedStdTol)
	}
}

// TestStreamFastMathDeterministic pins the fast schedule's streaming
// contract: like the exact kernel, its stitched output is bit-identical
// for any worker count × batch width (the fast kernel is lane-invariant,
// so no grouping of windows into Execute calls may leak into the result).
func TestStreamFastMathDeterministic(t *testing.T) {
	cat := uarch.Skylake()
	tr := measure.GroundTruth(cat, measure.DefaultWorkload(60), rng.New(5))
	var base *Result
	var baseLabel string
	for _, batch := range []int{1, 3, 8, 64} {
		for _, workers := range []int{1, 4} {
			cfg := testConfig(workers)
			cfg.Batch = batch
			cfg.Covariance = true
			cfg.FastMath = true
			label := "batch=" + strconv.Itoa(batch) + " workers=" + strconv.Itoa(workers)
			res := RunTrace(tr, measure.NewRoundRobin(cat), cfg, rng.New(6))
			if base == nil {
				base, baseLabel = res, label
				continue
			}
			if res.Windows != base.Windows || res.Intervals != base.Intervals {
				t.Fatalf("%s: shape %d/%d vs %s %d/%d", label,
					res.Windows, res.Intervals, baseLabel, base.Windows, base.Intervals)
			}
			check := func(name string, a, b []timeseries.Series) {
				t.Helper()
				for id := range b {
					for ti := range b[id] {
						if a[id][ti] != b[id][ti] {
							t.Fatalf("%s: %s[%d][%d] = %v, want %v (%s)",
								label, name, id, ti, a[id][ti], b[id][ti], baseLabel)
						}
					}
				}
			}
			check("corrected", res.Corrected, base.Corrected)
			check("correctedStd", res.CorrectedStd, base.CorrectedStd)
			check("derivedCorrected", res.DerivedCorrected, base.DerivedCorrected)
			check("derivedCorrectedStd", res.DerivedCorrectedStd, base.DerivedCorrectedStd)
			if res.PostRelStd != base.PostRelStd {
				t.Errorf("%s: posterior-std pool diverged from %s", label, baseLabel)
			}
		}
	}
}
