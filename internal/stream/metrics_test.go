package stream

import (
	"fmt"
	"math"
	"testing"

	"bayesperf/internal/measure"
	"bayesperf/internal/obs"
	"bayesperf/internal/rng"
	"bayesperf/internal/uarch"
)

// TestStreamMetricsEndToEnd runs a full stream with a live registry and
// checks the recorded instrumentation is internally consistent: counters
// agree with the Result, the batch fill ratio stays in (0, 1], stage
// latencies accumulated real time, and unconverged never exceeds windows.
func TestStreamMetricsEndToEnd(t *testing.T) {
	cat := uarch.Skylake()
	tr := measure.GroundTruth(cat, measure.DefaultWorkload(60), rng.New(3))
	cfg := testConfig(2)
	cfg.Batch = 8
	reg := obs.NewRegistry()
	cfg.Metrics = reg

	res := RunTrace(tr, measure.NewRoundRobin(cat), cfg, rng.New(5))
	snap := reg.Snapshot()

	counter := func(name string, labels ...obs.Label) uint64 {
		t.Helper()
		m := snap.Find(name, labels...)
		if m == nil {
			t.Fatalf("metric %s%v not in snapshot", name, labels)
		}
		return uint64(m.Value)
	}

	if got := counter("bayesperf_stream_intervals_total"); got != uint64(res.Intervals) {
		t.Errorf("intervals counter = %d, want %d", got, res.Intervals)
	}
	if got := counter("bayesperf_stream_windows_total"); got != uint64(res.Windows) {
		t.Errorf("windows counter = %d, want %d", got, res.Windows)
	}
	if got := counter("bayesperf_graph_windows_total"); got != uint64(res.Windows) {
		t.Errorf("graph windows counter = %d, want %d", got, res.Windows)
	}
	if got := counter("bayesperf_graph_kernel_windows_total", obs.Label{Key: "kernel", Value: "exact"}); got != uint64(res.Windows) {
		t.Errorf("exact-kernel windows = %d, want %d", got, res.Windows)
	}
	if got := counter("bayesperf_graph_sweeps_total"); got != uint64(res.TotalSweeps) {
		t.Errorf("sweeps counter = %d, want Result.TotalSweeps %d", got, res.TotalSweeps)
	}
	unconv := counter("bayesperf_graph_unconverged_windows_total")
	if unconv != uint64(res.Unconverged) {
		t.Errorf("unconverged counter = %d, want Result.Unconverged %d", unconv, res.Unconverged)
	}
	if unconv > uint64(res.Windows) {
		t.Errorf("unconverged %d > windows %d", unconv, res.Windows)
	}
	if res.AllConverged != (res.Unconverged == 0) {
		t.Errorf("AllConverged=%v inconsistent with Unconverged=%d", res.AllConverged, res.Unconverged)
	}
	if res.TotalSweeps <= 0 {
		t.Errorf("TotalSweeps = %d, want > 0", res.TotalSweeps)
	}

	fill := snap.Find("bayesperf_stream_batch_fill_ratio")
	if fill == nil || fill.Count == 0 {
		t.Fatal("batch fill ratio histogram missing or empty")
	}
	// Every observation is a fraction of a batch actually filled: (0, 1].
	if fill.Sum <= 0 || fill.Sum > float64(fill.Count) {
		t.Errorf("fill ratio sum %v outside (0, count=%d]", fill.Sum, fill.Count)
	}

	stitch := snap.Find("bayesperf_stream_stage_seconds", obs.Label{Key: "stage", Value: "stitch"})
	if stitch == nil || stitch.Count == 0 {
		t.Fatal("stitch stage histogram missing or empty")
	}
	if stitch.Sum <= 0 {
		t.Errorf("stitch latency sum = %v, want > 0", stitch.Sum)
	}
	infer := snap.Find("bayesperf_stream_stage_seconds", obs.Label{Key: "stage", Value: "infer"})
	if infer == nil || infer.Count == 0 || infer.Sum <= 0 {
		t.Fatal("infer stage histogram missing, empty, or zero-time")
	}
}

// TestStreamMetricsDoNotChangeResults pins the instrumentation invariant:
// attaching a registry must leave every output bit identical.
func TestStreamMetricsDoNotChangeResults(t *testing.T) {
	cat := uarch.Skylake()
	tr := measure.GroundTruth(cat, measure.DefaultWorkload(40), rng.New(7))
	run := func(reg *obs.Registry) *Result {
		cfg := testConfig(2)
		cfg.Metrics = reg
		return RunTrace(tr, measure.NewRoundRobin(cat), cfg, rng.New(9))
	}
	plain, instr := run(nil), run(obs.NewRegistry())
	for id := range plain.Corrected {
		for ti := range plain.Corrected[id] {
			if plain.Corrected[id][ti] != instr.Corrected[id][ti] ||
				plain.CorrectedStd[id][ti] != instr.CorrectedStd[id][ti] {
				t.Fatalf("event %d interval %d: metrics changed the posterior", id, ti)
			}
		}
	}
	if plain.TotalSweeps != instr.TotalSweeps || plain.Unconverged != instr.Unconverged {
		t.Errorf("sweep accounting differs: %d/%d vs %d/%d",
			plain.TotalSweeps, plain.Unconverged, instr.TotalSweeps, instr.Unconverged)
	}
}

// TestStreamDropWarningOnce checks the non-finite-drop path: the drop
// counter sees every corrupted reading, but the log warning fires exactly
// once per stream.
func TestStreamDropWarningOnce(t *testing.T) {
	cat := uarch.Skylake()
	tr := measure.GroundTruth(cat, measure.DefaultWorkload(30), rng.New(3))
	id := cat.MustEvent("INST_RETIRED.ANY") // fixed counter: counted every interval
	tr.Series[id][5] = math.NaN()
	tr.Series[id][6] = math.Inf(1)

	var warnings []string
	orig := warnf
	warnf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	defer func() { warnf = orig }()

	reg := obs.NewRegistry()
	cfg := testConfig(1)
	cfg.Metrics = reg
	RunTrace(tr, measure.NewRoundRobin(cat), cfg, rng.New(5))

	if len(warnings) != 1 {
		t.Fatalf("got %d drop warnings, want exactly 1: %q", len(warnings), warnings)
	}
	snap := reg.Snapshot()
	m := snap.Find("bayesperf_measure_dropped_nonfinite_total")
	if m == nil || m.Value < 2 {
		t.Errorf("dropped counter = %+v, want >= 2 (both corrupted readings)", m)
	}
}

// TestStreamDropWarningSilentWithoutMetrics: the warning rides the obs
// path but must fire with or without a registry — it is the operator's
// only signal when metrics are off.
func TestStreamDropWarningSilentCounter(t *testing.T) {
	cat := uarch.Skylake()
	tr := measure.GroundTruth(cat, measure.DefaultWorkload(20), rng.New(3))
	tr.Series[cat.MustEvent("INST_RETIRED.ANY")][4] = math.NaN()

	calls := 0
	orig := warnf
	warnf = func(string, ...any) { calls++ }
	defer func() { warnf = orig }()

	RunTrace(tr, measure.NewRoundRobin(cat), testConfig(1), rng.New(5))
	if calls != 1 {
		t.Errorf("metrics-off stream warned %d times, want 1", calls)
	}
}
