//go:build !amd64

package graph

// hasFastVec reports vector-kernel support; only the amd64 AVX2 kernel
// exists, so every other architecture runs the portable scalar schedule.
func hasFastVec() bool { return false }

// sweepFastVec is unreachable off amd64 (fastVecEnabled is always false
// there); the stub keeps sweepFast's dispatch portable.
func (b *Batch) sweepFastVec(n, maxIter int, tol float64) {
	panic("graph: vector fast kernel unavailable on this architecture")
}
