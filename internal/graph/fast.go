// The fast-math message schedule. The exact kernel (sweepExact) gathers,
// for every edge of a relation, the cavity moments of every *sibling* edge
// — an O(k²) walk per relation per sweep in which each cavity precision is
// re-inverted once per sibling. The fast schedule restructures the same
// fixed-point update into two O(k) passes per relation:
//
//  1. a backward cavity pass computes each edge's cavity moments (mean,
//     variance) exactly once — one precision inversion per edge — records
//     the weighted contributions w_mu = c·m and w_var = c²·v, and, running
//     j = k−1…0, also records each edge's *suffix* sums Σ_{j'>j} w;
//  2. a forward update pass accumulates the matching *prefix* sums
//     Σ_{j'<j} w, so each edge's sibling aggregate is prefix + suffix —
//     built from additions only, never by subtracting the edge out of a
//     grand total, which kills the catastrophic-cancellation hazard of a
//     pegged 1/minPrec cavity shadowing its tiny siblings. The damped
//     message then folds in with a single divide per edge: the
//     natural-parameter form of the new message is (c²/varJ, −c·muJ/varJ),
//     so no intermediate moments conversion.
//
// Convergence is detected without divisions: |h/p − h₀/p₀| < tol is tested
// as |h·p₀ − h₀·p| < tol·p·p₀ against the previous sweep's stored belief
// naturals (guarded the same way moments guards vanishing precision).
//
// Within one relation's pass the cavities are all read before any of the
// relation's messages update (Jacobi within the factor, Gauss–Seidel across
// factors). Updating edge e leaves its own cavity belief−msg unchanged, so
// on relations whose terms name distinct events — every shipped catalog —
// the two schedules compute the same mathematical update and differ only in
// floating-point summation order. The posteriors therefore agree with the
// exact kernel to a tight relative tolerance, not bit for bit;
// TestFastMathAccuracyDelta pins that delta on all four catalogs, including
// unconverged budgets and covariance mode.
//
// On amd64 hosts with AVX2+FMA the whole sweep runs in a hand-written
// vector kernel (fast_amd64.s) processing four lanes per instruction —
// this is where the fast schedule's headline speedup comes from, since gc
// does not auto-vectorize floating-point loops. The pure-Go schedule below
// is the portable fallback and the reference for the vector kernel's
// structure. Both are lane-invariant bit for bit within themselves (a
// lane's posterior does not depend on the batch width or its neighbors),
// but the two implementations agree with each other — and with the exact
// kernel — only to the accuracy gate's tolerance: the vector kernel's FMA
// contractions round differently from scalar multiply-then-add.
package graph

import "math"

// maxVar is the cavity variance assigned below the vanishing-precision
// floor, matching natural.moments' guard.
const maxVar = 1 / minPrec

// ensureFastScratch sizes the scalar schedule's per-relation scratch and
// the prev-belief slabs on first use (or after a wider plan); steady-state
// sweeps reuse them, which is what lets sweepFast carry the hotpath
// annotation.
func (b *Batch) ensureFastScratch(maxK, nvB int) {
	if len(b.fastWM) < maxK {
		b.fastWM = make([]float64, maxK)
		b.fastWV = make([]float64, maxK)
		b.fastSM = make([]float64, maxK)
		b.fastSV = make([]float64, maxK)
		b.fastC = make([]float64, maxK)
		b.fastRow = make([]int, maxK)
		b.fastMsg = make([]int, maxK)
	}
	if len(b.prevP) < nvB {
		b.prevP = make([]float64, nvB)
		b.prevH = make([]float64, nvB)
	}
}

// fastVecEnabled gates the AVX2 kernel at runtime: CPU support detected on
// amd64 (fast_amd64.go), always false elsewhere. Tests flip it to exercise
// the portable schedule on vector-capable hosts.
var fastVecEnabled = hasFastVec()

// sweepFast runs the fused-cavity fast schedule on the first n lanes until
// per-lane convergence or maxIter, with the same freeze-on-convergence
// semantics as sweepExact. Lane posteriors are independent of n and of the
// batch width, bit for bit (TestFastMathLaneInvariance) — the vector kernel
// preserves this because its arithmetic is elementwise per lane.
//
//bayesperf:hotpath
func (b *Batch) sweepFast(n, maxIter int, tol float64) {
	p := b.plan
	nv, B := p.nv, b.stride
	maxK := p.maxCliqueSize()
	b.ensureFastScratch(maxK, nv*B)
	copy(b.prevP, b.beliefPrec)
	copy(b.prevH, b.beliefH)

	// The vector kernel's per-relation scratch lives in fixed 8-slot stack
	// arrays; catalogs with wider cliques fall back to the scalar schedule.
	if fastVecEnabled && maxK <= 8 {
		b.sweepFastVec(n, maxIter, tol)
		return
	}

	active := b.active[:n]
	remaining := n
	wm, wv, sm, sv, cc := b.fastWM, b.fastWV, b.fastSM, b.fastSV, b.fastC
	rowJ, msgJ := b.fastRow, b.fastMsg
	bPrec, bH := b.beliefPrec, b.beliefH
	mPrec, mH := b.msgPrec, b.msgH
	moved := b.maxDelta[:n] // 0/1 flag per lane: any mean moved ≥ tol
	for it := 1; it <= maxIter && remaining > 0; it++ {
		for ri := 0; ri < p.nRels; ri++ {
			eStart := p.factorOff[ri]
			k := p.factorOff[ri+1] - eStart
			// Hoist the per-edge indices and coefficients out of the lane
			// loop: they are sweep- and lane-invariant.
			for j := 0; j < k; j++ {
				e := eStart + j
				cc[j] = p.edgeCoeff[e]
				rowJ[j] = p.edgeVar[e] * B
				msgJ[j] = e * B
			}
			rv := b.relVar[ri*B : ri*B+n : ri*B+n]
			for lane := 0; lane < n; lane++ {
				if !active[lane] {
					continue
				}
				// Backward cavity pass: moments once per edge, weighted
				// contributions and suffix sums into stack scratch.
				accM, accV := 0.0, 0.0
				for j := k - 1; j >= 0; j-- {
					c := cc[j]
					cp := bPrec[rowJ[j]+lane] - mPrec[msgJ[j]+lane]
					mm, vv := 0.0, maxVar
					if cp >= minPrec {
						vv = 1 / cp
						mm = (bH[rowJ[j]+lane] - mH[msgJ[j]+lane]) * vv
					}
					sm[j] = accM
					sv[j] = accV
					w := c * mm
					wm[j] = w
					accM += w
					w = c * c * vv
					wv[j] = w
					accV += w
				}
				// Forward update pass: sibling aggregate = prefix + suffix,
				// one divide per edge, damped natural-parameter fold into
				// belief + message.
				preM, preV := 0.0, 0.0
				for j := 0; j < k; j++ {
					c := cc[j]
					muJ := preM + sm[j]
					varJ := rv[lane] + (preV + sv[j])
					preM += wm[j]
					preV += wv[j]
					inv := 1 / varJ
					newP := c * c * inv
					newH := -c * muJ * inv
					mi := msgJ[j] + lane
					oldP, oldH := mPrec[mi], mH[mi]
					dampedP := damping*newP + (1-damping)*oldP
					dampedH := damping*newH + (1-damping)*oldH
					bi := rowJ[j] + lane
					bPrec[bi] += dampedP - oldP
					bH[bi] += dampedH - oldH
					mPrec[mi] = dampedP
					mH[mi] = dampedH
				}
			}
		}
		// Convergence pass, divide-free: compare each belief mean against
		// the previous sweep's via cross-multiplication, honoring the
		// vanishing-precision guard (prec < minPrec reads as mean 0). The
		// guarded branch is overwhelmingly taken and per-slot stable, so it
		// predicts well; math.Abs compiles to a branchless intrinsic.
		for lane := range moved {
			moved[lane] = 0
		}
		for i := 0; i < nv; i++ {
			row := i * B
			bp := bPrec[row : row+n : row+n]
			bh := bH[row : row+n : row+n]
			pp := b.prevP[row : row+n : row+n]
			ph := b.prevH[row : row+n : row+n]
			for lane := 0; lane < n; lane++ {
				if !active[lane] {
					continue
				}
				pNew, hNew := bp[lane], bh[lane]
				pOld, hOld := pp[lane], ph[lane]
				pp[lane] = pNew
				ph[lane] = hNew
				if pNew >= minPrec && pOld >= minPrec {
					if math.Abs(hNew*pOld-hOld*pNew) >= tol*pNew*pOld {
						moved[lane] = 1
					}
				} else if pNew >= minPrec {
					if math.Abs(hNew) >= tol*pNew {
						moved[lane] = 1
					}
				} else if pOld >= minPrec {
					if math.Abs(hOld) >= tol*pOld {
						moved[lane] = 1
					}
				}
				// Both flat: mean pinned at 0, no movement.
			}
		}
		for lane := range active {
			if active[lane] && moved[lane] == 0 { //bayesvet:bitwise moved is a 0/1 flag slab, assigned never computed
				active[lane] = false
				b.converged[lane] = true
				b.iters[lane] = it
				remaining--
			}
		}
	}
}
