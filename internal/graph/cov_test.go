package graph

import (
	"math"
	"testing"

	"bayesperf/internal/rng"
	"bayesperf/internal/uarch"
)

// toyCatalog builds a catalog from a spec, failing the test on error.
func toyCatalog(t *testing.T, spec uarch.Spec) *uarch.Catalog {
	t.Helper()
	cat, err := spec.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestCliqueCovarianceGolden2x2 pins the clique covariance on the smallest
// possible clique — a two-event relation A − B ≈ 0 — against the
// hand-computed joint posterior: with observation precisions p_A, p_B and
// factor noise σ_r², the joint precision matrix is
//
//	Λ = [[p_A + 1/σ_r², −1/σ_r²], [−1/σ_r², p_B + 1/σ_r²]]
//
// whose inverse's off-diagonal is (1/σ_r²)/det(Λ). The factor graph's
// Sherman–Morrison extraction must reproduce that number (and its
// positive-correlation sign: an equality invariant ties the pair together).
func TestCliqueCovarianceGolden2x2(t *testing.T) {
	const relTol = 0.05
	cat := toyCatalog(t, uarch.Spec{
		Arch: "toy-2x2", ProgCounters: 2,
		Events: []uarch.EventSpec{{Name: "A"}, {Name: "B"}},
		Relations: []uarch.RelationSpec{{
			Name: "equal", RelTol: relTol,
			Terms: []uarch.TermSpec{{Event: "A", Coeff: 1}, {Event: "B", Coeff: -1}},
		}},
	})
	a, sa := 2.0e8, 0.04*2.0e8
	b, sb := 1.9e8, 0.02*1.9e8
	g := Build(cat)
	g.Observe(cat.MustEvent("A"), a, sa)
	g.Observe(cat.MustEvent("B"), b, sb)
	res := g.Infer(500, 1e-12)
	if !res.Converged {
		t.Fatalf("toy graph did not converge in %d iters", res.Iters)
	}

	// Hand-computed joint posterior, mirroring the engine's scaled units.
	scale := math.Max(math.Abs(a), math.Abs(b)) // both > 1
	as, bs := a/scale, b/scale
	sas, sbs := sa/scale, sb/scale
	const priorPrec = 1e-12
	pA := priorPrec + 1/(sas*sas)
	pB := priorPrec + 1/(sbs*sbs)
	mag := (math.Abs(as) + math.Abs(bs)) / 2
	relVar := (relTol * mag) * (relTol * mag)
	lamA, lamB, lamAB := pA+1/relVar, pB+1/relVar, -1/relVar
	det := lamA*lamB - lamAB*lamAB
	wantCovAB := (1 / relVar) / det * scale * scale
	wantVarA := lamB / det * scale * scale
	wantVarB := lamA / det * scale * scale

	idA, idB := cat.MustEvent("A"), cat.MustEvent("B")
	gotAB := res.Cov(idA, idB)
	if e := math.Abs(gotAB-wantCovAB) / wantCovAB; e > 1e-9 {
		t.Errorf("Cov(A,B) = %g, hand-computed %g (rel err %g)", gotAB, wantCovAB, e)
	}
	if res.Cov(idB, idA) != gotAB {
		t.Errorf("Cov not symmetric: %g vs %g", res.Cov(idB, idA), gotAB)
	}
	if gotAB <= 0 {
		t.Errorf("equality-coupled pair has non-positive covariance %g", gotAB)
	}
	// The marginal posterior variances must agree with the same joint
	// (single factor ⇒ BP is exact here).
	if e := math.Abs(res.Std[idA]*res.Std[idA]-wantVarA) / wantVarA; e > 1e-6 {
		t.Errorf("Var(A) = %g, joint inverse %g (rel err %g)", res.Std[idA]*res.Std[idA], wantVarA, e)
	}
	if e := math.Abs(res.Std[idB]*res.Std[idB]-wantVarB) / wantVarB; e > 1e-6 {
		t.Errorf("Var(B) = %g, joint inverse %g (rel err %g)", res.Std[idB]*res.Std[idB], wantVarB, e)
	}
	rho := res.Corr(idA, idB)
	wantRho := wantCovAB / math.Sqrt(wantVarA*wantVarB)
	if math.Abs(rho-wantRho) > 1e-6 {
		t.Errorf("Corr(A,B) = %g, want %g", rho, wantRho)
	}
	if rho <= 0 || rho >= 1 {
		t.Errorf("Corr(A,B) = %g, want in (0,1)", rho)
	}
	// Events outside any shared clique carry no tracked covariance.
	if got := res.Cov(idA, idA); got != res.Std[idA]*res.Std[idA] {
		t.Errorf("Cov(A,A) = %g, want marginal variance %g", got, res.Std[idA]*res.Std[idA])
	}
}

// ipcToyCatalog is the covariance-aware IPC fixture: instructions are
// decomposed into two components pinned by a tightly measured total
// (inst = comp_a + comp_b), so the components' posteriors are negatively
// correlated, and IPC is declared over the components —
// IPC = (comp_a + comp_b)/cycles. The diagonal delta method adds the
// components' variances as if independent and over-counts; the clique
// covariance restores the cancellation.
func ipcToyCatalog(t *testing.T) *uarch.Catalog {
	return toyCatalog(t, uarch.Spec{
		Arch: "toy-ipc", ProgCounters: 4,
		Events: []uarch.EventSpec{
			{Name: "inst"}, {Name: "comp_a"}, {Name: "comp_b"}, {Name: "cycles"},
		},
		Relations: []uarch.RelationSpec{{
			Name: "inst_split", RelTol: 0.001,
			Terms: []uarch.TermSpec{
				{Event: "inst", Coeff: 1},
				{Event: "comp_a", Coeff: -1},
				{Event: "comp_b", Coeff: -1},
			},
		}},
		Derived: []uarch.DerivedSpec{{
			Name: "IPC", Kind: uarch.KindLinearRatio,
			Inputs: []string{"comp_a", "comp_b", "cycles"},
			Num:    []float64{1, 1, 0},
			Den:    []float64{0, 0, 1},
		}},
	})
}

// TestCovarianceAwareIPCStd is the satellite acceptance test: on
// negatively-correlated IPC inputs the covariance-aware posterior std must
// come in at or below the diagonal delta-method std, and it must agree
// with the sampled truth — the empirical std of the formula over draws
// from the joint posterior (clique covariance for the coupled pair,
// independent marginal for the uncoupled denominator).
func TestCovarianceAwareIPCStd(t *testing.T) {
	cat := ipcToyCatalog(t)
	instID := cat.MustEvent("inst")
	aID, bID := cat.MustEvent("comp_a"), cat.MustEvent("comp_b")
	cycID := cat.MustEvent("cycles")

	g := Build(cat)
	g.Observe(instID, 1.0e9, 0.001*1.0e9) // tight total pins the sum
	g.Observe(aID, 6.2e8, 0.06*6.2e8)     // loose components
	g.Observe(bID, 3.9e8, 0.05*3.9e8)
	g.Observe(cycID, 8.0e8, 0.02*8.0e8)
	res := g.Infer(500, 1e-11)
	if !res.Converged {
		t.Fatalf("toy graph did not converge in %d iters", res.Iters)
	}

	rho := res.Corr(aID, bID)
	if rho >= -0.5 {
		t.Fatalf("sum-pinned components correlate at %g, want strongly negative", rho)
	}
	if res.Corr(aID, cycID) != 0 || res.Corr(bID, cycID) != 0 {
		t.Fatalf("cycles share no clique with the components, Corr must be 0")
	}

	d := cat.DerivedByName("IPC")
	diagMean, diagStd := res.DerivedPosterior(d)
	covMean, covStd := res.DerivedPosteriorCov(d)
	if covMean != diagMean {
		t.Errorf("covariance-aware mean %g differs from diagonal %g", covMean, diagMean)
	}
	if covStd >= diagStd {
		t.Errorf("covariance-aware IPC std %g not below diagonal delta-method std %g", covStd, diagStd)
	}

	// Sampled ground truth for the std: draw (comp_a, comp_b) from the
	// clique's bivariate posterior and cycles from its independent
	// marginal, push each draw through the formula.
	muA, sdA := res.Posterior(aID)
	muB, sdB := res.Posterior(bID)
	muC, sdC := res.Posterior(cycID)
	r := rng.New(99)
	const draws = 400000
	var sum, sumSq float64
	orth := math.Sqrt(1 - rho*rho)
	for i := 0; i < draws; i++ {
		z1, z2 := r.Gaussian(0, 1), r.Gaussian(0, 1)
		xa := muA + sdA*z1
		xb := muB + sdB*(rho*z1+orth*z2)
		xc := r.Gaussian(muC, sdC)
		f := (xa + xb) / xc
		sum += f
		sumSq += f * f
	}
	mean := sum / draws
	sampledStd := math.Sqrt(sumSq/draws - mean*mean)
	if e := math.Abs(covStd-sampledStd) / sampledStd; e > 0.02 {
		t.Errorf("covariance-aware IPC std %g strays %.2f%% from sampled %g",
			covStd, 100*e, sampledStd)
	}
	// The diagonal std must NOT agree with the sampled truth here — that
	// disagreement is the whole reason to track clique covariances.
	if e := math.Abs(diagStd-sampledStd) / sampledStd; e < 0.10 {
		t.Errorf("diagonal std %g unexpectedly close to sampled %g (%.2f%%): fixture lost its correlation",
			diagStd, sampledStd, 100*e)
	}
	t.Logf("IPC std: diagonal %.4g, covariance-aware %.4g, sampled %.4g (rho=%.3f)",
		diagStd, covStd, sampledStd, rho)
}

// TestDerivedPosteriorCovUncoupledFallback: on a catalog whose derived
// inputs share no invariant (Skylake IPC — cycles take part in no
// relation), the covariance-aware propagation must reproduce the diagonal
// result bit for bit.
func TestDerivedPosteriorCovUncoupledFallback(t *testing.T) {
	cat := uarch.Skylake()
	truth := skylakeTruth(cat)
	g := Build(cat)
	for id, want := range truth {
		g.Observe(uarch.EventID(id), want, 0.01*want)
	}
	res := g.Infer(200, 1e-9)

	d := cat.DerivedByName("IPC")
	dm, ds := res.DerivedPosterior(d)
	cm, cs := res.DerivedPosteriorCov(d)
	if cm != dm || cs != ds {
		t.Errorf("uncoupled IPC: covariance-aware (%v, %v) differs from diagonal (%v, %v)", cm, cs, dm, ds)
	}

	// Branch_Misp_Rate's inputs share the branch_breakdown clique: the
	// covariance-aware std must differ (the coupling is real) yet stay
	// finite and positive.
	br := cat.DerivedByName("Branch_Misp_Rate")
	bdm, bds := res.DerivedPosterior(br)
	bcm, bcs := res.DerivedPosteriorCov(br)
	if bcm != bdm {
		t.Errorf("Branch_Misp_Rate mean changed: %v vs %v", bcm, bdm)
	}
	if bcs == bds {
		t.Errorf("branch-clique-coupled Branch_Misp_Rate std unchanged at %v", bcs)
	}
	if bcs <= 0 || math.IsNaN(bcs) || math.IsInf(bcs, 0) {
		t.Errorf("covariance-aware Branch_Misp_Rate std = %v", bcs)
	}
}
