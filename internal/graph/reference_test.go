package graph

import (
	"math"
	"path/filepath"
	"testing"

	"bayesperf/internal/rng"
	"bayesperf/internal/uarch"
)

// This file freezes the pre-compilation message-passing implementation
// (the per-window, slice-of-slices loop that shipped before the
// compile/execute refactor) verbatim, as the bit-exactness oracle: the
// legacy Build/Observe/Infer wrapper — and therefore every lane of a
// compiled batch — must reproduce its posteriors bit for bit on every
// catalog, observed subset, and inference budget.

type refObservation struct {
	mean float64
	std  float64
}

type refGraph struct {
	cat      *uarch.Catalog
	obs      []refObservation
	observed []bool
}

func refBuild(cat *uarch.Catalog) *refGraph {
	nv := cat.NumEvents()
	return &refGraph{
		cat:      cat,
		obs:      make([]refObservation, nv),
		observed: make([]bool, nv),
	}
}

func (g *refGraph) observe(id uarch.EventID, mean, std float64) {
	g.obs[id] = refObservation{mean: mean, std: std}
	g.observed[id] = true
}

// refInfer is the legacy Infer, byte-for-byte in its arithmetic.
func (g *refGraph) refInfer(maxIter int, tol float64) Result {
	nv := g.cat.NumEvents()
	rels := g.cat.Rels

	scale := 1.0
	for i, o := range g.obs {
		if g.observed[i] && math.Abs(o.mean) > scale {
			scale = math.Abs(o.mean)
		}
	}

	const priorPrec = 1e-12
	unary := make([]natural, nv)
	scaledMeans := make([]float64, nv)
	for i, o := range g.obs {
		unary[i] = natural{prec: priorPrec}
		scaledMeans[i] = 0
		if g.observed[i] {
			m, s := o.mean/scale, o.std/scale
			unary[i] = unary[i].add(fromMoments(m, s*s))
			scaledMeans[i] = m
		}
	}

	relVar := make([]float64, len(rels))
	for ri, r := range rels {
		mag := r.Magnitude(scaledMeans)
		if mag < 1e-6 {
			mag = 1e-6
		}
		sd := r.RelTol * mag
		relVar[ri] = sd * sd
	}

	msg := make([][]natural, len(rels))
	for ri, r := range rels {
		msg[ri] = make([]natural, len(r.Terms))
	}
	belief := make([]natural, nv)
	copy(belief, unary)

	means := make([]float64, nv)
	for i := range means {
		means[i], _ = belief[i].moments()
	}

	iters := 0
	converged := false
	for iters = 1; iters <= maxIter; iters++ {
		maxDelta := 0.0
		for ri, r := range rels {
			for k, t := range r.Terms {
				muJ := 0.0
				varJ := relVar[ri]
				for k2, t2 := range r.Terms {
					if k2 == k {
						continue
					}
					m, v := belief[t2.Event].sub(msg[ri][k2]).moments()
					muJ += t2.Coeff * m
					varJ += t2.Coeff * t2.Coeff * v
				}
				cj := t.Coeff
				newMsg := fromMoments(-muJ/cj, varJ/(cj*cj))
				old := msg[ri][k]
				damped := natural{
					prec: damping*newMsg.prec + (1-damping)*old.prec,
					h:    damping*newMsg.h + (1-damping)*old.h,
				}
				belief[t.Event] = belief[t.Event].sub(old).add(damped)
				msg[ri][k] = damped
			}
		}
		for i := range means {
			m, _ := belief[i].moments()
			if d := math.Abs(m - means[i]); d > maxDelta {
				maxDelta = d
			}
			means[i] = m
		}
		if maxDelta < tol {
			converged = true
			break
		}
	}
	if iters > maxIter {
		iters = maxIter
	}

	res := Result{
		Mean:      make([]float64, nv),
		Std:       make([]float64, nv),
		Iters:     iters,
		Converged: converged,
	}
	for i := range res.Mean {
		m, v := belief[i].moments()
		res.Mean[i] = m * scale
		res.Std[i] = math.Sqrt(v) * scale
	}
	return res
}

// identityCatalogs returns every catalog the bit-identity contract is
// asserted on: both builder catalogs plus the JSON specs shipped under
// examples/catalogs.
func identityCatalogs(t *testing.T) []*uarch.Catalog {
	t.Helper()
	cats := uarch.Catalogs()
	for _, file := range []string{"zen.json", "neoverse.json"} {
		spec, err := uarch.LoadSpecFile(filepath.Join("..", "..", "examples", "catalogs", file))
		if err != nil {
			t.Fatalf("loading %s: %v", file, err)
		}
		cat, err := spec.Catalog()
		if err != nil {
			t.Fatalf("building %s: %v", file, err)
		}
		cats = append(cats, cat)
	}
	return cats
}

// observeRound observes a pseudo-random subset of events with noisy values
// on all targets identically. Roughly one event in six stays unobserved.
func observeRound(cat *uarch.Catalog, r *rng.Rand, observe func(id uarch.EventID, mean, std float64)) {
	for id := 0; id < cat.NumEvents(); id++ {
		if r.Float64() < 1.0/6 {
			continue
		}
		base := 1e6 * (1 + 50*r.Float64())
		std := (0.005 + 0.05*r.Float64()) * base
		observe(uarch.EventID(id), r.Gaussian(base, std), std)
	}
}

// TestInferBitIdenticalToReference is the acceptance criterion of the
// compile/execute refactor: the B=1 plan wrapper reproduces the legacy
// implementation's posteriors bit for bit — Mean, Std, Iters and Converged
// — on both builder catalogs and both shipped JSON catalogs, across
// observed subsets and inference budgets (including budgets too small to
// converge).
func TestInferBitIdenticalToReference(t *testing.T) {
	for _, cat := range identityCatalogs(t) {
		g := Build(cat)
		for round := 0; round < 4; round++ {
			r := rng.New(uint64(100*round) + 7)
			ref := refBuild(cat)
			g.ClearObservations()
			observeRound(cat, r, func(id uarch.EventID, mean, std float64) {
				ref.observe(id, mean, std)
				g.Observe(id, mean, std)
			})
			maxIter, tol := 200, 1e-9
			if round == 2 {
				maxIter = 3 // too few sweeps: the unconverged path must match too
			}
			if round == 3 {
				tol = 1e-4
			}
			want := ref.refInfer(maxIter, tol)
			got := g.Infer(maxIter, tol)
			if got.Iters != want.Iters || got.Converged != want.Converged {
				t.Fatalf("%s round %d: iteration trace (%d, %v) vs reference (%d, %v)",
					cat.Arch, round, got.Iters, got.Converged, want.Iters, want.Converged)
			}
			for id := range want.Mean {
				if got.Mean[id] != want.Mean[id] || got.Std[id] != want.Std[id] {
					t.Fatalf("%s round %d event %d (%s): mean %v vs %v, std %v vs %v",
						cat.Arch, round, id, cat.Event(uarch.EventID(id)).Name,
						got.Mean[id], want.Mean[id], got.Std[id], want.Std[id])
				}
			}
		}
	}
}

// TestExecuteLaneInvariance is the batching contract: a window's posterior
// is bit-identical whether it runs through the one-lane wrapper or packed
// into any lane of any wider batch, including partially filled ones.
func TestExecuteLaneInvariance(t *testing.T) {
	for _, cat := range identityCatalogs(t) {
		plan := Compile(cat)
		const windows = 13
		type obs struct {
			id        uarch.EventID
			mean, std float64
		}
		jobs := make([][]obs, windows)
		solo := make([]Result, windows)
		g := Build(cat)
		for w := 0; w < windows; w++ {
			r := rng.New(uint64(w)*31 + 5)
			observeRound(cat, r, func(id uarch.EventID, mean, std float64) {
				jobs[w] = append(jobs[w], obs{id, mean, std})
			})
			g.ClearObservations()
			for _, o := range jobs[w] {
				g.Observe(o.id, o.mean, o.std)
			}
			solo[w] = g.Infer(200, 1e-9)
		}
		for _, lanes := range []int{2, 5, 64} {
			batch := plan.NewBatch(lanes)
			batch.EnableCovariance() // solo Results carry cov; compare it too
			for start := 0; start < windows; start += lanes {
				n := windows - start
				if n > lanes {
					n = lanes
				}
				batch.ClearObservations()
				for lane := 0; lane < n; lane++ {
					for _, o := range jobs[start+lane] {
						batch.Observe(lane, o.id, o.mean, o.std)
					}
				}
				res := batch.Execute(n, 200, 1e-9)
				for lane := 0; lane < n; lane++ {
					got := res.Window(lane)
					want := solo[start+lane]
					if got.Iters != want.Iters || got.Converged != want.Converged {
						t.Fatalf("%s lanes=%d window %d: iteration trace (%d, %v) vs solo (%d, %v)",
							cat.Arch, lanes, start+lane, got.Iters, got.Converged, want.Iters, want.Converged)
					}
					for id := range want.Mean {
						if got.Mean[id] != want.Mean[id] || got.Std[id] != want.Std[id] {
							t.Fatalf("%s lanes=%d window %d event %d: mean %v vs %v, std %v vs %v",
								cat.Arch, lanes, start+lane, id,
								got.Mean[id], want.Mean[id], got.Std[id], want.Std[id])
						}
					}
					for ri := range cat.Rels {
						for _, ta := range cat.Rels[ri].Terms {
							for _, tb := range cat.Rels[ri].Terms {
								if got.Cov(ta.Event, tb.Event) != want.Cov(ta.Event, tb.Event) {
									t.Fatalf("%s lanes=%d window %d: clique cov (%d,%d) diverged",
										cat.Arch, lanes, start+lane, ta.Event, tb.Event)
								}
							}
						}
					}
				}
			}
		}
	}
}
