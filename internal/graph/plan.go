// Compiled inference: Compile lowers a catalog's factor graph once into a
// flat Plan — dense variable/factor index arrays and a precomputed message
// schedule — and Execute runs damped Gaussian message passing for many
// windows simultaneously over contiguous structure-of-arrays slabs. One
// schedule walk (relation/term bookkeeping, slice indexing, bounds checks)
// is amortized across the whole batch, and every inner loop strides over
// adjacent memory.
//
// Each batch lane is an independent inference problem: the per-lane
// arithmetic reproduces the classic per-window loop operation for
// operation, so a lane's posterior is bit-identical whether it runs alone
// (the legacy Build/Observe/Infer wrapper) or packed into a 64-wide batch.
// That invariance is what lets the streaming engine batch windows freely
// without perturbing a single stitched output bit.
package graph

import (
	"fmt"
	"math"

	"bayesperf/internal/uarch"
)

// Plan is a catalog's factor graph compiled to flat arrays. Compile once per
// catalog; a Plan is immutable afterwards and safe to share between any
// number of Batches (the streaming engine hands one Plan to every worker).
type Plan struct {
	cat    *uarch.Catalog
	nv     int // variables (events)
	nRels  int // relation factors
	nEdges int

	// Factor structure in CSR form: relation ri's edges (terms) occupy
	// [factorOff[ri], factorOff[ri+1]) of the edge arrays. The message
	// schedule is one pass over the edges in this order — identical to the
	// classic nested relation/term loops.
	factorOff []int
	edgeVar   []int // variable index per edge
	edgeCoeff []float64
	relTol    []float64 // per relation

	// Clique covariance layout: relation ri's k×k posterior covariance
	// occupies covOff[ri] + a*k + b of a per-window covariance slab.
	covOff []int
	nCov   int
	// pairLoc resolves an event pair (lower ID first) to the first relation
	// clique containing both, for Result.Cov/Corr lookups.
	pairLoc map[uint64]pairLoc
}

type pairLoc struct {
	rel  int
	a, b int // term indices within the relation
}

func pairKey(i, j uarch.EventID) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(uint32(i))<<32 | uint64(uint32(j))
}

// Compile lowers the catalog's events and invariants into a Plan.
func Compile(cat *uarch.Catalog) *Plan {
	p := &Plan{
		cat:       cat,
		nv:        cat.NumEvents(),
		nRels:     len(cat.Rels),
		factorOff: make([]int, len(cat.Rels)+1),
		relTol:    make([]float64, len(cat.Rels)),
		covOff:    make([]int, len(cat.Rels)+1),
		pairLoc:   make(map[uint64]pairLoc),
	}
	for ri, r := range cat.Rels {
		p.factorOff[ri] = p.nEdges
		p.covOff[ri] = p.nCov
		p.relTol[ri] = r.RelTol
		for _, t := range r.Terms {
			p.edgeVar = append(p.edgeVar, int(t.Event))
			p.edgeCoeff = append(p.edgeCoeff, t.Coeff)
		}
		k := len(r.Terms)
		p.nEdges += k
		p.nCov += k * k
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				ea, eb := r.Terms[a].Event, r.Terms[b].Event
				if ea == eb {
					continue
				}
				key := pairKey(ea, eb)
				if _, seen := p.pairLoc[key]; !seen {
					loc := pairLoc{rel: ri, a: a, b: b}
					if ea > eb {
						loc.a, loc.b = b, a
					}
					p.pairLoc[key] = loc
				}
			}
		}
	}
	p.factorOff[p.nRels] = p.nEdges
	p.covOff[p.nRels] = p.nCov
	return p
}

// Catalog returns the catalog the plan was compiled from.
func (p *Plan) Catalog() *uarch.Catalog { return p.cat }

// maxCliqueSize returns the largest relation's term count.
func (p *Plan) maxCliqueSize() int {
	maxK := 0
	for ri := 0; ri < p.nRels; ri++ {
		if k := p.factorOff[ri+1] - p.factorOff[ri]; k > maxK {
			maxK = k
		}
	}
	return maxK
}

// SharesClique reports whether two events appear together in at least one
// relation factor, i.e. whether Execute extracts a posterior covariance for
// the pair.
func (p *Plan) SharesClique(i, j uarch.EventID) bool {
	if i == j {
		return true
	}
	_, ok := p.pairLoc[pairKey(i, j)]
	return ok
}

// Batch holds the observations and message-passing state of up to `lanes`
// independent inference windows over one Plan, in structure-of-arrays
// layout: quantity q of lane b lives at q*stride+b, so the per-schedule-step
// inner loops run over contiguous float64 runs. The row stride is the lane
// count rounded up to a multiple of four, so the vectorized fast kernel can
// always process whole 4-lane groups without crossing into the next row;
// the padding lanes hold zeroes and are never read back. A Batch is
// reusable (ClearObservations between rounds) and, like the legacy Graph,
// not safe for concurrent use.
type Batch struct {
	plan  *Plan
	lanes int
	// stride is the slab row stride: lanes rounded up to a multiple of 4.
	stride int
	// FastMath opts Execute into the fused-cavity fast schedule (fast.go):
	// O(k) per-relation gathers instead of the exact kernel's O(k²) sibling
	// loops, inverse variances computed once per edge, and a multiply-add
	// update loop. The fast kernel's posteriors agree with the exact
	// kernel's only to a tight relative tolerance (not bit for bit), pinned
	// by TestFastMathAccuracyDelta; leave it off wherever bit-exactness
	// against the legacy oracle matters.
	FastMath bool
	// needCov gates clique-covariance extraction (EnableCovariance):
	// consumers that never read Cov/Corr — the default stream
	// configuration — skip the extraction flops and the per-result
	// covariance slabs entirely.
	needCov bool
	// Extraction scratch (extractCovariances), sized on first use.
	covD, covCD []float64
	// Fast-schedule scratch (sweepFast), sized on first use: per-relation
	// edge descriptors, weighted cavity contributions, and suffix sums
	// (maxCliqueSize each, reused across lanes and sweeps) plus the previous
	// sweep's belief naturals backing the divide-free convergence test
	// (nv·stride).
	fastWM, fastWV, fastSM, fastSV, fastC []float64
	fastRow, fastMsg                      []int
	prevP, prevH                          []float64
	// Vector-kernel state (amd64 AVX2 path, fast_amd64.s): per-lane
	// active-lane masks as float64 bit patterns (all-ones = active, zero =
	// frozen or padding) and per-edge byte offsets of each edge's variable
	// row in the belief slabs.
	activeMask []float64
	rowOff     []int64
	// m, when non-nil, records per-Execute outcomes (windows, sweeps,
	// convergence, kernel choice, cavity-floor hits) after each sweep loop
	// finishes — see SetMetrics.
	m *Metrics

	obsMean  []float64 // nv*lanes
	obsStd   []float64
	observed []bool

	// Execute scratch, allocated once.
	scale      []float64 // lanes
	scaled     []float64 // nv*lanes: observed means / scale
	unaryPrec  []float64 // nv*lanes
	unaryH     []float64
	beliefPrec []float64
	beliefH    []float64
	means      []float64
	msgPrec    []float64 // nEdges*lanes
	msgH       []float64
	relVar     []float64 // nRels*lanes
	muJ        []float64 // lanes
	varJ       []float64
	maxDelta   []float64
	active     []bool
	iters      []int
	converged  []bool
}

// NewBatch allocates a batch of the given width over the plan.
func (p *Plan) NewBatch(lanes int) *Batch {
	if lanes < 1 {
		panic(fmt.Sprintf("graph: NewBatch with %d lanes", lanes))
	}
	nv, ne, nr := p.nv, p.nEdges, p.nRels
	stride := (lanes + 3) &^ 3
	return &Batch{
		plan:       p,
		lanes:      lanes,
		stride:     stride,
		obsMean:    make([]float64, nv*stride),
		obsStd:     make([]float64, nv*stride),
		observed:   make([]bool, nv*stride),
		scale:      make([]float64, lanes),
		scaled:     make([]float64, nv*stride),
		unaryPrec:  make([]float64, nv*stride),
		unaryH:     make([]float64, nv*stride),
		beliefPrec: make([]float64, nv*stride),
		beliefH:    make([]float64, nv*stride),
		means:      make([]float64, nv*stride),
		msgPrec:    make([]float64, ne*stride),
		msgH:       make([]float64, ne*stride),
		relVar:     make([]float64, nr*stride),
		muJ:        make([]float64, stride),
		varJ:       make([]float64, stride),
		maxDelta:   make([]float64, stride),
		active:     make([]bool, lanes),
		iters:      make([]int, lanes),
		converged:  make([]bool, lanes),
	}
}

// Lanes returns the batch width.
func (b *Batch) Lanes() int { return b.lanes }

// EnableCovariance makes every subsequent Execute extract the per-relation
// clique posterior covariances (Result.Cov/Corr/DerivedPosteriorCov).
// Off by default for plain batches: extraction costs O(Σk² · lanes) per
// Execute plus a covariance slab per result, which pure marginal consumers
// should not pay. The one-lane Graph wrapper enables it, preserving the
// single-window Result contract.
func (b *Batch) EnableCovariance() { b.needCov = true }

// Plan returns the compiled plan the batch executes.
func (b *Batch) Plan() *Plan { return b.plan }

// SetMetrics attaches (or with nil detaches) an instrument set that every
// subsequent Execute records into. Recording happens strictly after the
// sweep loop and reads converged state only, so posteriors are bitwise
// unaffected by whether metrics are on.
func (b *Batch) SetMetrics(m *Metrics) { b.m = m }

// Observe attaches (or replaces) the measurement factor for an event in one
// lane's window; the semantics and validity checks match Graph.Observe.
func (b *Batch) Observe(lane int, id uarch.EventID, mean, std float64) {
	if lane < 0 || lane >= b.lanes {
		panic(fmt.Sprintf("graph: Observe on lane %d of a %d-lane batch", lane, b.lanes))
	}
	if id < 0 || int(id) >= b.plan.nv {
		panic(fmt.Sprintf("graph: Observe of unknown event %d", id))
	}
	if std <= 0 || math.IsNaN(std) || math.IsNaN(mean) {
		panic(fmt.Sprintf("graph: Observe(%s) with invalid mean=%v std=%v",
			b.plan.cat.Event(id).Name, mean, std))
	}
	at := int(id)*b.stride + lane
	b.obsMean[at] = mean
	b.obsStd[at] = std
	b.observed[at] = true
}

// ClearObservations detaches every lane's measurement factors, keeping all
// allocations intact for the next batch of windows.
func (b *Batch) ClearObservations() {
	for i := range b.observed {
		b.observed[i] = false
	}
}

// BatchResult is the outcome of one Execute call: per-lane posterior
// marginals plus the per-relation clique covariances, all in the batch's
// lane-strided layout. Use Window to extract one lane as a Result.
type BatchResult struct {
	plan *Plan
	n    int // executed lanes

	Mean, Std []float64 // nv*n, event-major
	Iters     []int
	Converged []bool
	cov       []float64 // nCov*n, clique-entry-major
}

// Window copies one lane's posterior out as a standalone Result (the
// returned slices are freshly allocated and safe to retain).
func (r *BatchResult) Window(lane int) Result {
	if lane < 0 || lane >= r.n {
		panic(fmt.Sprintf("graph: Window(%d) of a %d-window result", lane, r.n))
	}
	nv := r.plan.nv
	res := Result{
		Mean:      make([]float64, nv),
		Std:       make([]float64, nv),
		Iters:     r.Iters[lane],
		Converged: r.Converged[lane],
		plan:      r.plan,
	}
	for i := 0; i < nv; i++ {
		res.Mean[i] = r.Mean[i*r.n+lane]
		res.Std[i] = r.Std[i*r.n+lane]
	}
	if r.cov != nil {
		res.cov = make([]float64, r.plan.nCov)
		for e := 0; e < r.plan.nCov; e++ {
			res.cov[e] = r.cov[e*r.n+lane]
		}
	}
	return res
}

// Execute runs damped Gaussian message passing on the first n lanes of the
// batch, walking the compiled schedule once per sweep for all lanes. Each
// lane converges (and freezes) independently against the same per-window
// criterion as Graph.Infer, so lane posteriors do not depend on n or on
// which other windows share the batch.
//
//bayesperf:hotpath
func (b *Batch) Execute(n, maxIter int, tol float64) *BatchResult {
	return b.ExecuteInto(nil, n, maxIter, tol)
}

// ExecuteInto is Execute writing its output into res's slabs, reallocating
// only when a capacity is short — the steady state of a long-lived caller
// (the streaming workers) allocates nothing here. A nil res allocates a
// fresh result. The returned value is res (or the fresh result) and is
// only valid until the next ExecuteInto call that reuses it; callers that
// retain a lane's posterior copy it out first (Window does).
//
//bayesperf:hotpath
func (b *Batch) ExecuteInto(res *BatchResult, n, maxIter int, tol float64) *BatchResult {
	if n < 1 || n > b.lanes {
		panic(fmt.Sprintf("graph: Execute of %d lanes on a %d-lane batch", n, b.lanes))
	}
	p := b.plan
	nv, B := p.nv, b.stride

	// Per-lane problem scale, from the lane's observed magnitudes.
	scale := b.scale
	for lane := 0; lane < n; lane++ {
		scale[lane] = 1.0
	}
	for i := 0; i < nv; i++ {
		om := b.obsMean[i*B : i*B+n]
		ob := b.observed[i*B : i*B+n]
		for lane, observed := range ob {
			if observed && math.Abs(om[lane]) > scale[lane] {
				scale[lane] = math.Abs(om[lane])
			}
		}
	}

	// Fixed unary factors: weak proper prior plus the observation, in
	// scaled units.
	const priorPrec = 1e-12
	for i := 0; i < nv; i++ {
		row := i * B
		om := b.obsMean[row : row+n]
		os := b.obsStd[row : row+n]
		ob := b.observed[row : row+n]
		up := b.unaryPrec[row : row+n]
		uh := b.unaryH[row : row+n]
		sc := b.scaled[row : row+n]
		for lane := range ob {
			u := natural{prec: priorPrec}
			sc[lane] = 0
			if ob[lane] {
				m, s := om[lane]/scale[lane], os[lane]/scale[lane]
				u = u.add(fromMoments(m, s*s))
				sc[lane] = m
			}
			up[lane] = u.prec
			uh[lane] = u.h
		}
	}

	// Relation factor noise: σ_r = RelTol · magnitude(observed means),
	// floored so fully-unobserved relations still carry information.
	for ri := 0; ri < p.nRels; ri++ {
		rv := b.relVar[ri*B : ri*B+n]
		for lane := range rv {
			rv[lane] = 0
		}
		for e := p.factorOff[ri]; e < p.factorOff[ri+1]; e++ {
			c := p.edgeCoeff[e]
			sc := b.scaled[p.edgeVar[e]*B : p.edgeVar[e]*B+n]
			for lane := range rv {
				rv[lane] += math.Abs(c * sc[lane])
			}
		}
		relTol := p.relTol[ri]
		for lane := range rv {
			mag := rv[lane] / 2
			if mag < 1e-6 {
				mag = 1e-6
			}
			sd := relTol * mag
			rv[lane] = sd * sd
		}
	}

	// Messages start flat; beliefs start at the unaries.
	for e := 0; e < p.nEdges; e++ {
		mp := b.msgPrec[e*B : e*B+n]
		mh := b.msgH[e*B : e*B+n]
		for lane := range mp {
			mp[lane] = 0
			mh[lane] = 0
		}
	}
	copy(b.beliefPrec, b.unaryPrec)
	copy(b.beliefH, b.unaryH)

	active := b.active[:n]
	for lane := range active {
		active[lane] = true
		b.converged[lane] = false
		b.iters[lane] = maxIter
	}

	if b.FastMath {
		b.sweepFast(n, maxIter, tol)
	} else {
		b.sweepExact(n, maxIter, tol)
	}
	if b.m != nil {
		b.m.recordExecute(b, n)
	}

	return b.resultInto(res, n)
}

// sweepExact runs the exact message schedule: the legacy per-window loop,
// operation for operation, vectorized only across lanes. It is the golden
// oracle the fast schedule is measured against and stays bit-identical to
// the frozen reference implementation (reference_test.go).
//
//bayesperf:hotpath
func (b *Batch) sweepExact(n, maxIter int, tol float64) {
	p := b.plan
	nv, B := p.nv, b.stride
	active := b.active[:n]
	remaining := n
	for i := 0; i < nv; i++ {
		row := i * B
		for lane := 0; lane < n; lane++ {
			m, _ := natural{prec: b.beliefPrec[row+lane], h: b.beliefH[row+lane]}.moments()
			b.means[row+lane] = m
		}
	}

	muJ := b.muJ[:n]
	varJ := b.varJ[:n]
	maxDelta := b.maxDelta[:n]
	for it := 1; it <= maxIter && remaining > 0; it++ {
		for ri := 0; ri < p.nRels; ri++ {
			eStart, eEnd := p.factorOff[ri], p.factorOff[ri+1]
			rv := b.relVar[ri*B : ri*B+n]
			for e := eStart; e < eEnd; e++ {
				// Gather the moments of every other term's variable→factor
				// message (belief minus that edge's old message), one
				// contiguous lane run per sibling edge.
				for lane := range muJ {
					muJ[lane] = 0
				}
				copy(varJ, rv)
				for e2 := eStart; e2 < eEnd; e2++ {
					if e2 == e {
						continue
					}
					c2 := p.edgeCoeff[e2]
					bp := b.beliefPrec[p.edgeVar[e2]*B : p.edgeVar[e2]*B+n]
					bh := b.beliefH[p.edgeVar[e2]*B : p.edgeVar[e2]*B+n]
					mp := b.msgPrec[e2*B : e2*B+n]
					mh := b.msgH[e2*B : e2*B+n]
					for lane := range bp {
						if !active[lane] {
							continue
						}
						m, v := natural{prec: bp[lane] - mp[lane], h: bh[lane] - mh[lane]}.moments()
						muJ[lane] += c2 * m
						varJ[lane] += c2 * c2 * v
					}
				}
				// Solve Σ c_i x_i ~ N(0, σ_r²) for this edge's variable,
				// damp in natural parameters, update the belief
				// incrementally — exactly the legacy per-window update.
				ck := p.edgeCoeff[e]
				bp := b.beliefPrec[p.edgeVar[e]*B : p.edgeVar[e]*B+n]
				bh := b.beliefH[p.edgeVar[e]*B : p.edgeVar[e]*B+n]
				mp := b.msgPrec[e*B : e*B+n]
				mh := b.msgH[e*B : e*B+n]
				for lane := range bp {
					if !active[lane] {
						continue
					}
					newMsg := fromMoments(-muJ[lane]/ck, varJ[lane]/(ck*ck))
					oldP, oldH := mp[lane], mh[lane]
					dampedP := damping*newMsg.prec + (1-damping)*oldP
					dampedH := damping*newMsg.h + (1-damping)*oldH
					bp[lane] = (bp[lane] - oldP) + dampedP
					bh[lane] = (bh[lane] - oldH) + dampedH
					mp[lane] = dampedP
					mh[lane] = dampedH
				}
			}
		}
		for lane := range maxDelta {
			maxDelta[lane] = 0
		}
		for i := 0; i < nv; i++ {
			row := i * B
			bp := b.beliefPrec[row : row+n]
			bh := b.beliefH[row : row+n]
			mn := b.means[row : row+n]
			for lane := range bp {
				if !active[lane] {
					continue
				}
				m, _ := natural{prec: bp[lane], h: bh[lane]}.moments()
				if d := math.Abs(m - mn[lane]); d > maxDelta[lane] {
					maxDelta[lane] = d
				}
				mn[lane] = m
			}
		}
		for lane := range active {
			if active[lane] && maxDelta[lane] < tol {
				active[lane] = false
				b.converged[lane] = true
				b.iters[lane] = it
				remaining--
			}
		}
	}
}

// sized reslices s to n, reallocating only when capacity is short — the
// slab-reuse primitive behind ExecuteInto.
func sized[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// resultInto reads the converged beliefs out of the batch into res,
// reusing its slabs where the capacities allow.
func (b *Batch) resultInto(res *BatchResult, n int) *BatchResult {
	p := b.plan
	nv, B := p.nv, b.stride
	if res == nil {
		res = &BatchResult{}
	}
	res.plan = p
	res.n = n
	res.Mean = sized(res.Mean, nv*n)
	res.Std = sized(res.Std, nv*n)
	res.Iters = sized(res.Iters, n)
	res.Converged = sized(res.Converged, n)
	if b.needCov {
		res.cov = sized(res.cov, p.nCov*n)
	} else {
		res.cov = nil
	}
	copy(res.Iters, b.iters[:n])
	copy(res.Converged, b.converged[:n])
	scale := b.scale
	for i := 0; i < nv; i++ {
		bp := b.beliefPrec[i*B : i*B+n]
		bh := b.beliefH[i*B : i*B+n]
		for lane := range bp {
			m, v := natural{prec: bp[lane], h: bh[lane]}.moments()
			res.Mean[i*n+lane] = m * scale[lane]
			res.Std[i*n+lane] = math.Sqrt(v) * scale[lane]
		}
	}
	b.extractCovariances(res)
	return res
}
