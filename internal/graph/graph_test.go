package graph

import (
	"fmt"
	"math"
	"testing"

	"bayesperf/internal/rng"
	"bayesperf/internal/stats"
	"bayesperf/internal/uarch"
)

// skylakeTruth returns an event-value vector for the Skylake catalog on
// which every declared invariant holds exactly.
func skylakeTruth(c *uarch.Catalog) []float64 {
	v := make([]float64, c.NumEvents())
	set := func(name string, x float64) { v[c.MustEvent(name)] = x }
	set("MEM_INST_RETIRED.ALL_LOADS", 3.0e8)
	set("MEM_INST_RETIRED.ALL_STORES", 1.5e8)
	set("BR_MISP_RETIRED.ALL_BRANCHES", 5.0e6)
	set("BR_PRED_RETIRED.ALL_BRANCHES", 9.5e7)
	set("BR_INST_RETIRED.ALL_BRANCHES", 1.0e8)
	set("INST_RETIRED.OTHER", 4.5e8)
	set("INST_RETIRED.ANY", 1.0e9)
	set("MEM_LOAD_RETIRED.L1_HIT", 2.85e8)
	set("MEM_LOAD_RETIRED.L1_MISS", 1.5e7)
	set("MEM_LOAD_RETIRED.L2_HIT", 1.2e7)
	set("MEM_LOAD_RETIRED.L3_HIT", 2.4e6)
	set("MEM_LOAD_RETIRED.L3_MISS", 6.0e5)
	set("OFFCORE_RESPONSE.DEMAND_DATA_RD", 3.0e6)
	set("OFFCORE_RESPONSE.DEMAND_DATA_RD.L3_MISS", 6.0e5)
	set("CPU_CLK_UNHALTED.THREAD", 8.0e8)
	set("CPU_CLK_UNHALTED.REF_TSC", 7.5e8)
	set("L1D_PEND_MISS.PENDING", 4.0e7)
	return v
}

func TestTruthVectorIsConsistent(t *testing.T) {
	c := uarch.Skylake()
	v := skylakeTruth(c)
	for _, r := range c.Rels {
		if res := math.Abs(r.Residual(v)); res > 1e-6*r.Magnitude(v) {
			t.Errorf("relation %s residual %g on truth vector", r.Name, res)
		}
	}
}

// TestInferRecoversTruth is the ISSUE acceptance criterion: with every
// event observed under small noise, inference recovers the ground truth
// within 2% mean relative error — and no worse than the raw observations.
func TestInferRecoversTruth(t *testing.T) {
	c := uarch.Skylake()
	truth := skylakeTruth(c)
	r := rng.New(11)

	g := Build(c)
	var rawErr stats.Running
	for id, want := range truth {
		std := 0.01 * want
		obs := r.Gaussian(want, std)
		g.Observe(uarch.EventID(id), obs, std)
		rawErr.Add(stats.RelErr(obs, want, 1))
	}
	res := g.Infer(200, 1e-9)
	if !res.Converged {
		t.Fatalf("inference did not converge in %d iters", res.Iters)
	}

	var postErr stats.Running
	for id, want := range truth {
		postErr.Add(stats.RelErr(res.Mean[id], want, 1))
	}
	if postErr.Mean() > 0.02 {
		t.Errorf("posterior mean relative error %.4f > 2%%", postErr.Mean())
	}
	if postErr.Mean() >= rawErr.Mean() {
		t.Errorf("posterior error %.4f not below raw observation error %.4f",
			postErr.Mean(), rawErr.Mean())
	}
}

// TestInferFillsUnobserved checks that an unobserved event tied to observed
// ones through an invariant is recovered from the relations alone.
func TestInferFillsUnobserved(t *testing.T) {
	c := uarch.Skylake()
	truth := skylakeTruth(c)
	missing := c.MustEvent("MEM_LOAD_RETIRED.L1_MISS")

	g := Build(c)
	for id, want := range truth {
		if uarch.EventID(id) == missing {
			continue
		}
		g.Observe(uarch.EventID(id), want, 0.005*want)
	}
	res := g.Infer(200, 1e-9)
	got, want := res.Mean[missing], truth[missing]
	if e := stats.RelErr(got, want, 1); e > 0.05 {
		t.Errorf("unobserved %s inferred as %.4g, want %.4g (rel err %.3f)",
			c.Event(missing).Name, got, want, e)
	}
	if res.Std[missing] <= 0 || math.IsInf(res.Std[missing], 0) {
		t.Errorf("unobserved event posterior std = %g", res.Std[missing])
	}
}

// TestInferTightensUncertainty checks the Bayesian value-add: posterior
// stds are no larger than the observation stds for events constrained by
// invariants.
func TestInferTightensUncertainty(t *testing.T) {
	c := uarch.Power9()
	g := Build(c)
	// A consistent Power9 vector.
	v := make([]float64, c.NumEvents())
	set := func(name string, x float64) { v[c.MustEvent(name)] = x }
	set("PM_LD_CMPL", 2.0e8)
	set("PM_ST_CMPL", 1.0e8)
	set("PM_BR_CMPL", 8.0e7)
	set("PM_BR_MPRED_CMPL", 4.0e6)
	set("PM_INST_OTHER_CMPL", 2.2e8)
	set("PM_INST_CMPL", 6.0e8)
	set("PM_LD_HIT_L1", 1.9e8)
	set("PM_LD_MISS_L1", 1.0e7)
	set("PM_DATA_FROM_L2", 8.0e6)
	set("PM_DATA_FROM_L3", 1.5e6)
	set("PM_DATA_FROM_MEM", 5.0e5)
	set("PM_RUN_CYC", 5.0e8)
	for _, r := range c.Rels {
		if res := math.Abs(r.Residual(v)); res > 1e-6*r.Magnitude(v) {
			t.Fatalf("relation %s residual %g on truth vector", r.Name, res)
		}
	}
	obsStd := make([]float64, c.NumEvents())
	for id, want := range v {
		obsStd[id] = 0.02 * want
		g.Observe(uarch.EventID(id), want, obsStd[id])
	}
	res := g.Infer(200, 1e-9)
	ld := c.MustEvent("PM_LD_CMPL")
	if res.Std[ld] >= obsStd[ld] {
		t.Errorf("posterior std %.4g not tighter than observation std %.4g",
			res.Std[ld], obsStd[ld])
	}
}

// TestClearObservationsReuse is the graph-reuse contract the stream workers
// rely on: clearing observations and re-observing must reproduce exactly
// what a freshly built graph infers, with no cross-window leakage.
func TestClearObservationsReuse(t *testing.T) {
	c := uarch.Skylake()
	truth := skylakeTruth(c)
	reused := Build(c)

	r := rng.New(21)
	for round := 0; round < 3; round++ {
		fresh := Build(c)
		reused.ClearObservations()
		for id, want := range truth {
			std := 0.02 * want
			obs := r.Gaussian(want, std)
			// Leave one event unobserved each round to exercise the
			// observed-flag reset, a different one per round.
			if id == round {
				continue
			}
			fresh.Observe(uarch.EventID(id), obs, std)
			reused.Observe(uarch.EventID(id), obs, std)
		}
		fr := fresh.Infer(200, 1e-9)
		rr := reused.Infer(200, 1e-9)
		for id := range truth {
			if fr.Mean[id] != rr.Mean[id] || fr.Std[id] != rr.Std[id] {
				t.Fatalf("round %d: reused graph diverged on event %d: mean %v vs %v, std %v vs %v",
					round, id, rr.Mean[id], fr.Mean[id], rr.Std[id], fr.Std[id])
			}
		}
		if fr.Iters != rr.Iters || fr.Converged != rr.Converged {
			t.Fatalf("round %d: iteration trace diverged (%d/%v vs %d/%v)",
				round, rr.Iters, rr.Converged, fr.Iters, fr.Converged)
		}
	}
}

// TestDerivedPosteriorDeltaMethod checks the derived-event propagation at
// the graph level against the hand-derived delta-method formula for
// IPC = I/C: the posterior IPC mean is the formula at the posterior mean,
// and its std is √((σ_I/C)² + (I·σ_C/C²)²) over the posterior marginals.
func TestDerivedPosteriorDeltaMethod(t *testing.T) {
	c := uarch.Skylake()
	truth := skylakeTruth(c)
	g := Build(c)
	for id, want := range truth {
		g.Observe(uarch.EventID(id), want, 0.01*want)
	}
	res := g.Infer(200, 1e-9)

	d := c.DerivedByName("IPC")
	mean, std := res.DerivedPosterior(d)
	instr, sigI := res.Posterior(c.MustEvent("INST_RETIRED.ANY"))
	cyc, sigC := res.Posterior(c.MustEvent("CPU_CLK_UNHALTED.THREAD"))
	if want := instr / cyc; math.Abs(mean-want) > 1e-12*want {
		t.Errorf("IPC posterior mean = %v, formula at posterior mean = %v", mean, want)
	}
	want := math.Sqrt(math.Pow(sigI/cyc, 2) + math.Pow(instr*sigC/(cyc*cyc), 2))
	if math.Abs(std-want) > 1e-9*want {
		t.Errorf("IPC posterior std = %g, hand-derived delta method %g", std, want)
	}
	if std <= 0 {
		t.Errorf("IPC posterior std = %g, want > 0", std)
	}
	// The posterior IPC must land near the truth's.
	trueIPC := truth[c.MustEvent("INST_RETIRED.ANY")] / truth[c.MustEvent("CPU_CLK_UNHALTED.THREAD")]
	if e := stats.RelErr(mean, trueIPC, 1e-9); e > 0.02 {
		t.Errorf("posterior IPC %v strays %.3f%% from truth %v", mean, 100*e, trueIPC)
	}
	// Every derived event in the catalog gets a finite, positive std.
	for di := range c.Derived {
		dm, ds := res.DerivedPosterior(&c.Derived[di])
		if math.IsNaN(dm) || math.IsInf(dm, 0) {
			t.Errorf("%s posterior mean = %v", c.Derived[di].Name, dm)
		}
		if ds <= 0 || math.IsNaN(ds) || math.IsInf(ds, 0) {
			t.Errorf("%s posterior std = %v", c.Derived[di].Name, ds)
		}
	}
}

// TestDerivedPosteriorUnobservedDenominator drives the safeDiv path at the
// graph level: with the cycle counter unobserved and unconstrained by any
// invariant, its posterior mean sits at the weak prior's 0 — the derived
// ratio must come back 0 with a finite std rather than NaN.
func TestDerivedPosteriorUnobservedDenominator(t *testing.T) {
	c := uarch.Skylake()
	truth := skylakeTruth(c)
	cycID := c.MustEvent("CPU_CLK_UNHALTED.THREAD")
	g := Build(c)
	for id, want := range truth {
		if uarch.EventID(id) == cycID {
			continue // cycles take part in no invariant: posterior stays at the prior
		}
		g.Observe(uarch.EventID(id), want, 0.01*want)
	}
	res := g.Infer(200, 1e-9)
	if res.Mean[cycID] != 0 {
		t.Fatalf("unconstrained unobserved cycles inferred as %v, want prior 0", res.Mean[cycID])
	}
	mean, std := res.DerivedPosterior(c.DerivedByName("IPC"))
	if mean != 0 {
		t.Errorf("IPC with zero denominator = %v, want safeDiv's 0", mean)
	}
	if math.IsNaN(std) || std < 0 {
		t.Errorf("IPC std with zero denominator = %v", std)
	}
}

// benchObserveAll observes every event with noisy values.
func benchObserveAll(g *Graph, truth []float64, r *rng.Rand) {
	for id, want := range truth {
		std := 0.05 * want
		g.Observe(uarch.EventID(id), r.Gaussian(want, std), std)
	}
}

func BenchmarkInfer(b *testing.B) {
	c := uarch.Skylake()
	truth := skylakeTruth(c)
	r := rng.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := Build(c)
		benchObserveAll(g, truth, r)
		res := g.Infer(100, 1e-8)
		if math.IsNaN(res.Mean[0]) {
			b.Fatal("NaN posterior")
		}
	}
}

// BenchmarkInferBatch is the inference trajectory's headline number: ns per
// window for batched message passing at B ∈ {1, 8, 64} on the Skylake
// catalog, under both the exact kernel and the opt-in fast schedule. B=1
// runs the legacy Build/Observe/Infer wrapper (the bit-identical baseline
// every batch lane is measured against); the wider batches walk the
// compiled schedule once per sweep for the whole batch, reusing one
// result via ExecuteInto the way the stream workers do. The per-window
// metric is emitted as ns/window so the trajectory stays comparable
// across PRs, batch widths, and kernels; cmd/benchjson snapshots it into
// BENCH_graph.json and CI gates regressions against that baseline.
func BenchmarkInferBatch(b *testing.B) {
	c := uarch.Skylake()
	truth := skylakeTruth(c)
	for _, width := range []int{1, 8, 64} {
		for _, kernel := range []string{"exact", "fast"} {
			fast := kernel == "fast"
			b.Run(fmt.Sprintf("B=%d/%s", width, kernel), func(b *testing.B) {
				// Pre-draw one observation set per lane so every run and width
				// measures identical inference problems.
				r := rng.New(3)
				obsMean := make([][]float64, width)
				obsStd := make([][]float64, width)
				for w := 0; w < width; w++ {
					obsMean[w] = make([]float64, len(truth))
					obsStd[w] = make([]float64, len(truth))
					for id, want := range truth {
						obsStd[w][id] = 0.05 * want
						obsMean[w][id] = r.Gaussian(want, obsStd[w][id])
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				if width == 1 {
					g := Build(c)
					g.SetFastMath(fast)
					for i := 0; i < b.N; i++ {
						g.ClearObservations()
						for id := range truth {
							g.Observe(uarch.EventID(id), obsMean[0][id], obsStd[0][id])
						}
						res := g.Infer(100, 1e-8)
						if math.IsNaN(res.Mean[0]) {
							b.Fatal("NaN posterior")
						}
					}
				} else {
					batch := Compile(c).NewBatch(width)
					batch.FastMath = fast
					// Build() enables covariance extraction on the B=1 wrapper,
					// so the wide batches must pay for it too — otherwise the
					// ns/window ratio would credit skipped work, not schedule
					// amortization.
					batch.EnableCovariance()
					var res *BatchResult
					for i := 0; i < b.N; i++ {
						batch.ClearObservations()
						for w := 0; w < width; w++ {
							for id := range truth {
								batch.Observe(w, uarch.EventID(id), obsMean[w][id], obsStd[w][id])
							}
						}
						res = batch.ExecuteInto(res, width, 100, 1e-8)
						if math.IsNaN(res.Mean[0]) {
							b.Fatal("NaN posterior")
						}
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*width), "ns/window")
			})
		}
	}
}

// BenchmarkInferReuse measures the window-to-window hot path of the stream
// workers: ClearObservations + re-Observe + Infer on a long-lived graph,
// against BenchmarkInfer's build-per-window baseline.
func BenchmarkInferReuse(b *testing.B) {
	c := uarch.Skylake()
	truth := skylakeTruth(c)
	r := rng.New(3)
	g := Build(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ClearObservations()
		benchObserveAll(g, truth, r)
		res := g.Infer(100, 1e-8)
		if math.IsNaN(res.Mean[0]) {
			b.Fatal("NaN posterior")
		}
	}
}
