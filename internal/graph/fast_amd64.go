//go:build amd64

package graph

import "math"

// hasFastVec reports whether the host CPU can run the AVX2+FMA fast kernel:
// AVX2 and FMA present, and the OS saving YMM state (OSXSAVE + XCR0 bits
// 1-2). Detected once at startup; tests override fastVecEnabled directly.
func hasFastVec() bool {
	_, _, c, _ := cpuidex(1, 0)
	const osxsave, avx, fma = 1 << 27, 1 << 28, 1 << 12
	if c&osxsave == 0 || c&avx == 0 || c&fma == 0 {
		return false
	}
	if xcr0, _ := xgetbv0(); xcr0&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return b&avx2 != 0
}

// cpuidex executes CPUID with the given leaf/subleaf (fast_amd64.s).
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (fast_amd64.s).
func xgetbv0() (eax, edx uint32)

// fastRelAVX runs one relation's cavity + update passes over nVec 4-lane
// groups: the vector form of the scalar relation body in sweepFast. bp/bh
// are the belief slab bases; mp/mh point at the relation's first message
// row; rv at the relation's noise row; coef/rowOff at the relation's first
// edge. mask gates all persistent writes (frozen and padding lanes keep
// their state bit for bit). stride8 is the slab row stride in bytes.
//
//go:noescape
func fastRelAVX(bp, bh, mp, mh, rv, coef *float64, rowOff *int64, k int64, stride8 int64, mask *float64, nVec int64)

// fastConvAVX runs the divide-free convergence pass over nv variable rows ×
// nVec 4-lane groups, OR-ing all-ones into moved for every active lane
// whose belief mean moved by at least tol (relative, cross-multiplied), and
// refreshing the prev slabs.
//
//go:noescape
func fastConvAVX(bp, bh, pp, ph, mask, moved *float64, tol float64, nv int64, stride8 int64, nVec int64)

// laneMaskOn is the all-ones float64 bit pattern marking an active lane in
// the vector kernel's activeMask slab.
var laneMaskOn = math.Float64frombits(^uint64(0))

// ensureVecScratch sizes the lane-mask slab and precomputed byte row
// offsets on first use; steady-state vector sweeps reuse them, which is
// what lets sweepFastVec carry the hotpath annotation.
func (b *Batch) ensureVecScratch() {
	p := b.plan
	if len(b.activeMask) < b.stride {
		b.activeMask = make([]float64, b.stride)
		b.rowOff = make([]int64, p.nEdges)
		for e := 0; e < p.nEdges; e++ {
			b.rowOff[e] = int64(p.edgeVar[e]) * int64(b.stride) * 8
		}
	}
}

// sweepFastVec drives the AVX2 kernel: the Go side keeps the per-sweep loop
// and the freeze bookkeeping (identical to the scalar schedule); the two
// assembly routines do all lane math four lanes at a time.
//
//bayesperf:hotpath
func (b *Batch) sweepFastVec(n, maxIter int, tol float64) {
	p := b.plan
	nv, B := p.nv, b.stride
	b.ensureVecScratch()
	mask := b.activeMask[:B]
	for lane := 0; lane < B; lane++ {
		if lane < n {
			mask[lane] = laneMaskOn
		} else {
			mask[lane] = 0
		}
	}

	active := b.active[:n]
	remaining := n
	nVec := int64((n + 3) / 4)
	stride8 := int64(B) * 8
	moved := b.maxDelta[:n]
	bPrec, bH := b.beliefPrec, b.beliefH
	for it := 1; it <= maxIter && remaining > 0; it++ {
		for ri := 0; ri < p.nRels; ri++ {
			eStart := p.factorOff[ri]
			k := int64(p.factorOff[ri+1] - eStart)
			fastRelAVX(
				&bPrec[0], &bH[0],
				&b.msgPrec[eStart*B], &b.msgH[eStart*B],
				&b.relVar[ri*B],
				&p.edgeCoeff[eStart], &b.rowOff[eStart],
				k, stride8, &mask[0], nVec,
			)
		}
		for lane := range moved {
			moved[lane] = 0
		}
		fastConvAVX(
			&bPrec[0], &bH[0], &b.prevP[0], &b.prevH[0],
			&mask[0], &moved[0], tol,
			int64(nv), stride8, nVec,
		)
		for lane := range active {
			if active[lane] && moved[lane] == 0 { //bayesvet:bitwise moved is a 0/1 flag slab, assigned never computed
				active[lane] = false
				mask[lane] = 0
				b.converged[lane] = true
				b.iters[lane] = it
				remaining--
			}
		}
	}
}
