// Clique posterior covariances. Gaussian message passing maintains only
// per-variable marginals, which is why the delta method over them must
// treat derived-metric inputs as independent. The factor graph knows more:
// at a fixed point, the joint posterior of the variables in one relation
// clique is approximated (exactly, on tree-structured relation sets) by
// the clique's factor times each member's cavity marginal,
//
//	q(x_clique) ∝ N(Σᵢ cᵢxᵢ; 0, σ_r²) · Πⱼ cavityⱼ(xⱼ),
//
// a Gaussian whose precision matrix is diag(pⱼ) + c cᵀ/σ_r² with
// pⱼ the cavity precision (belief minus the clique's own message). Its
// inverse — the clique posterior covariance — follows in closed form from
// the Sherman–Morrison identity:
//
//	Cov(xⱼ, xₗ) = δⱼₗ·dⱼ − dⱼcⱼ · cₗdₗ / (σ_r² + Σᵢ cᵢ²dᵢ),  dⱼ = 1/pⱼ.
//
// Execute extracts these k×k blocks per lane after convergence; Result.Cov
// and Result.Corr expose them, and DerivedPosteriorCov feeds them to the
// delta method so e.g. a ratio whose numerator and denominator share an
// invariant stops over- (or under-) counting their coupling.
package graph

import (
	"fmt"
	"math"

	"bayesperf/internal/uarch"
)

// ensureCovScratch sizes covD and covCD — per-(term,lane) scratch for the
// current relation's cavity variance and coeff·variance — on first use;
// steady-state extractions reuse them, which is what lets
// extractCovariances carry the hotpath annotation.
func (b *Batch) ensureCovScratch() {
	if maxK := b.plan.maxCliqueSize(); len(b.covD) < maxK*b.lanes {
		b.covD = make([]float64, maxK*b.lanes)
		b.covCD = make([]float64, maxK*b.lanes)
	}
}

// extractCovariances fills res.cov with every relation clique's posterior
// covariance for every executed lane, in the lane's original (unscaled)
// units.
//
//bayesperf:hotpath
func (b *Batch) extractCovariances(res *BatchResult) {
	p := b.plan
	if !b.needCov || p.nCov == 0 {
		return
	}
	n, B := res.n, b.stride
	b.ensureCovScratch()
	d, cd := b.covD, b.covCD
	denom := b.muJ[:n] // reuse Execute scratch: σ_r² + Σ c²·d per lane

	for ri := 0; ri < p.nRels; ri++ {
		eStart, eEnd := p.factorOff[ri], p.factorOff[ri+1]
		k := eEnd - eStart
		copy(denom, b.relVar[ri*B:ri*B+n])
		for j := 0; j < k; j++ {
			e := eStart + j
			c := p.edgeCoeff[e]
			bp := b.beliefPrec[p.edgeVar[e]*B : p.edgeVar[e]*B+n]
			mp := b.msgPrec[e*B : e*B+n]
			dj := d[j*n : j*n+n]
			cdj := cd[j*n : j*n+n]
			for lane := range dj {
				// Cavity variance with the same vanishing-precision guard
				// as natural.moments: near-zero precision behaves as flat.
				_, v := natural{prec: bp[lane] - mp[lane]}.moments()
				dj[lane] = v
				cdj[lane] = c * v
				denom[lane] += c * c * v
			}
		}
		covBase := p.covOff[ri]
		for j := 0; j < k; j++ {
			cj := p.edgeCoeff[eStart+j]
			dj := d[j*n : j*n+n]
			for l := j; l < k; l++ {
				cdl := cd[l*n : l*n+n]
				outJL := res.cov[(covBase+j*k+l)*n:]
				outLJ := res.cov[(covBase+l*k+j)*n:]
				for lane := 0; lane < n; lane++ {
					cov := -dj[lane] * cj * cdl[lane] / denom[lane]
					if l == j {
						cov += dj[lane]
					}
					cov *= b.scale[lane] * b.scale[lane]
					outJL[lane] = cov
					outLJ[lane] = cov
				}
			}
		}
	}
}

// Cov returns the posterior covariance of two events: the marginal variance
// on the diagonal, the clique covariance when the pair shares at least one
// relation factor (the first declaring relation wins), and 0 otherwise —
// events not coupled by any invariant carry no tracked covariance.
func (r *Result) Cov(i, j uarch.EventID) float64 {
	if i == j {
		return r.Std[i] * r.Std[i]
	}
	if r.plan == nil || r.cov == nil {
		return 0
	}
	loc, ok := r.plan.pairLoc[pairKey(i, j)]
	if !ok {
		return 0
	}
	k := r.plan.factorOff[loc.rel+1] - r.plan.factorOff[loc.rel]
	return r.cov[r.plan.covOff[loc.rel]+loc.a*k+loc.b]
}

// corrOf normalizes one clique covariance entry against its diagonal into
// a ±1-clamped correlation, guarding degenerate variances.
func corrOf(cab, caa, cbb float64) float64 {
	den := math.Sqrt(caa * cbb)
	if den <= 0 || math.IsNaN(den) || math.IsInf(den, 0) {
		return 0
	}
	rho := cab / den
	if rho > 1 {
		rho = 1
	} else if rho < -1 {
		rho = -1
	}
	if math.IsNaN(rho) {
		return 0
	}
	return rho
}

// Corr returns the posterior correlation of two events, computed within
// their shared clique's covariance block (so it is ±1-bounded by
// construction) and clamped against floating-point spill. Pairs sharing no
// relation return 0.
func (r *Result) Corr(i, j uarch.EventID) float64 {
	if i == j {
		return 1
	}
	if r.plan == nil || r.cov == nil {
		return 0
	}
	loc, ok := r.plan.pairLoc[pairKey(i, j)]
	if !ok {
		return 0
	}
	base := r.plan.covOff[loc.rel]
	k := r.plan.factorOff[loc.rel+1] - r.plan.factorOff[loc.rel]
	return corrOf(r.cov[base+loc.a*k+loc.b], r.cov[base+loc.a*k+loc.a], r.cov[base+loc.b*k+loc.b])
}

// Corr returns one lane's posterior correlation of two events, read
// directly from the batch result's lane-strided covariance slab — the
// allocation-free counterpart of Window(lane).Corr for consumers that only
// need a few pairs per lane (the streaming engine's tracked-pair
// extraction). Semantics match Result.Corr.
func (r *BatchResult) Corr(lane int, i, j uarch.EventID) float64 {
	if lane < 0 || lane >= r.n {
		panic(fmt.Sprintf("graph: Corr on lane %d of a %d-window result", lane, r.n))
	}
	if i == j {
		return 1
	}
	if r.cov == nil {
		return 0
	}
	loc, ok := r.plan.pairLoc[pairKey(i, j)]
	if !ok {
		return 0
	}
	base := r.plan.covOff[loc.rel]
	k := r.plan.factorOff[loc.rel+1] - r.plan.factorOff[loc.rel]
	at := func(e int) float64 { return r.cov[(base+e)*r.n+lane] }
	return corrOf(at(loc.a*k+loc.b), at(loc.a*k+loc.a), at(loc.b*k+loc.b))
}

// DerivedPosteriorCov propagates the posterior through a derived-event
// formula like DerivedPosterior, but feeds the delta method the full
// posterior covariance over the formula's inputs: clique correlations from
// the factor graph times the marginal stds. Input pairs that share no
// invariant contribute no cross term, so on a catalog whose derived inputs
// are uncoupled this reduces bit-for-bit to the diagonal DerivedPosterior.
func (r *Result) DerivedPosteriorCov(d *uarch.Derived) (mean, std float64) {
	in := make([]float64, len(d.Inputs))
	sd := make([]float64, len(d.Inputs))
	for i, id := range d.Inputs {
		in[i] = r.Mean[id]
		sd[i] = r.Std[id]
	}
	corr := func(i, j int) float64 { return r.Corr(d.Inputs[i], d.Inputs[j]) }
	return d.Eval(in), d.PropagateStdCov(in, sd, corr)
}
