package graph

import (
	"math"
	"testing"

	"bayesperf/internal/rng"
	"bayesperf/internal/uarch"
)

// fastAccuracyTol is the accuracy gate of the opt-in fast schedule: relative
// posterior drift vs the exact kernel. The schedules compute the same
// fixed-point update in a different floating-point summation order, so the
// observed drift at full convergence is ~1e-14; the gate leaves headroom for
// a lane converging one damped sweep earlier or later (a ≤ tol·scale mean
// wobble, ≤ ~5e-8 relative at the catalogs' scaled-mean magnitudes).
const fastAccuracyTol = 1e-7

// fastKernelPaths runs fn once per available fast-schedule implementation:
// the AVX2 vector kernel (on hosts that have it) and the portable scalar
// schedule, forced by clearing fastVecEnabled.
func fastKernelPaths(t *testing.T, fn func(t *testing.T)) {
	saved := fastVecEnabled
	defer func() { fastVecEnabled = saved }()
	if saved {
		t.Run("vec", fn)
	} else {
		t.Log("host has no AVX2+FMA: vector kernel path not exercised")
	}
	fastVecEnabled = false
	t.Run("scalar", fn)
	fastVecEnabled = saved
}

// TestFastMathAccuracyDelta is the fast kernel's accuracy gate: on all four
// catalogs, across batch widths, converged and unconverged iteration
// budgets, and with covariance extraction on, every posterior mean, std,
// and tracked clique correlation must agree with the exact kernel within
// fastAccuracyTol, with iteration counts off by at most one sweep — for
// both the vector and the scalar implementation.
func TestFastMathAccuracyDelta(t *testing.T) {
	fastKernelPaths(t, func(t *testing.T) {
		for _, cat := range identityCatalogs(t) {
			plan := Compile(cat)
			for _, bc := range []struct {
				lanes   int
				maxIter int
				tol     float64
				cov     bool
			}{
				{1, 200, 1e-9, false},
				{8, 200, 1e-9, true},
				{8, 3, 1e-9, true}, // budget too small to converge
				{13, 200, 1e-4, false},
			} {
				ex := plan.NewBatch(bc.lanes)
				fa := plan.NewBatch(bc.lanes)
				fa.FastMath = true
				if bc.cov {
					ex.EnableCovariance()
					fa.EnableCovariance()
				}
				r := rng.New(7)
				for lane := 0; lane < bc.lanes; lane++ {
					observeRound(cat, r, func(id uarch.EventID, mean, std float64) {
						ex.Observe(lane, id, mean, std)
						fa.Observe(lane, id, mean, std)
					})
				}
				re := ex.Execute(bc.lanes, bc.maxIter, bc.tol)
				rf := fa.Execute(bc.lanes, bc.maxIter, bc.tol)
				for i := range re.Mean {
					dm := math.Abs(rf.Mean[i]-re.Mean[i]) / math.Max(math.Abs(re.Mean[i]), 1)
					ds := math.Abs(rf.Std[i]-re.Std[i]) / math.Max(re.Std[i], 1)
					if dm > fastAccuracyTol || math.IsNaN(rf.Mean[i]) {
						t.Fatalf("%s lanes=%d iter=%d: slot %d mean %v vs exact %v (rel delta %.3g)",
							cat.Arch, bc.lanes, bc.maxIter, i, rf.Mean[i], re.Mean[i], dm)
					}
					if ds > fastAccuracyTol || math.IsNaN(rf.Std[i]) {
						t.Fatalf("%s lanes=%d iter=%d: slot %d std %v vs exact %v (rel delta %.3g)",
							cat.Arch, bc.lanes, bc.maxIter, i, rf.Std[i], re.Std[i], ds)
					}
				}
				for lane := 0; lane < bc.lanes; lane++ {
					di := rf.Iters[lane] - re.Iters[lane]
					if di < -1 || di > 1 {
						t.Fatalf("%s lanes=%d iter=%d: lane %d took %d sweeps, exact %d",
							cat.Arch, bc.lanes, bc.maxIter, lane, rf.Iters[lane], re.Iters[lane])
					}
					if rf.Converged[lane] != re.Converged[lane] {
						t.Fatalf("%s lanes=%d iter=%d: lane %d converged=%v, exact %v",
							cat.Arch, bc.lanes, bc.maxIter, lane, rf.Converged[lane], re.Converged[lane])
					}
					if !bc.cov {
						continue
					}
					// Clique correlations are only compared between events
					// whose cavity precision (belief minus the clique's own
					// message, the quantity extractCovariances inverts) is
					// well above the 1e-12 vanishing floor. A near-floor
					// cavity makes d = 1/(belief − msg) catastrophically
					// ill-conditioned: its correlation is noise in BOTH
					// kernels (the exact kernel's noise is merely
					// bit-reproducible), so no summation order can agree
					// there and no consumer can read meaning into it.
					cavityPrec := func(e int) float64 {
						B := ex.stride
						return ex.beliefPrec[plan.edgeVar[e]*B+lane] - ex.msgPrec[e*B+lane]
					}
					conditioned := func(a, b uarch.EventID) bool {
						loc, ok := plan.pairLoc[pairKey(a, b)]
						if !ok {
							return false // Corr returns 0 for both kernels
						}
						e0 := plan.factorOff[loc.rel]
						return cavityPrec(e0+loc.a) >= 1e-5 && cavityPrec(e0+loc.b) >= 1e-5
					}
					compared := 0
					for ri := range cat.Rels {
						for _, ta := range cat.Rels[ri].Terms {
							for _, tb := range cat.Rels[ri].Terms {
								if ta.Event == tb.Event || !conditioned(ta.Event, tb.Event) {
									continue
								}
								compared++
								ce := re.Corr(lane, ta.Event, tb.Event)
								cf := rf.Corr(lane, ta.Event, tb.Event)
								if math.Abs(cf-ce) > fastAccuracyTol {
									t.Fatalf("%s lane %d: corr(%d,%d) = %v vs exact %v",
										cat.Arch, lane, ta.Event, tb.Event, cf, ce)
								}
							}
						}
					}
					if compared == 0 {
						t.Fatalf("%s lane %d: conditioning gate compared no correlations", cat.Arch, lane)
					}
				}
			}
		}
	})
}

// TestFastMathLaneInvariance is the fast schedule's batching contract — the
// same one TestExecuteLaneInvariance pins for the exact kernel: a window's
// fast posterior is bit-identical whether it runs alone in a 1-lane batch
// or packed into any lane of any wider batch. Both implementations must
// hold it (the vector kernel's arithmetic is elementwise per lane; the
// activeMask keeps padding and frozen lanes from perturbing live ones).
func TestFastMathLaneInvariance(t *testing.T) {
	fastKernelPaths(t, func(t *testing.T) {
		for _, cat := range identityCatalogs(t) {
			plan := Compile(cat)
			const windows = 13
			type obs struct {
				id        uarch.EventID
				mean, std float64
			}
			jobs := make([][]obs, windows)
			solo := make([]Result, windows)
			one := plan.NewBatch(1)
			one.FastMath = true
			one.EnableCovariance()
			for w := 0; w < windows; w++ {
				r := rng.New(uint64(w)*31 + 5)
				observeRound(cat, r, func(id uarch.EventID, mean, std float64) {
					jobs[w] = append(jobs[w], obs{id, mean, std})
				})
				one.ClearObservations()
				for _, o := range jobs[w] {
					one.Observe(0, o.id, o.mean, o.std)
				}
				solo[w] = one.Execute(1, 200, 1e-9).Window(0)
			}
			for _, lanes := range []int{2, 5, 64} {
				batch := plan.NewBatch(lanes)
				batch.FastMath = true
				batch.EnableCovariance()
				for start := 0; start < windows; start += lanes {
					n := windows - start
					if n > lanes {
						n = lanes
					}
					batch.ClearObservations()
					for lane := 0; lane < n; lane++ {
						for _, o := range jobs[start+lane] {
							batch.Observe(lane, o.id, o.mean, o.std)
						}
					}
					res := batch.Execute(n, 200, 1e-9)
					for lane := 0; lane < n; lane++ {
						got := res.Window(lane)
						want := solo[start+lane]
						if got.Iters != want.Iters || got.Converged != want.Converged {
							t.Fatalf("%s lanes=%d window %d: iteration trace (%d, %v) vs solo (%d, %v)",
								cat.Arch, lanes, start+lane, got.Iters, got.Converged, want.Iters, want.Converged)
						}
						for id := range want.Mean {
							if got.Mean[id] != want.Mean[id] || got.Std[id] != want.Std[id] {
								t.Fatalf("%s lanes=%d window %d event %d: mean %v vs %v, std %v vs %v",
									cat.Arch, lanes, start+lane, id,
									got.Mean[id], want.Mean[id], got.Std[id], want.Std[id])
							}
						}
						for ri := range cat.Rels {
							for _, ta := range cat.Rels[ri].Terms {
								for _, tb := range cat.Rels[ri].Terms {
									if got.Cov(ta.Event, tb.Event) != want.Cov(ta.Event, tb.Event) {
										t.Fatalf("%s lanes=%d window %d: clique cov (%d,%d) diverged",
											cat.Arch, lanes, start+lane, ta.Event, tb.Event)
									}
								}
							}
						}
					}
				}
			}
		}
	})
}

// TestGraphSetFastMath covers the one-lane wrapper's opt-in: Infer with
// fast math stays within the accuracy gate of the exact wrapper, and
// toggling back restores bit-exact behavior (no state leaks between modes).
func TestGraphSetFastMath(t *testing.T) {
	cat := uarch.Skylake()
	exact := Build(cat)
	g := Build(cat)
	r := rng.New(13)
	observeRound(cat, r, func(id uarch.EventID, mean, std float64) {
		exact.Observe(id, mean, std)
		g.Observe(id, mean, std)
	})
	want := exact.Infer(200, 1e-9)

	g.SetFastMath(true)
	fast := g.Infer(200, 1e-9)
	for id := range want.Mean {
		dm := math.Abs(fast.Mean[id]-want.Mean[id]) / math.Max(math.Abs(want.Mean[id]), 1)
		if dm > fastAccuracyTol {
			t.Fatalf("fast Infer event %d: mean %v vs exact %v", id, fast.Mean[id], want.Mean[id])
		}
	}

	g.SetFastMath(false)
	back := g.Infer(200, 1e-9)
	for id := range want.Mean {
		if back.Mean[id] != want.Mean[id] || back.Std[id] != want.Std[id] {
			t.Fatalf("event %d: posteriors not bit-exact after toggling fast math off", id)
		}
	}
}
