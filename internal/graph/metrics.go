package graph

import "bayesperf/internal/obs"

// Metrics is the inference layer's instrument set. Construct once per
// registry with NewMetrics and attach to any number of Batches (instruments
// are atomic, so concurrent stream workers share one Metrics safely); a nil
// *Metrics — the metrics-off state — costs one pointer compare per Execute.
type Metrics struct {
	windows      *obs.Counter
	unconverged  *obs.Counter
	sweeps       *obs.Counter
	sweepsPerWin *obs.Histogram
	kernelExact  *obs.Counter
	kernelFast   *obs.Counter
	cavityFloor  *obs.Counter
}

// NewMetrics registers the graph-layer instruments on r (get-or-create, so
// several Batches over one registry aggregate) and returns the set. A nil
// registry returns nil, which every consumer treats as metrics-off.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		windows: r.Counter("bayesperf_graph_windows_total",
			"Inference windows executed (batch lanes)."),
		unconverged: r.Counter("bayesperf_graph_unconverged_windows_total",
			"Windows that exhausted maxIter without meeting the convergence tolerance."),
		sweeps: r.Counter("bayesperf_graph_sweeps_total",
			"Message-passing sweeps run across all windows."),
		sweepsPerWin: r.Histogram("bayesperf_graph_sweeps_per_window",
			"Sweeps needed per window before convergence (or the maxIter budget).",
			ExponentialSweepBuckets()),
		kernelExact: r.Counter("bayesperf_graph_kernel_windows_total",
			"Windows executed per inference kernel.", obs.Label{Key: "kernel", Value: "exact"}),
		kernelFast: r.Counter("bayesperf_graph_kernel_windows_total",
			"Windows executed per inference kernel.", obs.Label{Key: "kernel", Value: "fast"}),
		cavityFloor: r.Counter("bayesperf_graph_cavity_floor_edges_total",
			"Edges whose final cavity precision sat at the vanishing-precision floor (order-sensitive, numerically flat cavities)."),
	}
}

// ExponentialSweepBuckets returns the sweeps-per-window bucket bounds
// (1..512, powers of two) — maxIter defaults are well inside.
func ExponentialSweepBuckets() []float64 {
	return obs.ExponentialBuckets(1, 2, 10)
}

// recordExecute folds one Execute call's outcome into the instruments. It
// runs after the sweep loop, reading converged state only — never inside
// the kernels — so instrumentation cannot perturb the exact kernel's
// bit-exactness or the fast kernel's accuracy gate, and costs nothing on
// the per-sweep hot path. The cavity-floor scan mirrors the moments()
// guard: a final belief-minus-message precision below minPrec means that
// edge's cavity was flat and its contribution order-sensitive.
func (m *Metrics) recordExecute(b *Batch, n int) {
	m.windows.Add(uint64(n))
	if b.FastMath {
		m.kernelFast.Add(uint64(n))
	} else {
		m.kernelExact.Add(uint64(n))
	}
	var sweeps, unconv uint64
	for lane := 0; lane < n; lane++ {
		it := b.iters[lane]
		sweeps += uint64(it)
		m.sweepsPerWin.Observe(float64(it))
		if !b.converged[lane] {
			unconv++
		}
	}
	m.sweeps.Add(sweeps)
	m.unconverged.Add(unconv)

	p := b.plan
	B := b.stride
	var floored uint64
	for e := 0; e < p.nEdges; e++ {
		row := p.edgeVar[e] * B
		mrow := e * B
		for lane := 0; lane < n; lane++ {
			if b.beliefPrec[row+lane]-b.msgPrec[mrow+lane] < minPrec {
				floored++
			}
		}
	}
	m.cavityFloor.Add(floored)
}
