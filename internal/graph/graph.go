// Package graph implements BayesPerf's inference layer: a Gaussian factor
// graph over the events of one uarch.Catalog, with a variable node per event
// and a factor node per measurement and per microarchitectural invariant
// (§4 of the paper). Inference runs iterative Gaussian message passing
// (loopy BP, the Gaussian special case of expectation propagation), which is
// exact on tree-structured relation sets and empirically convergent on the
// loopy catalogs used here thanks to damping.
//
// The engine is two-phase: Compile lowers a catalog once into a flat Plan
// (dense index arrays plus a precomputed message schedule), and
// Batch.Execute runs inference for many windows simultaneously over
// contiguous structure-of-arrays slabs (see plan.go). The Graph type below
// is the legacy single-window surface, now a thin wrapper over a one-lane
// batch: Build/Observe/Infer produce posteriors bit-identical to the
// pre-compilation implementation (asserted against a reference copy in the
// tests).
//
// The graph works on whatever unit the caller observes (per-interval rates
// or whole-run totals); internally all quantities are rescaled to O(1) so
// the weak proper prior and the convergence tolerance are scale-free.
package graph

import (
	"bayesperf/internal/uarch"
)

// natural is a Gaussian in natural parameters: precision λ = 1/σ² and
// precision-adjusted mean h = μ/σ². The zero value is the (improper)
// uninformative message.
type natural struct {
	prec float64
	h    float64
}

func (n natural) add(o natural) natural { return natural{n.prec + o.prec, n.h + o.h} }
func (n natural) sub(o natural) natural { return natural{n.prec - o.prec, n.h - o.h} }

// minPrec is the vanishing-precision floor: messages and beliefs with
// precision below it behave as flat (mean 0, variance 1/minPrec). Both
// kernels share it so their guard semantics cannot drift.
const minPrec = 1e-12

// moments converts to (mean, variance), guarding against vanishing
// precision: messages with precision below minPrec behave as flat.
func (n natural) moments() (mean, variance float64) {
	if n.prec < minPrec {
		return 0, 1 / minPrec
	}
	return n.h / n.prec, 1 / n.prec
}

func fromMoments(mean, variance float64) natural {
	if variance <= 0 {
		variance = 1e-300
	}
	p := 1 / variance
	return natural{p, mean * p}
}

// damping applied to factor→variable messages (in natural parameters);
// stabilizes loopy message passing on catalogs whose relations share events.
const damping = 0.7

// Graph is the single-window inference surface for one catalog: Build it,
// Observe each measured event, then Infer. Between inference runs over the
// same catalog (e.g. successive stream windows), ClearObservations resets
// the measurement factors while keeping every allocation intact. Since the
// compile/execute refactor it is a one-lane Batch over a compiled Plan;
// callers inferring many windows should Compile once and Execute them in
// wider batches instead.
//
// A Graph is not safe for concurrent use: parallel EP engines each build
// their own (see internal/stream's worker pool).
type Graph struct {
	batch *Batch
}

// Build creates an inference graph over the catalog's events and invariants.
func Build(cat *uarch.Catalog) *Graph {
	b := Compile(cat).NewBatch(1)
	b.EnableCovariance() // single-window Results always answer Cov/Corr
	return &Graph{batch: b}
}

// Catalog returns the catalog the graph was built over.
func (g *Graph) Catalog() *uarch.Catalog { return g.batch.plan.cat }

// SetFastMath opts this graph's Infer into the fused-cavity fast schedule
// (see Batch.FastMath): posteriors then agree with the exact kernel only to
// a tight relative tolerance instead of bit for bit. Off by default; the
// exact kernel remains the golden oracle.
func (g *Graph) SetFastMath(on bool) { g.batch.FastMath = on }

// SetMetrics attaches the graph-layer instrument set (see Batch.SetMetrics);
// nil detaches. Posteriors are bitwise unaffected either way.
func (g *Graph) SetMetrics(m *Metrics) { g.batch.SetMetrics(m) }

// Observe attaches (or replaces) the measurement factor for an event:
// the event's value is measured as N(mean, std²). For multiplexed counters
// the std comes from the Student-t marginal of the per-interval samples
// (measure.Multiplex); std must be positive.
func (g *Graph) Observe(id uarch.EventID, mean, std float64) {
	g.batch.Observe(0, id, mean, std)
}

// ClearObservations detaches every measurement factor so the graph can be
// re-observed for the next measurement window without reallocating any of
// the graph's buffers. Invariant factors (which come from the catalog) are
// unaffected.
func (g *Graph) ClearObservations() {
	g.batch.ClearObservations()
}

// Result holds the posterior marginals after Infer (or one lane of a batch
// Execute), indexed by EventID, plus the per-relation-clique posterior
// covariances backing Cov/Corr/DerivedPosteriorCov (see cov.go).
type Result struct {
	Mean      []float64
	Std       []float64
	Iters     int
	Converged bool

	plan *Plan
	cov  []float64 // clique covariance blocks, covOff-indexed
}

// Posterior returns one event's posterior (mean, std) pair.
func (r *Result) Posterior(id uarch.EventID) (mean, std float64) {
	return r.Mean[id], r.Std[id]
}

// DerivedPosterior propagates the posterior through a derived-event
// formula (§2 "Errors in Derived Events"): the mean is the formula
// evaluated at the posterior mean, and the std is the first-order delta
// method over the posterior marginals (uarch.Derived.PropagateStd),
// treating the inputs as independent. DerivedPosteriorCov is the
// covariance-aware version.
func (r *Result) DerivedPosterior(d *uarch.Derived) (mean, std float64) {
	return d.PosteriorFrom(r.Mean, r.Std)
}

// Infer runs damped Gaussian message passing until the largest change in
// any posterior mean (relative to the problem scale) drops below tol, or
// maxIter sweeps elapse. It returns the posterior mean and std per event.
// Unobserved events are inferred purely from the invariants (with a weak
// zero-mean prior keeping their marginals proper).
func (g *Graph) Infer(maxIter int, tol float64) Result {
	return g.batch.Execute(1, maxIter, tol).Window(0)
}
