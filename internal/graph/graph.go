// Package graph implements BayesPerf's inference layer: a Gaussian factor
// graph over the events of one uarch.Catalog, with a variable node per event
// and a factor node per measurement and per microarchitectural invariant
// (§4 of the paper). Inference runs iterative Gaussian message passing
// (loopy BP, the Gaussian special case of expectation propagation), which is
// exact on tree-structured relation sets and empirically convergent on the
// loopy catalogs used here thanks to damping.
//
// The graph works on whatever unit the caller observes (per-interval rates
// or whole-run totals); internally all quantities are rescaled to O(1) so
// the weak proper prior and the convergence tolerance are scale-free.
package graph

import (
	"fmt"
	"math"

	"bayesperf/internal/uarch"
)

// natural is a Gaussian in natural parameters: precision λ = 1/σ² and
// precision-adjusted mean h = μ/σ². The zero value is the (improper)
// uninformative message.
type natural struct {
	prec float64
	h    float64
}

func (n natural) add(o natural) natural { return natural{n.prec + o.prec, n.h + o.h} }
func (n natural) sub(o natural) natural { return natural{n.prec - o.prec, n.h - o.h} }

// moments converts to (mean, variance), guarding against vanishing
// precision: messages with precision below minPrec behave as flat.
func (n natural) moments() (mean, variance float64) {
	const minPrec = 1e-12
	if n.prec < minPrec {
		return 0, 1 / minPrec
	}
	return n.h / n.prec, 1 / n.prec
}

func fromMoments(mean, variance float64) natural {
	if variance <= 0 {
		variance = 1e-300
	}
	p := 1 / variance
	return natural{p, mean * p}
}

// observation is one measurement factor attached to a variable.
type observation struct {
	mean float64
	std  float64
}

// Graph is a Gaussian factor graph for one catalog. Build it once per
// catalog, Observe each measured event, then Infer. Between inference runs
// over the same catalog (e.g. successive stream windows), ClearObservations
// resets the measurement factors while keeping every allocation — Build,
// message and belief buffers — intact.
//
// A Graph is not safe for concurrent use: parallel EP engines each build
// their own (see internal/stream's worker pool).
type Graph struct {
	cat      *uarch.Catalog
	obs      []observation // per event, valid iff observed
	observed []bool

	// Scratch reused across Infer calls, sized at Build time.
	unary  []natural
	belief []natural
	scaled []float64 // observed means / scale (0 if unobserved)
	means  []float64
	relVar []float64
	msg    [][]natural
}

// Build creates an inference graph over the catalog's events and invariants.
func Build(cat *uarch.Catalog) *Graph {
	nv := cat.NumEvents()
	g := &Graph{
		cat:      cat,
		obs:      make([]observation, nv),
		observed: make([]bool, nv),
		unary:    make([]natural, nv),
		belief:   make([]natural, nv),
		scaled:   make([]float64, nv),
		means:    make([]float64, nv),
		relVar:   make([]float64, len(cat.Rels)),
		msg:      make([][]natural, len(cat.Rels)),
	}
	for ri, r := range cat.Rels {
		g.msg[ri] = make([]natural, len(r.Terms))
	}
	return g
}

// Catalog returns the catalog the graph was built over.
func (g *Graph) Catalog() *uarch.Catalog { return g.cat }

// Observe attaches (or replaces) the measurement factor for an event:
// the event's value is measured as N(mean, std²). For multiplexed counters
// the std comes from the Student-t marginal of the per-interval samples
// (measure.Multiplex); std must be positive.
func (g *Graph) Observe(id uarch.EventID, mean, std float64) {
	if id < 0 || int(id) >= len(g.obs) {
		panic(fmt.Sprintf("graph: Observe of unknown event %d", id))
	}
	if std <= 0 || math.IsNaN(std) || math.IsNaN(mean) {
		panic(fmt.Sprintf("graph: Observe(%s) with invalid mean=%v std=%v",
			g.cat.Event(id).Name, mean, std))
	}
	g.obs[id] = observation{mean: mean, std: std}
	g.observed[id] = true
}

// ClearObservations detaches every measurement factor so the graph can be
// re-observed for the next measurement window without reallocating any of
// the graph's buffers. Invariant factors (which come from the catalog) are
// unaffected.
func (g *Graph) ClearObservations() {
	for i := range g.observed {
		g.observed[i] = false
	}
}

// Result holds the posterior marginals after Infer, indexed by EventID.
type Result struct {
	Mean      []float64
	Std       []float64
	Iters     int
	Converged bool
}

// Posterior returns one event's posterior (mean, std) pair.
func (r *Result) Posterior(id uarch.EventID) (mean, std float64) {
	return r.Mean[id], r.Std[id]
}

// DerivedPosterior propagates the posterior through a derived-event
// formula (§2 "Errors in Derived Events"): the mean is the formula
// evaluated at the posterior mean, and the std is the first-order delta
// method over the posterior marginals (uarch.Derived.PropagateStd) —
// cross-event posterior covariances are not tracked by the factor graph,
// so the propagation treats the inputs as independent.
func (r *Result) DerivedPosterior(d *uarch.Derived) (mean, std float64) {
	return d.PosteriorFrom(r.Mean, r.Std)
}

// damping applied to factor→variable messages (in natural parameters);
// stabilizes loopy message passing on catalogs whose relations share events.
const damping = 0.7

// Infer runs damped Gaussian message passing until the largest change in
// any posterior mean (relative to the problem scale) drops below tol, or
// maxIter sweeps elapse. It returns the posterior mean and std per event.
// Unobserved events are inferred purely from the invariants (with a weak
// zero-mean prior keeping their marginals proper).
func (g *Graph) Infer(maxIter int, tol float64) Result {
	nv := g.cat.NumEvents()
	rels := g.cat.Rels

	// Rescale the problem to O(1) so priors and tolerances are scale-free.
	scale := 1.0
	for i, o := range g.obs {
		if g.observed[i] && math.Abs(o.mean) > scale {
			scale = math.Abs(o.mean)
		}
	}

	// Fixed unary factors: weak proper prior plus the observation, in
	// scaled units.
	const priorPrec = 1e-12
	unary := g.unary
	scaledMeans := g.scaled
	for i, o := range g.obs {
		unary[i] = natural{prec: priorPrec}
		scaledMeans[i] = 0
		if g.observed[i] {
			m, s := o.mean/scale, o.std/scale
			unary[i] = unary[i].add(fromMoments(m, s*s))
			scaledMeans[i] = m
		}
	}

	// Relation factor noise: σ_r = RelTol · magnitude(observed means),
	// floored so fully-unobserved relations still carry information.
	relVar := g.relVar
	for ri, r := range rels {
		mag := r.Magnitude(scaledMeans)
		if mag < 1e-6 {
			mag = 1e-6
		}
		sd := r.RelTol * mag
		relVar[ri] = sd * sd
	}

	// msg[ri][k] is the message from relation ri to its k-th term's
	// variable. Beliefs are maintained incrementally.
	msg := g.msg
	for ri := range msg {
		for k := range msg[ri] {
			msg[ri][k] = natural{}
		}
	}
	belief := g.belief
	copy(belief, unary)

	means := g.means
	for i := range means {
		means[i], _ = belief[i].moments()
	}

	iters := 0
	converged := false
	for iters = 1; iters <= maxIter; iters++ {
		maxDelta := 0.0
		for ri, r := range rels {
			for k, t := range r.Terms {
				// Gather moments of every other term's variable→factor
				// message (belief minus this factor's old message).
				muJ := 0.0
				varJ := relVar[ri]
				for k2, t2 := range r.Terms {
					if k2 == k {
						continue
					}
					m, v := belief[t2.Event].sub(msg[ri][k2]).moments()
					muJ += t2.Coeff * m
					varJ += t2.Coeff * t2.Coeff * v
				}
				// Solve Σ c_i x_i ~ N(0, σ_r²) for this term.
				cj := t.Coeff
				newMsg := fromMoments(-muJ/cj, varJ/(cj*cj))
				// Damp in natural parameters and update the belief
				// incrementally.
				old := msg[ri][k]
				damped := natural{
					prec: damping*newMsg.prec + (1-damping)*old.prec,
					h:    damping*newMsg.h + (1-damping)*old.h,
				}
				belief[t.Event] = belief[t.Event].sub(old).add(damped)
				msg[ri][k] = damped
			}
		}
		for i := range means {
			m, _ := belief[i].moments()
			if d := math.Abs(m - means[i]); d > maxDelta {
				maxDelta = d
			}
			means[i] = m
		}
		if maxDelta < tol {
			converged = true
			break
		}
	}
	if iters > maxIter {
		iters = maxIter
	}

	res := Result{
		Mean:      make([]float64, nv),
		Std:       make([]float64, nv),
		Iters:     iters,
		Converged: converged,
	}
	for i := range res.Mean {
		m, v := belief[i].moments()
		res.Mean[i] = m * scale
		res.Std[i] = math.Sqrt(v) * scale
	}
	return res
}
