// AVX2+FMA kernels for the fast-math message schedule (fast.go): the
// relation cavity+update body and the convergence test, four lanes per
// instruction. The structure mirrors the scalar schedule exactly — backward
// cavity pass recording weighted contributions and suffix sums, forward
// update pass accumulating prefix sums — with per-lane branches replaced by
// compare masks and blends. All persistent stores (messages, beliefs,
// moved flags) are blended against the active-lane mask, so frozen and
// padding lanes keep their state bit for bit and a lane's results never
// depend on its neighbors or the batch width.
//
// Rounding differs from the scalar schedule only where VFMADD contracts a
// multiply-add; everything else is the same IEEE operation per lane. The
// accuracy-delta gate (fast vs exact) covers both implementations.

#include "textflag.h"

// Float64 constants, broadcast at use sites.
DATA minPrecK<>+0(SB)/8, $0x3D719799812DEA11 // 1e-12, the vanishing-precision floor
DATA maxVarK<>+0(SB)/8, $0x426D1A94A2000000  // 1e12 = 1/minPrec, the flat-cavity variance
DATA oneK<>+0(SB)/8, $0x3FF0000000000000     // 1.0
DATA dampK<>+0(SB)/8, $0x3FE6666666666666    // damping = 0.7
DATA odampK<>+0(SB)/8, $0x3FD3333333333333   // 1 - damping
DATA negDampK<>+0(SB)/8, $0xBFE6666666666666 // -damping (folds the message-h sign flip)
GLOBL minPrecK<>(SB), RODATA, $8
GLOBL maxVarK<>(SB), RODATA, $8
GLOBL oneK<>(SB), RODATA, $8
GLOBL dampK<>(SB), RODATA, $8
GLOBL odampK<>(SB), RODATA, $8
GLOBL negDampK<>(SB), RODATA, $8

DATA absK<>+0(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA absK<>+8(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA absK<>+16(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA absK<>+24(SB)/8, $0x7FFFFFFFFFFFFFFF
GLOBL absK<>(SB), RODATA, $32

// func fastRelAVX(bp, bh, mp, mh, rv, coef *float64, rowOff *int64,
//	k int64, stride8 int64, mask *float64, nVec int64)
//
// Frame: four maxK(=8)-slot YMM scratch arrays — wm at +0, wv at +256,
// sm at +512, sv at +768.
//
// Register plan: DI/SI belief slabs, R8/R9 message rows, R11 coefficients,
// R12 row offsets, R13 k, R14 row stride (bytes), R15 mask, CX block
// countdown, BX block byte offset, DX edge index, AX temp, R10 scratch
// base. Y7 relation noise, Y8/Y9 running sums, Y10 active mask,
// Y11-Y13 damping/one constants, Y14 maxVar, Y15 minPrec in the cavity
// pass and -damping in the update pass.
TEXT ·fastRelAVX(SB), $1024-88
	MOVQ bp+0(FP), DI
	MOVQ bh+8(FP), SI
	MOVQ mp+16(FP), R8
	MOVQ mh+24(FP), R9
	MOVQ coef+40(FP), R11
	MOVQ rowOff+48(FP), R12
	MOVQ k+56(FP), R13
	MOVQ stride8+64(FP), R14
	MOVQ mask+72(FP), R15
	MOVQ nVec+80(FP), CX
	LEAQ scratch-1024(SP), R10
	VBROADCASTSD oneK<>+0(SB), Y13
	VBROADCASTSD dampK<>+0(SB), Y12
	VBROADCASTSD odampK<>+0(SB), Y11
	XORQ BX, BX

relBlock:
	VMOVUPD (R15)(BX*1), Y10
	VPTEST  Y10, Y10
	JZ      relNext         // every lane frozen or padding: state untouched

	MOVQ         rv+32(FP), AX
	VMOVUPD      (AX)(BX*1), Y7
	VBROADCASTSD minPrecK<>+0(SB), Y15
	VBROADCASTSD maxVarK<>+0(SB), Y14

	// Backward cavity pass: j = k-1 … 0.
	VXORPD Y8, Y8, Y8       // accM
	VXORPD Y9, Y9, Y9       // accV
	MOVQ   R13, DX

relCavity:
	DECQ    DX
	MOVQ    (R12)(DX*8), AX
	ADDQ    BX, AX
	VMOVUPD (DI)(AX*1), Y0  // belief prec
	VMOVUPD (SI)(AX*1), Y5  // belief h
	MOVQ    DX, AX
	IMULQ   R14, AX
	ADDQ    BX, AX
	VMOVUPD (R8)(AX*1), Y1  // msg prec
	VMOVUPD (R9)(AX*1), Y6  // msg h

	VSUBPD    Y1, Y0, Y0    // cp = belief - msg precision
	VCMPPD    $13, Y15, Y0, Y2 // cp >= minPrec (GE_OS)
	VDIVPD    Y0, Y13, Y3   // 1/cp (garbage where flat, blended away)
	VBLENDVPD Y2, Y3, Y14, Y3 // vv = informative ? 1/cp : maxVar
	VSUBPD    Y6, Y5, Y5    // belief h - msg h
	VMULPD    Y3, Y5, Y5
	VXORPD    Y4, Y4, Y4
	VBLENDVPD Y2, Y5, Y4, Y5 // mm = informative ? (Δh)·vv : 0

	VBROADCASTSD (R11)(DX*8), Y6 // c
	VMULPD       Y6, Y5, Y5     // wm = c·mm
	MOVQ         DX, AX
	SHLQ         $5, AX
	VMOVUPD      Y8, 512(R10)(AX*1) // sm[j] = suffix mean sum
	VMOVUPD      Y9, 768(R10)(AX*1) // sv[j] = suffix var sum
	VMOVUPD      Y5, 0(R10)(AX*1)   // wm[j]
	VADDPD       Y5, Y8, Y8
	VMULPD       Y6, Y6, Y6
	VMULPD       Y3, Y6, Y6         // wv = c²·vv
	VMOVUPD      Y6, 256(R10)(AX*1) // wv[j]
	VADDPD       Y6, Y9, Y9
	TESTQ        DX, DX
	JNZ          relCavity

	// Forward update pass: j = 0 … k-1, prefix sums in Y8/Y9.
	VBROADCASTSD negDampK<>+0(SB), Y15
	VXORPD       Y8, Y8, Y8
	VXORPD       Y9, Y9, Y9
	XORQ         DX, DX

relUpdate:
	MOVQ    DX, AX
	SHLQ    $5, AX
	VMOVUPD 512(R10)(AX*1), Y0 // sm[j]
	VADDPD  Y8, Y0, Y0         // muJ = prefix + suffix
	VMOVUPD 768(R10)(AX*1), Y1 // sv[j]
	VADDPD  Y9, Y1, Y1
	VADDPD  Y7, Y1, Y1         // varJ = σ_r² + prefix + suffix
	VMOVUPD 0(R10)(AX*1), Y2   // wm[j]
	VADDPD  Y2, Y8, Y8
	VMOVUPD 256(R10)(AX*1), Y3 // wv[j]
	VADDPD  Y3, Y9, Y9

	VDIVPD       Y1, Y13, Y1   // inv = 1/varJ
	VBROADCASTSD (R11)(DX*8), Y2
	VMULPD       Y2, Y2, Y3
	VMULPD       Y1, Y3, Y3    // newP = c²·inv
	VMULPD       Y0, Y2, Y4
	VMULPD       Y1, Y4, Y4    // c·muJ·inv (newH = its negation)

	MOVQ    DX, AX
	IMULQ   R14, AX
	ADDQ    BX, AX
	VMOVUPD (R8)(AX*1), Y5     // old msg prec
	VMOVUPD (R9)(AX*1), Y6     // old msg h

	VMULPD      Y12, Y3, Y3    // damping·newP
	VFMADD231PD Y11, Y5, Y3    // + (1-damping)·oldP
	VMULPD      Y15, Y4, Y4    // (-damping)·(c·muJ·inv) = damping·newH
	VFMADD231PD Y11, Y6, Y4    // + (1-damping)·oldH

	VBLENDVPD Y10, Y3, Y5, Y0  // masked message stores
	VMOVUPD   Y0, (R8)(AX*1)
	VBLENDVPD Y10, Y4, Y6, Y1
	VMOVUPD   Y1, (R9)(AX*1)

	VSUBPD Y5, Y3, Y5          // ΔP = damped - old
	VSUBPD Y6, Y4, Y6          // ΔH

	MOVQ      (R12)(DX*8), AX
	ADDQ      BX, AX
	VMOVUPD   (DI)(AX*1), Y2
	VADDPD    Y5, Y2, Y5
	VBLENDVPD Y10, Y5, Y2, Y5  // masked belief prec update
	VMOVUPD   Y5, (DI)(AX*1)
	VMOVUPD   (SI)(AX*1), Y2
	VADDPD    Y6, Y2, Y6
	VBLENDVPD Y10, Y6, Y2, Y6  // masked belief h update
	VMOVUPD   Y6, (SI)(AX*1)

	INCQ DX
	CMPQ DX, R13
	JL   relUpdate

relNext:
	ADDQ $32, BX
	DECQ CX
	JNZ  relBlock
	VZEROUPPER
	RET

// func fastConvAVX(bp, bh, pp, ph, mask, moved *float64, tol float64,
//	nv int64, stride8 int64, nVec int64)
//
// Divide-free convergence test: for every active lane of every variable,
// OR all-ones into moved when |hN·pO − hO·pN| ≥ tol·pN·pO (with the
// vanishing-precision guard selecting the degenerate forms), and refresh
// the prev slabs with the current beliefs.
TEXT ·fastConvAVX(SB), NOSPLIT, $0-80
	MOVQ bp+0(FP), DI
	MOVQ bh+8(FP), SI
	MOVQ pp+16(FP), R8
	MOVQ ph+24(FP), R9
	MOVQ mask+32(FP), R10
	MOVQ moved+40(FP), R11
	MOVQ nv+56(FP), R13
	MOVQ stride8+64(FP), R14
	MOVQ nVec+72(FP), CX

	VBROADCASTSD oneK<>+0(SB), Y13
	VBROADCASTSD tol+48(FP), Y14
	VBROADCASTSD minPrecK<>+0(SB), Y15
	XORQ         BX, BX

convBlock:
	VMOVUPD (R10)(BX*1), Y10
	VPTEST  Y10, Y10
	JZ      convNext

	VMOVUPD (R11)(BX*1), Y12 // moved accumulator for this block
	XORQ    DX, DX
	XORQ    AX, AX           // row byte offset

convVar:
	LEAQ    (AX)(BX*1), R12
	VMOVUPD (DI)(R12*1), Y0  // pN
	VMOVUPD (SI)(R12*1), Y1  // hN
	VMOVUPD (R8)(R12*1), Y2  // pO
	VMOVUPD (R9)(R12*1), Y3  // hO
	VMOVUPD Y0, (R8)(R12*1)  // prev ← current
	VMOVUPD Y1, (R9)(R12*1)

	VCMPPD $13, Y15, Y0, Y4  // pN informative
	VCMPPD $13, Y15, Y2, Y5  // pO informative

	// Start from the both-flat case (d=0, bound=1: no movement), then
	// blend in the one-sided and two-sided forms.
	VXORPD    Y6, Y6, Y6
	VMOVUPD   Y13, Y7
	VMULPD    Y14, Y2, Y8    // tol·pO
	VBLENDVPD Y5, Y3, Y6, Y6 // pO-only: d = hO
	VBLENDVPD Y5, Y8, Y7, Y7
	VMULPD    Y14, Y0, Y8    // tol·pN
	VBLENDVPD Y4, Y1, Y6, Y6 // pN-only (or both, fixed below): d = hN
	VBLENDVPD Y4, Y8, Y7, Y7

	VANDPD Y5, Y4, Y8        // both informative
	VMULPD Y2, Y1, Y9        // hN·pO
	VMULPD Y2, Y0, Y2        // pN·pO
	VMULPD Y14, Y2, Y2       // tol·pN·pO
	VMULPD Y0, Y3, Y3        // hO·pN
	VSUBPD Y3, Y9, Y9        // hN·pO − hO·pN
	VBLENDVPD Y8, Y9, Y6, Y6
	VBLENDVPD Y8, Y2, Y7, Y7

	VANDPD absK<>+0(SB), Y6, Y6
	VCMPPD $13, Y7, Y6, Y6   // |d| >= bound
	VANDPD Y10, Y6, Y6       // only active lanes count
	VORPD  Y6, Y12, Y12

	ADDQ R14, AX             // next variable row
	INCQ DX
	CMPQ DX, R13
	JL   convVar

	VMOVUPD Y12, (R11)(BX*1)

convNext:
	ADDQ $32, BX
	DECQ CX
	JNZ  convBlock
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
