package graph

import (
	"testing"

	"bayesperf/internal/obs"
	"bayesperf/internal/rng"
	"bayesperf/internal/uarch"
)

// TestGraphMetricsRecording runs instrumented single-window inference and
// checks the execution counters agree with the returned Result — and that
// attaching metrics leaves the posterior bit identical.
func TestGraphMetricsRecording(t *testing.T) {
	c := uarch.Skylake()
	truth := skylakeTruth(c)

	infer := func(m *Metrics, fast bool) Result {
		g := Build(c)
		g.SetFastMath(fast)
		g.SetMetrics(m)
		benchObserveAll(g, truth, rng.New(3))
		return g.Infer(200, 1e-9)
	}

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	res := infer(m, false)
	plain := infer(nil, false)

	for id := range res.Mean {
		if res.Mean[id] != plain.Mean[id] || res.Std[id] != plain.Std[id] {
			t.Fatalf("event %d: metrics changed the posterior", id)
		}
	}

	snap := reg.Snapshot()
	counter := func(name string, labels ...obs.Label) float64 {
		t.Helper()
		ms := snap.Find(name, labels...)
		if ms == nil {
			t.Fatalf("metric %s%v not in snapshot", name, labels)
		}
		return ms.Value
	}
	if got := counter("bayesperf_graph_windows_total"); got != 1 {
		t.Errorf("windows counter = %v, want 1", got)
	}
	if got := counter("bayesperf_graph_sweeps_total"); got != float64(res.Iters) {
		t.Errorf("sweeps counter = %v, want Result.Iters %d", got, res.Iters)
	}
	if got := counter("bayesperf_graph_kernel_windows_total", obs.Label{Key: "kernel", Value: "exact"}); got != 1 {
		t.Errorf("exact kernel counter = %v, want 1", got)
	}
	unconv := counter("bayesperf_graph_unconverged_windows_total")
	if want := float64(0); !res.Converged {
		want = 1
	} else if unconv != want {
		t.Errorf("unconverged counter = %v with Converged=%v", unconv, res.Converged)
	}
	hist := snap.Find("bayesperf_graph_sweeps_per_window")
	if hist == nil || hist.Count != 1 || hist.Sum != float64(res.Iters) {
		t.Errorf("sweeps histogram = %+v, want count 1 sum %d", hist, res.Iters)
	}

	// The fast kernel records under its own label.
	infer(m, true)
	snap = reg.Snapshot()
	if got := counter("bayesperf_graph_kernel_windows_total", obs.Label{Key: "kernel", Value: "fast"}); got != 1 {
		t.Errorf("fast kernel counter = %v, want 1", got)
	}
}

// TestGraphMetricsNilSafe: a nil *Metrics records nothing and never
// dereferences.
func TestGraphMetricsNilSafe(t *testing.T) {
	if m := NewMetrics(nil); m != nil {
		t.Fatalf("NewMetrics(nil) = %v, want nil", m)
	}
	c := uarch.Skylake()
	g := Build(c)
	g.SetMetrics(nil)
	benchObserveAll(g, skylakeTruth(c), rng.New(3))
	if res := g.Infer(50, 1e-9); len(res.Mean) == 0 {
		t.Fatal("inference with nil metrics returned no posterior")
	}
}
