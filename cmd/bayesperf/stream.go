// The stream subcommand runs BayesPerf's online deployment mode end to
// end: simulate a live multiplexed counter stream, correct it with
// sliding-window posterior inference on a parallel EP-engine pool, and
// report DTW-aligned per-interval error (the paper's §2 metric) for three
// estimators of the same stream — the naive sample-and-hold multiplexed
// trace, the sliding-window raw extrapolation, and the BayesPerf-corrected
// posterior — plus the adaptive-vs-round-robin multiplexing comparison and
// a stream-vs-batch totals cross-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bayesperf/internal/measure"
	"bayesperf/internal/rng"
	"bayesperf/internal/stats"
	"bayesperf/internal/stream"
	"bayesperf/internal/timeseries"
	"bayesperf/internal/uarch"
)

// streamReport is the outcome of the streaming pipeline on one catalog.
type streamReport struct {
	Arch      string
	Windows   int
	Intervals int
	Duration  time.Duration

	// Mean DTW-aligned per-interval relative error over all events.
	NaiveAligned     float64
	WindowedAligned  float64
	CorrectedAligned float64

	// Whole-run totals error (batch metric) for cross-checking stream
	// against the PR 1 batch path.
	BatchCorrTotals  float64
	StreamCorrTotals float64

	// Posterior uncertainty under each multiplexing policy.
	RRPostStd float64
	AdPostStd float64
	AdMoves   int

	RRConverged  bool
	AdConverged  bool
	AllConverged bool

	// Derived-event streaming (§6.2): DTW-aligned error of each derived
	// series for the three estimators, plus the mean per-interval
	// delta-method posterior std, per catalog derived event and averaged.
	DerivedRows             []derivedStreamRow
	DerivedNaiveAligned     float64
	DerivedWindowedAligned  float64
	DerivedCorrectedAligned float64
}

// derivedStreamRow is one derived event's streaming outcome.
type derivedStreamRow struct {
	Name             string
	NaiveAligned     float64
	WindowedAligned  float64
	CorrectedAligned float64
	MeanPostStd      float64 // mean per-interval posterior std
	MinPostStd       float64 // smallest emitted std (must stay > 0)
}

// derivedRelErrFloor guards the aligned relative error of derived series:
// derived values are O(0.01–10) ratios, so the raw-event floor of 1 would
// swallow real errors while 1e-3 only guards true near-zeros.
const derivedRelErrFloor = 1e-3

// evalDerivedStream scores one catalog's derived-event series from a
// finished stream result against the ground-truth trace.
func evalDerivedStream(tr *measure.Trace, res *stream.Result, band int) ([]derivedStreamRow, error) {
	cat := tr.Cat
	rows := make([]derivedStreamRow, 0, len(cat.Derived))
	for di := range cat.Derived {
		d := &cat.Derived[di]
		gather := make([]timeseries.Series, len(d.Inputs))
		for i, id := range d.Inputs {
			gather[i] = tr.Series[id]
		}
		truth := timeseries.Map(d.Eval, gather...)
		row := derivedStreamRow{Name: d.Name}
		var err error
		if row.NaiveAligned, err = timeseries.AlignedRelError(truth, res.DerivedNaive[di], band, derivedRelErrFloor); err != nil {
			return nil, err
		}
		if row.WindowedAligned, err = timeseries.AlignedRelError(truth, res.DerivedWindowedRaw[di], band, derivedRelErrFloor); err != nil {
			return nil, err
		}
		if row.CorrectedAligned, err = timeseries.AlignedRelError(truth, res.DerivedCorrected[di], band, derivedRelErrFloor); err != nil {
			return nil, err
		}
		var stds stats.Running
		for _, v := range res.DerivedCorrectedStd[di] {
			stds.Add(v)
		}
		row.MeanPostStd = stds.Mean()
		row.MinPostStd = stds.Min()
		rows = append(rows, row)
	}
	return rows, nil
}

// alignedMean computes the mean DTW-aligned relative error of the target
// series against the ground truth, over all events.
func alignedMean(tr *measure.Trace, target []timeseries.Series, band int) (float64, error) {
	var errs stats.Running
	for id := range tr.Series {
		e, err := timeseries.AlignedRelError(tr.Series[id], target[id], band, 1)
		if err != nil {
			return 0, err
		}
		errs.Add(e)
	}
	return errs.Mean(), nil
}

// totalsErr compares per-event series totals against the true totals.
func totalsErr(tr *measure.Trace, series []timeseries.Series) float64 {
	truth := tr.Totals()
	var errs stats.Running
	for id := range truth {
		errs.Add(stats.RelErr(series[id].Sum(), truth[id], 1))
	}
	return errs.Mean()
}

// runStreamCatalog streams one catalog end to end under both multiplexing
// policies and cross-checks against the batch pipeline (run with the same
// inference budget, cfg.MaxIter/cfg.Tol).
func runStreamCatalog(cat *uarch.Catalog, wl measure.Workload, cfg stream.Config,
	seed uint64, derived bool) (streamReport, error) {

	r := rng.New(seed)
	tr := measure.GroundTruth(cat, wl, r.Split())
	s := r.Split()
	streamSeed := s.Uint64()

	start := time.Now()
	rrRes := stream.RunTrace(tr, measure.NewRoundRobin(cat), cfg, rng.New(streamSeed))
	dur := time.Since(start)

	ad := measure.NewAdaptive(cat, cfg.Window)
	adRes := stream.RunTrace(tr, ad, cfg, rng.New(streamSeed))

	band := tr.Intervals() / 4
	rep := streamReport{
		Arch:         cat.Arch,
		Windows:      rrRes.Windows,
		Intervals:    rrRes.Intervals,
		Duration:     dur,
		RRPostStd:    rrRes.PostRelStd.Mean(),
		AdPostStd:    adRes.PostRelStd.Mean(),
		AdMoves:      ad.Moves(),
		RRConverged:  rrRes.AllConverged,
		AdConverged:  adRes.AllConverged,
		AllConverged: rrRes.AllConverged && adRes.AllConverged,
	}
	var err error
	if rep.NaiveAligned, err = alignedMean(tr, rrRes.NaiveRaw, band); err != nil {
		return rep, err
	}
	if rep.WindowedAligned, err = alignedMean(tr, rrRes.WindowedRaw, band); err != nil {
		return rep, err
	}
	if rep.CorrectedAligned, err = alignedMean(tr, rrRes.Corrected, band); err != nil {
		return rep, err
	}
	rep.StreamCorrTotals = totalsErr(tr, rrRes.Corrected)

	// Derived-event streaming evaluation (§6.2), on the round-robin run —
	// only when asked for: it costs one DTW alignment per estimator per
	// derived event.
	if derived {
		if rep.DerivedRows, err = evalDerivedStream(tr, rrRes, band); err != nil {
			return rep, err
		}
		var dn, dw, dc stats.Running
		for _, row := range rep.DerivedRows {
			dn.Add(row.NaiveAligned)
			dw.Add(row.WindowedAligned)
			dc.Add(row.CorrectedAligned)
		}
		rep.DerivedNaiveAligned = dn.Mean()
		rep.DerivedWindowedAligned = dw.Mean()
		rep.DerivedCorrectedAligned = dc.Mean()
	}

	// Batch cross-check: the PR 1 whole-run pipeline on the same trace.
	batch := runCatalog(cat, wl, cfg.Mux, seed, cfg.MaxIter, cfg.Tol)
	rep.BatchCorrTotals = batch.CorrMeanErr
	return rep, nil
}

func printStreamReport(rep streamReport, cfg stream.Config, derived bool) {
	fmt.Printf("=== %s · streaming ===\n", rep.Arch)
	// Windows/duration/converged on this line all describe the round-robin
	// run; the adaptive run's convergence is reported with its comparison
	// line below.
	fmt.Printf("window=%d hop=%d workers=%d gumbel=%v   %d windows in %v (converged=%v)\n",
		cfg.Window, cfg.Hop, cfg.Workers, cfg.Mux.GumbelReject,
		rep.Windows, rep.Duration.Round(time.Millisecond), rep.RRConverged)
	fmt.Printf("aligned per-interval error (DTW, mean over events):\n")
	fmt.Printf("  raw multiplexed (sample-and-hold):   %7.3f%%\n", 100*rep.NaiveAligned)
	fmt.Printf("  sliding-window raw (no inference):   %7.3f%%\n", 100*rep.WindowedAligned)
	verdict := "IMPROVED"
	if rep.CorrectedAligned >= rep.NaiveAligned {
		verdict = "NOT IMPROVED"
	}
	fmt.Printf("  bayesperf corrected:                 %7.3f%%  [%s]\n", 100*rep.CorrectedAligned, verdict)
	if derived {
		fmt.Printf("derived-event aligned error (naive / windowed / corrected, posterior std per interval):\n")
		for _, row := range rep.DerivedRows {
			fmt.Printf("  %-20s %7.3f%% / %7.3f%% / %7.3f%%   ± %.4f mean std\n",
				row.Name, 100*row.NaiveAligned, 100*row.WindowedAligned,
				100*row.CorrectedAligned, row.MeanPostStd)
		}
		dVerdict := "IMPROVED"
		if rep.DerivedCorrectedAligned >= rep.DerivedWindowedAligned {
			dVerdict = "NOT IMPROVED"
		}
		fmt.Printf("derived mean aligned error: naive %.3f%% → windowed %.3f%% → corrected %.3f%%  [%s]\n",
			100*rep.DerivedNaiveAligned, 100*rep.DerivedWindowedAligned,
			100*rep.DerivedCorrectedAligned, dVerdict)
	}
	// The scheduler comparison is informational: the exit code gates on
	// the correction claim only (an IMPROVED/NOT IMPROVED tag here would
	// suggest otherwise).
	schedVerdict := "adaptive wins"
	if rep.AdPostStd >= rep.RRPostStd {
		schedVerdict = "no gain"
	}
	if !rep.AdConverged {
		schedVerdict += ", adaptive unconverged"
	}
	fmt.Printf("mean posterior rel std: round-robin %.4f%% → adaptive %.4f%% (%d slot moves, %s)\n",
		100*rep.RRPostStd, 100*rep.AdPostStd, rep.AdMoves, schedVerdict)
	fmt.Printf("stream-vs-batch corrected totals err: batch %.3f%% · stream %.3f%% (stream sees ≤%d of %d intervals per inference)\n\n",
		100*rep.BatchCorrTotals, 100*rep.StreamCorrTotals, cfg.Window, rep.Intervals)
}

// streamMain is the entry point of `bayesperf stream`.
func streamMain(args []string) {
	fs := flag.NewFlagSet("bayesperf stream", flag.ExitOnError)
	seed := fs.Uint64("seed", 42, "RNG seed (whole pipeline is deterministic per seed)")
	intervals := fs.Int("intervals", 100, "sampling intervals per workload phase")
	noise := fs.Float64("noise", 0.01, "relative per-interval measurement noise")
	window := fs.Int("window", 0, "intervals per inference window (0 = default)")
	hop := fs.Int("hop", 0, "stride between windows (0 = default)")
	workers := fs.Int("workers", 0, "parallel EP engines (0 = all cores)")
	maxIter := fs.Int("maxiter", 0, "max message-passing sweeps per window (0 = default)")
	tol := fs.Float64("tol", 0, "convergence tolerance on posterior means (0 = default)")
	arch := fs.String("arch", "all", "catalog to run: all, skylake, or power9")
	gumbel := fs.Bool("gumbel", false, "Gumbel outlier rejection before std estimation")
	outliers := fs.Float64("outliers", 0, "probability of an injected corrupted reading per sample")
	derived := fs.Bool("derived", false, "report derived-event (IPC, MPKI, …) aligned error with per-interval posterior stds and gate on corrected beating windowed raw")
	fs.Parse(args)

	cats := selectCatalogs("bayesperf stream", *arch, *intervals)

	cfg := stream.DefaultConfig()
	if *window > 0 {
		cfg.Window = *window
	}
	if *hop > 0 {
		cfg.Hop = *hop
	}
	cfg.Workers = *workers
	if *maxIter > 0 {
		cfg.MaxIter = *maxIter
	}
	if *tol > 0 {
		cfg.Tol = *tol
	}
	cfg.Mux.NoiseFrac = *noise
	cfg.Mux.GumbelReject = *gumbel
	if *outliers > 0 {
		cfg.Mux.OutlierProb = *outliers
		cfg.Mux.OutlierMag = 8
	}

	cfg = cfg.WithDefaults()
	wl := measure.DefaultWorkload(*intervals)
	ok := true
	for _, cat := range cats {
		rep, err := runStreamCatalog(cat, wl, cfg, *seed, *derived)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bayesperf stream: %s: %v\n", cat.Arch, err)
			os.Exit(1)
		}
		printStreamReport(rep, cfg, *derived)
		if rep.CorrectedAligned >= rep.NaiveAligned {
			ok = false
		}
		// The derived gate mirrors the raw-event one: the correction claim
		// is asserted against the naive stream (large, seed-robust margin),
		// plus a non-regression bound against window smoothing alone — the
		// corrected-vs-windowed gap itself is dispersion-dominated per
		// interval, so a strict per-seed inequality would be a coin flip on
		// unlucky realizations even though it holds at the defaults.
		if *derived && (rep.DerivedCorrectedAligned >= rep.DerivedNaiveAligned ||
			rep.DerivedCorrectedAligned >= 1.02*rep.DerivedWindowedAligned) {
			ok = false
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "bayesperf stream: correction did not improve on the raw multiplexed stream")
		os.Exit(1)
	}
}
