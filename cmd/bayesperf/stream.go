// The stream subcommand runs BayesPerf's online deployment mode end to
// end: simulate a live multiplexed counter stream, correct it with
// sliding-window posterior inference on a parallel EP-engine pool, and
// report DTW-aligned per-interval error (the paper's §2 metric) for three
// estimators of the same stream — the naive sample-and-hold multiplexed
// trace, the sliding-window raw extrapolation, and the BayesPerf-corrected
// posterior — plus the adaptive-vs-round-robin multiplexing comparison and
// a stream-vs-batch totals cross-check. All pipeline plumbing lives in the
// pkg/bayesperf Session API; this file only parses flags, forks one
// simulated source per scheduling policy, and prints.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bayesperf/internal/measure"
	"bayesperf/internal/stream"
	"bayesperf/internal/uarch"
	"bayesperf/pkg/bayesperf"
)

// streamReport aggregates one catalog's streaming outcome across the two
// scheduler runs and the batch cross-check.
type streamReport struct {
	Arch      string
	Windows   int
	Intervals int
	Duration  time.Duration

	// Mean DTW-aligned per-interval relative error over all events.
	NaiveAligned     float64
	WindowedAligned  float64
	CorrectedAligned float64

	// Whole-run totals error (batch metric) for cross-checking stream
	// against the batch path.
	BatchCorrTotals  float64
	StreamCorrTotals float64

	// Posterior uncertainty under each multiplexing policy.
	RRPostStd float64
	AdPostStd float64
	AdMoves   int

	RRConverged  bool
	AdConverged  bool
	AllConverged bool

	// Inference effort of the round-robin run (the one the config line
	// describes): windows that exhausted the sweep budget, and total sweeps.
	Unconverged int
	TotalSweeps int

	// Derived-event streaming (§6.2): DTW-aligned error of each derived
	// series for the three estimators, plus per-interval posterior stds.
	DerivedRows             []bayesperf.DerivedStreamReport
	DerivedNaiveAligned     float64
	DerivedWindowedAligned  float64
	DerivedCorrectedAligned float64
}

// streamSession builds the Session for one scheduling policy from the
// resolved stream config.
func streamSession(cat *uarch.Catalog, cfg stream.Config, kind bayesperf.SchedulerKind,
	derived bool, reg *bayesperf.MetricsRegistry) (*bayesperf.Session, error) {

	return bayesperf.New(
		bayesperf.WithMetrics(reg),
		bayesperf.WithCatalog(cat),
		bayesperf.WithMux(cfg.Mux),
		bayesperf.WithWindow(cfg.Window),
		bayesperf.WithHop(cfg.Hop),
		bayesperf.WithWorkers(cfg.Workers),
		bayesperf.WithBatch(cfg.Batch),
		bayesperf.WithCovariance(cfg.Covariance),
		bayesperf.WithFastMath(cfg.FastMath),
		bayesperf.WithInference(cfg.MaxIter, cfg.Tol),
		bayesperf.WithScheduler(kind),
		bayesperf.WithDerived(derived),
	)
}

// runStreamCatalog streams one catalog end to end under both multiplexing
// policies (the same simulated stream, forked) and cross-checks against the
// batch pipeline run with the same inference budget.
func runStreamCatalog(cat *uarch.Catalog, wl measure.Workload, cfg stream.Config,
	seed uint64, derived bool, reg *bayesperf.MetricsRegistry) (streamReport, error) {

	var rep streamReport
	srcRR := bayesperf.NewSimSource(cat, wl, cfg.Mux, seed)
	srcAd := srcRR.Fork()

	rrSess, err := streamSession(cat, cfg, bayesperf.RoundRobin, derived, reg)
	if err != nil {
		return rep, err
	}
	rr, err := rrSess.RunStream(srcRR)
	if err != nil {
		return rep, err
	}
	adSess, err := streamSession(cat, cfg, bayesperf.Adaptive, false, reg)
	if err != nil {
		return rep, err
	}
	ad, err := adSess.RunStream(srcAd)
	if err != nil {
		return rep, err
	}

	rep = streamReport{
		Arch:             cat.Arch,
		Windows:          rr.Windows,
		Intervals:        rr.Intervals,
		Duration:         rr.Duration,
		NaiveAligned:     rr.NaiveAligned,
		WindowedAligned:  rr.WindowedAligned,
		CorrectedAligned: rr.CorrectedAligned,
		StreamCorrTotals: rr.CorrTotalsErr,
		RRPostStd:        rr.PostRelStd,
		AdPostStd:        ad.PostRelStd,
		AdMoves:          ad.SlotMoves,
		RRConverged:      rr.Converged,
		AdConverged:      ad.Converged,
		AllConverged:     rr.Converged && ad.Converged,
		Unconverged:      rr.UnconvergedWindows,
		TotalSweeps:      rr.TotalSweeps,

		DerivedRows:             rr.DerivedStream,
		DerivedNaiveAligned:     rr.DerivedNaiveAligned,
		DerivedWindowedAligned:  rr.DerivedWindowedAligned,
		DerivedCorrectedAligned: rr.DerivedCorrectedAligned,
	}

	// Batch cross-check: the whole-run pipeline on the same trace.
	batch, err := runCatalog(cat, wl, cfg.Mux, seed, cfg.MaxIter, cfg.Tol, cfg.FastMath, reg)
	if err != nil {
		return rep, err
	}
	rep.BatchCorrTotals = batch.CorrMeanErr
	return rep, nil
}

func printStreamReport(rep streamReport, cfg stream.Config, quiet, derived bool) {
	fmt.Printf("=== %s · streaming ===\n", rep.Arch)
	// Windows/duration/converged on this line all describe the round-robin
	// run; the adaptive run's convergence is reported with its comparison
	// line below.
	fmt.Printf("window=%d hop=%d workers=%d batch=%d cov=%v gumbel=%v kernel=%s   %d windows in %v (converged=%v unconverged=%d sweeps=%d)\n",
		cfg.Window, cfg.Hop, cfg.Workers, cfg.Batch, cfg.Covariance, cfg.Mux.GumbelReject,
		kernelName(cfg.FastMath), rep.Windows, rep.Duration.Round(time.Millisecond),
		rep.RRConverged, rep.Unconverged, rep.TotalSweeps)
	if !quiet {
		fmt.Printf("aligned per-interval error (DTW, mean over events):\n")
		fmt.Printf("  raw multiplexed (sample-and-hold):   %7.3f%%\n", 100*rep.NaiveAligned)
		fmt.Printf("  sliding-window raw (no inference):   %7.3f%%\n", 100*rep.WindowedAligned)
	}
	verdict := "IMPROVED"
	if rep.CorrectedAligned >= rep.NaiveAligned {
		verdict = "NOT IMPROVED"
	}
	fmt.Printf("  bayesperf corrected:                 %7.3f%%  [%s]\n", 100*rep.CorrectedAligned, verdict)
	if derived {
		if !quiet {
			fmt.Printf("derived-event aligned error (naive / windowed / corrected, posterior std per interval):\n")
			for _, row := range rep.DerivedRows {
				fmt.Printf("  %-20s %7.3f%% / %7.3f%% / %7.3f%%   ± %.4f mean std\n",
					row.Name, 100*row.NaiveAligned, 100*row.WindowedAligned,
					100*row.CorrectedAligned, row.MeanPostStd)
			}
		}
		dVerdict := "IMPROVED"
		if rep.DerivedCorrectedAligned >= rep.DerivedWindowedAligned {
			dVerdict = "NOT IMPROVED"
		}
		fmt.Printf("derived mean aligned error: naive %.3f%% → windowed %.3f%% → corrected %.3f%%  [%s]\n",
			100*rep.DerivedNaiveAligned, 100*rep.DerivedWindowedAligned,
			100*rep.DerivedCorrectedAligned, dVerdict)
	}
	// The scheduler comparison is informational: the exit code gates on
	// the correction claim only (an IMPROVED/NOT IMPROVED tag here would
	// suggest otherwise).
	schedVerdict := "adaptive wins"
	if rep.AdPostStd >= rep.RRPostStd {
		schedVerdict = "no gain"
	}
	if !rep.AdConverged {
		schedVerdict += ", adaptive unconverged"
	}
	fmt.Printf("mean posterior rel std: round-robin %.4f%% → adaptive %.4f%% (%d slot moves, %s)\n",
		100*rep.RRPostStd, 100*rep.AdPostStd, rep.AdMoves, schedVerdict)
	fmt.Printf("stream-vs-batch corrected totals err: batch %.3f%% · stream %.3f%% (stream sees ≤%d of %d intervals per inference)\n\n",
		100*rep.BatchCorrTotals, 100*rep.StreamCorrTotals, cfg.Window, rep.Intervals)
}

// streamMain is the entry point of `bayesperf stream`.
func streamMain(args []string) {
	fs := flag.NewFlagSet("bayesperf stream", flag.ExitOnError)
	sf := addSharedFlags(fs, 100)
	window := fs.Int("window", 0, "intervals per inference window (0 = default)")
	hop := fs.Int("hop", 0, "stride between windows (0 = default)")
	workers := fs.Int("workers", 0, "parallel EP engines (0 = all cores)")
	batch := fs.Int("batch", 0, "windows fused per compiled-plan inference call (0 = default 8; posteriors are batch-size-invariant)")
	cov := fs.Bool("cov", false, "clique-covariance-aware derived posterior stds (coupled ratio inputs stop counting as independent)")
	gumbel := fs.Bool("gumbel", false, "Gumbel outlier rejection before std estimation")
	outliers := fs.Float64("outliers", 0, "probability of an injected corrupted reading per sample")
	fs.Parse(args)

	cats, err := resolveCatalogs(sf)
	if err != nil {
		fatal("bayesperf stream", 2, err)
	}
	sink, err := newMetricsSink(*sf.metrics, *sf.metricsAddr)
	if err != nil {
		fatal("bayesperf stream", 2, err)
	}

	cfg := stream.DefaultConfig()
	if *window > 0 {
		cfg.Window = *window
	}
	if *hop > 0 {
		cfg.Hop = *hop
	}
	cfg.Workers = *workers
	if *batch > 0 {
		cfg.Batch = *batch
	}
	cfg.Covariance = *cov
	cfg.FastMath = *sf.fast
	maxIter, tol := sf.inference()
	if maxIter > 0 {
		cfg.MaxIter = maxIter
	}
	if tol > 0 {
		cfg.Tol = tol
	}
	cfg.Mux = sf.muxConfig(*gumbel, *outliers)

	cfg = cfg.WithDefaults()
	wl := measure.DefaultWorkload(*sf.intervals)
	ok := true
	for _, cat := range cats {
		rep, err := runStreamCatalog(cat, wl, cfg, *sf.seed, *sf.derived, sink.Registry())
		if err != nil {
			fatal("bayesperf stream", 1, fmt.Errorf("%s: %w", cat.Arch, err))
		}
		printStreamReport(rep, cfg, *sf.quiet, *sf.derived)
		if rep.CorrectedAligned >= rep.NaiveAligned {
			ok = false
		}
		// The derived gate mirrors the raw-event one: the correction claim
		// is asserted against the naive stream (large, seed-robust margin),
		// plus a non-regression bound against window smoothing alone — the
		// corrected-vs-windowed gap itself is dispersion-dominated per
		// interval, so a strict per-seed inequality would be a coin flip on
		// unlucky realizations even though it holds at the defaults.
		if *sf.derived && (rep.DerivedCorrectedAligned >= rep.DerivedNaiveAligned ||
			rep.DerivedCorrectedAligned >= 1.02*rep.DerivedWindowedAligned) {
			ok = false
		}
	}
	// Snapshot before the exit gate so a NOT IMPROVED run still reports its
	// pipeline metrics.
	if err := sink.Flush(); err != nil {
		fatal("bayesperf stream", 1, err)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "bayesperf stream: correction did not improve on the raw multiplexed stream")
		os.Exit(1)
	}
}
