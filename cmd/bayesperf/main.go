// Command bayesperf runs the full BayesPerf pipeline end to end on the
// built-in CPU catalogs: simulate a phase-structured workload (ground
// truth), multiplex its events over the PMU's limited counters (raw noisy
// estimates), correct the estimates with the invariant factor graph, and
// report per-event relative error of raw vs. corrected — demonstrating the
// paper's headline result that the corrected estimates are strictly more
// accurate than naive multiplexed scaling.
//
// Usage:
//
//	bayesperf [run] [-seed N] [-intervals N] [-noise F] [-maxiter N]
//	          [-tol F] [-arch all|skylake|power9] [-derived] [-q]
//	bayesperf stream [flags]   (see cmd/bayesperf/stream.go)
//
// The bare command (or the explicit run subcommand) is the batch mode
// (whole-run totals, PR 1); the stream subcommand is the online mode:
// sliding-window posterior inference over a live multiplexed interval
// stream with DTW-aligned per-interval error reporting and the
// adaptive-vs-round-robin multiplexing comparison. -derived adds the
// derived-event evaluation (§6.2): IPC/MPKI/… with delta-method posterior
// stds, gated on the corrected derived error beating the baseline's.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bayesperf/internal/graph"
	"bayesperf/internal/measure"
	"bayesperf/internal/rng"
	"bayesperf/internal/stats"
	"bayesperf/internal/uarch"
)

// relErrFloor avoids relative-error blow-ups on near-zero counts; event
// totals here are ≥10⁵, so a floor of 1 never distorts a real error.
const relErrFloor = 1.0

// eventReport is one event's raw vs. corrected outcome.
type eventReport struct {
	Name     string
	Fixed    bool
	Coverage float64
	Truth    float64
	RawErr   float64
	CorrErr  float64
}

// catalogReport is the outcome of the pipeline on one catalog.
type catalogReport struct {
	Arch        string
	Groups      int
	Iters       int
	Converged   bool
	Events      []eventReport
	RawMeanErr  float64
	CorrMeanErr float64
	DerivedRows []derivedReport
}

type derivedReport struct {
	Name    string
	Truth   float64
	Corr    float64 // derived value at the posterior mean
	CorrStd float64 // delta-method posterior std
	RawErr  float64
	CorrErr float64
}

// selectCatalogs validates the flags shared by both modes and resolves the
// -arch value, exiting with status 2 on bad input (prog prefixes the
// message).
func selectCatalogs(prog, arch string, intervals int) []*uarch.Catalog {
	if intervals < 1 {
		fmt.Fprintf(os.Stderr, "%s: -intervals must be >= 1 (got %d)\n", prog, intervals)
		os.Exit(2)
	}
	switch strings.ToLower(arch) {
	case "all":
		return uarch.Catalogs()
	case "skylake":
		return []*uarch.Catalog{uarch.Skylake()}
	case "power9":
		return []*uarch.Catalog{uarch.Power9()}
	}
	fmt.Fprintf(os.Stderr, "%s: unknown -arch %q\n", prog, arch)
	os.Exit(2)
	return nil
}

// runCatalog executes generate → multiplex → infer → evaluate on one
// catalog and is the unit under test for the end-to-end acceptance check.
func runCatalog(cat *uarch.Catalog, wl measure.Workload, cfg measure.MuxConfig,
	seed uint64, maxIter int, tol float64) catalogReport {

	r := rng.New(seed)
	tr := measure.GroundTruth(cat, wl, r.Split())
	mux := measure.Multiplex(tr, cfg, r.Split())
	truth := tr.Totals()

	g := graph.Build(cat)
	for id, est := range mux.Est {
		if est.N == 0 {
			continue // never counted: let the invariants infer it
		}
		g.Observe(uarch.EventID(id), est.Total, est.Std)
	}
	post := g.Infer(maxIter, tol)

	rep := catalogReport{
		Arch:      cat.Arch,
		Groups:    len(mux.Groups),
		Iters:     post.Iters,
		Converged: post.Converged,
	}
	var raw, corr stats.Running
	intervals := tr.Intervals()
	for id, want := range truth {
		ev := cat.Event(uarch.EventID(id))
		re := stats.RelErr(mux.Est[id].Total, want, relErrFloor)
		ce := stats.RelErr(post.Mean[id], want, relErrFloor)
		raw.Add(re)
		corr.Add(ce)
		rep.Events = append(rep.Events, eventReport{
			Name:     ev.Name,
			Fixed:    ev.Fixed,
			Coverage: mux.Coverage(uarch.EventID(id), intervals),
			Truth:    want,
			RawErr:   re,
			CorrErr:  ce,
		})
	}
	rep.RawMeanErr = raw.Mean()
	rep.CorrMeanErr = corr.Mean()

	// Derived events (§6.2): propagate raw and corrected totals through
	// the derived formulas and compare against truth. The corrected value
	// carries a delta-method posterior std (graph.Result.DerivedPosterior).
	rawTotals := make([]float64, len(truth))
	for id, est := range mux.Est {
		rawTotals[id] = est.Total
	}
	for i := range cat.Derived {
		d := &cat.Derived[i]
		want := cat.EvalDerived(d, truth)
		corrMean, corrStd := post.DerivedPosterior(d)
		rep.DerivedRows = append(rep.DerivedRows, derivedReport{
			Name:    d.Name,
			Truth:   want,
			Corr:    corrMean,
			CorrStd: corrStd,
			RawErr:  stats.RelErr(cat.EvalDerived(d, rawTotals), want, 1e-9),
			CorrErr: stats.RelErr(corrMean, want, 1e-9),
		})
	}
	return rep
}

func printReport(rep catalogReport, quiet, derived bool) {
	fmt.Printf("=== %s ===\n", rep.Arch)
	fmt.Printf("multiplex groups: %d   inference: %d iters (converged=%v)\n",
		rep.Groups, rep.Iters, rep.Converged)
	if !quiet {
		fmt.Printf("%-42s %5s %9s %12s %12s\n", "event", "kind", "coverage", "raw err", "corrected")
		for _, e := range rep.Events {
			kind := "prog"
			if e.Fixed {
				kind = "fix"
			}
			fmt.Printf("%-42s %5s %8.0f%% %11.3f%% %11.3f%%\n",
				e.Name, kind, 100*e.Coverage, 100*e.RawErr, 100*e.CorrErr)
		}
		// With -derived the posterior table below subsumes these rows.
		if len(rep.DerivedRows) > 0 && !derived {
			fmt.Printf("%-42s %5s %9s %12s %12s\n", "derived event", "", "", "raw err", "corrected")
			for _, d := range rep.DerivedRows {
				fmt.Printf("%-42s %5s %9s %11.3f%% %11.3f%%\n",
					d.Name, "", "", 100*d.RawErr, 100*d.CorrErr)
			}
		}
	}
	verdict := "IMPROVED"
	if rep.CorrMeanErr >= rep.RawMeanErr {
		verdict = "NOT IMPROVED"
	}
	fmt.Printf("mean relative error: raw-multiplexed %.3f%% → bayesperf-corrected %.3f%%  [%s]\n",
		100*rep.RawMeanErr, 100*rep.CorrMeanErr, verdict)
	if derived {
		fmt.Printf("derived-event posteriors (delta method over the factor-graph marginals):\n")
		for _, d := range rep.DerivedRows {
			fmt.Printf("  %-20s truth %10.4f   posterior %10.4f ± %.4f   raw err %7.3f%% → corrected %7.3f%%\n",
				d.Name, d.Truth, d.Corr, d.CorrStd, 100*d.RawErr, 100*d.CorrErr)
		}
	}
	fmt.Println()
}

// derivedSeeds is the ensemble size behind the batch -derived verdict. A
// single realization's derived error is dominated by the luck of two
// nearly-cancelling input-event errors, so the §6.2 claim — correction
// shrinks derived-event error — is asserted on the seed-pooled estimate,
// mirroring the paper's run-averaged evaluation.
const derivedSeeds = 11

// derivedEnsemble pools the derived-event raw/corrected mean errors over
// derivedSeeds consecutive seeds, reusing the base seed's already-computed
// report as the first member (the pipeline is deterministic per seed, so
// re-running it would be pure waste). The loop counts members rather than
// comparing seeds so a base seed near the top of the uint64 range still
// yields a full ensemble (individual member seeds wrapping is harmless).
func derivedEnsemble(base catalogReport, cat *uarch.Catalog, wl measure.Workload,
	cfg measure.MuxConfig, seed uint64, maxIter int, tol float64) (raw, corr float64) {

	var dRaw, dCorr stats.Running
	pool := func(rows []derivedReport) {
		for _, d := range rows {
			dRaw.Add(d.RawErr)
			dCorr.Add(d.CorrErr)
		}
	}
	pool(base.DerivedRows)
	for i := 1; i < derivedSeeds; i++ {
		pool(runCatalog(cat, wl, cfg, seed+uint64(i), maxIter, tol).DerivedRows)
	}
	return dRaw.Mean(), dCorr.Mean()
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "stream" {
		streamMain(args[1:])
		return
	}
	if len(args) > 0 && args[0] == "run" {
		args = args[1:] // explicit alias for the default batch mode
	}
	seed := flag.Uint64("seed", 42, "RNG seed (whole pipeline is deterministic per seed)")
	intervals := flag.Int("intervals", 200, "sampling intervals per workload phase")
	noise := flag.Float64("noise", 0.01, "relative per-interval measurement noise")
	maxIter := flag.Int("maxiter", 500, "max message-passing sweeps")
	tol := flag.Float64("tol", 1e-9, "convergence tolerance on posterior means")
	arch := flag.String("arch", "all", "catalog to run: all, skylake, or power9")
	derived := flag.Bool("derived", false, "evaluate derived events (IPC, MPKI, …) with propagated posterior stds and gate on their improvement")
	quiet := flag.Bool("q", false, "only print per-catalog summary lines")
	flag.CommandLine.Parse(args)

	cats := selectCatalogs("bayesperf", *arch, *intervals)

	wl := measure.DefaultWorkload(*intervals)
	cfg := measure.DefaultMuxConfig()
	cfg.NoiseFrac = *noise

	ok := true
	for _, cat := range cats {
		rep := runCatalog(cat, wl, cfg, *seed, *maxIter, *tol)
		printReport(rep, *quiet, *derived)
		if rep.CorrMeanErr >= rep.RawMeanErr {
			ok = false
		}
		if *derived {
			dRaw, dCorr := derivedEnsemble(rep, cat, wl, cfg, *seed, *maxIter, *tol)
			dVerdict := "IMPROVED"
			if dCorr >= dRaw {
				dVerdict = "NOT IMPROVED"
				ok = false
			}
			fmt.Printf("derived mean relative error over %d seeds: raw %.3f%% → corrected %.3f%%  [%s]\n\n",
				derivedSeeds, 100*dRaw, 100*dCorr, dVerdict)
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "bayesperf: correction did not improve on raw multiplexing")
		os.Exit(1)
	}
}
