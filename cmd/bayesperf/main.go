// Command bayesperf runs the full BayesPerf pipeline end to end: simulate a
// phase-structured workload (ground truth), multiplex its events over the
// PMU's limited counters (raw noisy estimates), correct the estimates with
// the invariant factor graph, and report per-event relative error of raw
// vs. corrected — demonstrating the paper's headline result that the
// corrected estimates are strictly more accurate than naive multiplexed
// scaling.
//
// Usage:
//
//	bayesperf [run] [-seed N] [-intervals N] [-noise F] [-maxiter N]
//	          [-tol F] [-arch all|<name>] [-catalog file.json]
//	          [-derived] [-q]
//	bayesperf stream [flags]   (see cmd/bayesperf/stream.go)
//
// The bare command (or the explicit run subcommand) is the batch mode
// (whole-run totals); the stream subcommand is the online mode. Catalogs
// resolve from the named registry (-arch skylake, power9, …) or from a JSON
// spec file (-catalog zen.json) — the CLI is a thin adapter over the
// embeddable pkg/bayesperf Session API, which owns all pipeline plumbing.
package main

import (
	"flag"
	"fmt"
	"os"

	"bayesperf/internal/measure"
	"bayesperf/internal/stats"
	"bayesperf/internal/uarch"
	"bayesperf/pkg/bayesperf"
)

// runCatalog executes generate → multiplex → infer → evaluate on one
// catalog through the Session API; it is the unit under test for the
// end-to-end acceptance check.
func runCatalog(cat *uarch.Catalog, wl measure.Workload, mux measure.MuxConfig,
	seed uint64, maxIter int, tol float64, fast bool,
	reg *bayesperf.MetricsRegistry) (*bayesperf.Report, error) {

	sess, err := bayesperf.New(
		bayesperf.WithCatalog(cat),
		bayesperf.WithMux(mux),
		bayesperf.WithInference(maxIter, tol),
		bayesperf.WithFastMath(fast),
		bayesperf.WithMetrics(reg),
	)
	if err != nil {
		return nil, err
	}
	return sess.RunBatch(bayesperf.NewSimSource(cat, wl, mux, seed))
}

func printReport(rep *bayesperf.Report, quiet, derived bool) {
	fmt.Printf("=== %s ===\n", rep.Arch)
	fmt.Printf("multiplex groups: %d   inference: %d iters (converged=%v) kernel=%s sweeps=%d unconverged=%d\n",
		rep.Groups, rep.Iters, rep.Converged, kernelName(rep.FastMath),
		rep.TotalSweeps, rep.UnconvergedWindows)
	if !quiet {
		fmt.Printf("%-42s %5s %9s %12s %12s\n", "event", "kind", "coverage", "raw err", "corrected")
		for _, e := range rep.Events {
			kind := "prog"
			if e.Fixed {
				kind = "fix"
			}
			fmt.Printf("%-42s %5s %8.0f%% %11.3f%% %11.3f%%\n",
				e.Name, kind, 100*e.Coverage, 100*e.RawErr, 100*e.CorrErr)
		}
		// With -derived the posterior table below subsumes these rows.
		if len(rep.Derived) > 0 && !derived {
			fmt.Printf("%-42s %5s %9s %12s %12s\n", "derived event", "", "", "raw err", "corrected")
			for _, d := range rep.Derived {
				fmt.Printf("%-42s %5s %9s %11.3f%% %11.3f%%\n",
					d.Name, "", "", 100*d.RawErr, 100*d.CorrErr)
			}
		}
	}
	verdict := "IMPROVED"
	if !rep.Improved() {
		verdict = "NOT IMPROVED"
	}
	fmt.Printf("mean relative error: raw-multiplexed %.3f%% → bayesperf-corrected %.3f%%  [%s]\n",
		100*rep.RawMeanErr, 100*rep.CorrMeanErr, verdict)
	if derived {
		fmt.Printf("derived-event posteriors (delta method over the factor-graph marginals):\n")
		for _, d := range rep.Derived {
			fmt.Printf("  %-20s truth %10.4f   posterior %10.4f ± %.4f   raw err %7.3f%% → corrected %7.3f%%\n",
				d.Name, d.Truth, d.Mean, d.Std, 100*d.RawErr, 100*d.CorrErr)
		}
	}
	fmt.Println()
}

// derivedSeeds is the ensemble size behind the batch -derived verdict. A
// single realization's derived error is dominated by the luck of two
// nearly-cancelling input-event errors, so the §6.2 claim — correction
// shrinks derived-event error — is asserted on the seed-pooled estimate,
// mirroring the paper's run-averaged evaluation.
const derivedSeeds = 11

// derivedEnsemble pools the derived-event raw/corrected mean errors over
// derivedSeeds consecutive seeds, reusing the base seed's already-computed
// report as the first member (the pipeline is deterministic per seed, so
// re-running it would be pure waste). The loop counts members rather than
// comparing seeds so a base seed near the top of the uint64 range still
// yields a full ensemble (individual member seeds wrapping is harmless).
func derivedEnsemble(base *bayesperf.Report, cat *uarch.Catalog, wl measure.Workload,
	mux measure.MuxConfig, seed uint64, maxIter int, tol float64, fast bool,
	reg *bayesperf.MetricsRegistry) (raw, corr float64, err error) {

	var dRaw, dCorr stats.Running
	pool := func(rows []bayesperf.DerivedReport) {
		for _, d := range rows {
			dRaw.Add(d.RawErr)
			dCorr.Add(d.CorrErr)
		}
	}
	pool(base.Derived)
	for i := 1; i < derivedSeeds; i++ {
		rep, rerr := runCatalog(cat, wl, mux, seed+uint64(i), maxIter, tol, fast, reg)
		if rerr != nil {
			return 0, 0, rerr
		}
		pool(rep.Derived)
	}
	return dRaw.Mean(), dCorr.Mean(), nil
}

// fatal prints the prefixed message and exits with the given status.
func fatal(prog string, status int, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(status)
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "stream" {
		streamMain(args[1:])
		return
	}
	if len(args) > 0 && args[0] == "run" {
		args = args[1:] // explicit alias for the default batch mode
	}
	fs := flag.NewFlagSet("bayesperf run", flag.ExitOnError)
	sf := addSharedFlags(fs, 200)
	fs.Parse(args)

	cats, err := resolveCatalogs(sf)
	if err != nil {
		fatal("bayesperf", 2, err)
	}
	sink, err := newMetricsSink(*sf.metrics, *sf.metricsAddr)
	if err != nil {
		fatal("bayesperf", 2, err)
	}
	wl := measure.DefaultWorkload(*sf.intervals)
	mux := sf.muxConfig(false, 0)
	maxIter, tol := sf.inference()

	ok := true
	for _, cat := range cats {
		rep, err := runCatalog(cat, wl, mux, *sf.seed, maxIter, tol, *sf.fast, sink.Registry())
		if err != nil {
			fatal("bayesperf", 1, err)
		}
		printReport(rep, *sf.quiet, *sf.derived)
		if !rep.Improved() {
			ok = false
		}
		if *sf.derived {
			dRaw, dCorr, err := derivedEnsemble(rep, cat, wl, mux, *sf.seed, maxIter, tol, *sf.fast, sink.Registry())
			if err != nil {
				fatal("bayesperf", 1, err)
			}
			dVerdict := "IMPROVED"
			if dCorr >= dRaw {
				dVerdict = "NOT IMPROVED"
				ok = false
			}
			fmt.Printf("derived mean relative error over %d seeds: raw %.3f%% → corrected %.3f%%  [%s]\n\n",
				derivedSeeds, 100*dRaw, 100*dCorr, dVerdict)
		}
	}
	// Snapshot before the exit gate so a NOT IMPROVED run still reports its
	// pipeline metrics.
	if err := sink.Flush(); err != nil {
		fatal("bayesperf", 1, err)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "bayesperf: correction did not improve on raw multiplexing")
		os.Exit(1)
	}
}
