// CLI observability surface: the -metrics/-metrics-addr flags shared by
// the run and stream subcommands. One registry serves the whole invocation
// (every catalog, every session), snapshotted to a file at exit and/or
// served live over stdlib net/http while the pipeline runs.
package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"bayesperf/pkg/bayesperf"
)

// metricsSink owns the CLI's metrics registry and its two outputs. The
// zero-config sink (no flags given) carries a nil registry, which disables
// instrumentation end to end.
type metricsSink struct {
	reg  *bayesperf.MetricsRegistry
	path string // -metrics destination: "" = off, "-" = stdout, else a file
}

// newMetricsSink builds the sink from the -metrics/-metrics-addr flags.
// The listener is bound synchronously so a bad address fails the run up
// front; serving then proceeds in the background for the process lifetime
// (GET /metrics = Prometheus text, GET /metrics.json = JSON snapshot).
func newMetricsSink(path, addr string) (*metricsSink, error) {
	s := &metricsSink{path: path}
	if path == "" && addr == "" {
		return s, nil
	}
	s.reg = bayesperf.NewMetricsRegistry()
	if addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("-metrics-addr %s: %w", addr, err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = s.reg.WritePrometheus(w)
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = s.reg.WriteJSON(w)
		})
		go func() { _ = http.Serve(ln, mux) }()
	}
	return s, nil
}

// Registry returns the registry to thread into sessions (nil when metrics
// are off — WithMetrics(nil) keeps the pipeline uninstrumented).
func (s *metricsSink) Registry() *bayesperf.MetricsRegistry { return s.reg }

// Flush writes the exit snapshot configured by -metrics: Prometheus text by
// default, JSON when the destination ends in .json, stdout for "-".
func (s *metricsSink) Flush() error {
	if s.path == "" {
		return nil
	}
	if s.path == "-" {
		return s.reg.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(s.path, ".json") {
		err = s.reg.WriteJSON(f)
	} else {
		err = s.reg.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
