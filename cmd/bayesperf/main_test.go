package main

import (
	"testing"

	"bayesperf/internal/measure"
	"bayesperf/internal/stats"
	"bayesperf/internal/uarch"
	"bayesperf/pkg/bayesperf"
)

// mustRunCatalog fails the test on pipeline errors (the CLI exits instead).
func mustRunCatalog(t *testing.T, cat *uarch.Catalog, wl measure.Workload,
	mux measure.MuxConfig, seed uint64, maxIter int, tol float64) *bayesperf.Report {
	t.Helper()
	rep, err := runCatalog(cat, wl, mux, seed, maxIter, tol, false, nil)
	if err != nil {
		t.Fatalf("%s: %v", cat.Arch, err)
	}
	return rep
}

// TestDefaultRunImproves is the literal acceptance criterion: at the CLI's
// default configuration (seed 42, 200 intervals/phase, 1% noise), the
// corrected mean relative error is strictly below the raw multiplexed error
// on both built-in catalogs.
func TestDefaultRunImproves(t *testing.T) {
	wl := measure.DefaultWorkload(200)
	cfg := measure.DefaultMuxConfig()
	for _, cat := range uarch.Catalogs() {
		rep := mustRunCatalog(t, cat, wl, cfg, 42, 500, 1e-9)
		if !rep.Converged {
			t.Errorf("%s: inference did not converge (%d iters)", cat.Arch, rep.Iters)
		}
		if rep.CorrMeanErr >= rep.RawMeanErr {
			t.Errorf("%s: corrected mean err %.4f%% not below raw %.4f%%",
				cat.Arch, 100*rep.CorrMeanErr, 100*rep.RawMeanErr)
		}
	}
}

// TestCorrectionIsStatisticallyBetter checks the guarantee the Bayesian
// projection actually provides: the correction minimizes error in the
// observation-precision-weighted norm, so individual unlucky realizations
// may see a hair more mean relative error, but (a) the worst case stays
// tightly bounded and (b) the improvement pooled across seeds is large.
func TestCorrectionIsStatisticallyBetter(t *testing.T) {
	wl := measure.DefaultWorkload(200)
	cfg := measure.DefaultMuxConfig()
	for _, cat := range uarch.Catalogs() {
		var margin stats.Running
		for seed := uint64(1); seed <= 15; seed++ {
			rep := mustRunCatalog(t, cat, wl, cfg, seed, 500, 1e-9)
			if !rep.Converged {
				t.Errorf("%s seed=%d: inference did not converge", cat.Arch, seed)
			}
			// Never materially worse than raw on any single run.
			if rep.CorrMeanErr > 1.05*rep.RawMeanErr {
				t.Errorf("%s seed=%d: corrected err %.4f%% exceeds 1.05× raw %.4f%%",
					cat.Arch, seed, 100*rep.CorrMeanErr, 100*rep.RawMeanErr)
			}
			margin.Add((rep.RawMeanErr - rep.CorrMeanErr) / rep.RawMeanErr)
		}
		// Pooled across seeds the correction must deliver a real win.
		if margin.Mean() < 0.10 {
			t.Errorf("%s: pooled mean improvement %.1f%% < 10%%", cat.Arch, 100*margin.Mean())
		}
	}
}

// TestDerivedEnsembleImproves is the batch half of the §6.2 derived-event
// acceptance: pooled over the CLI's seed ensemble, the corrected derived
// error (IPC, MPKI, …) is below the raw multiplexed one on both catalogs,
// and every reported derived posterior carries a positive delta-method std.
func TestDerivedEnsembleImproves(t *testing.T) {
	wl := measure.DefaultWorkload(200)
	cfg := measure.DefaultMuxConfig()
	for _, cat := range uarch.Catalogs() {
		rep := mustRunCatalog(t, cat, wl, cfg, 42, 500, 1e-9)
		dRaw, dCorr, err := derivedEnsemble(rep, cat, wl, cfg, 42, 500, 1e-9, false, nil)
		if err != nil {
			t.Fatalf("%s: %v", cat.Arch, err)
		}
		if dCorr >= dRaw {
			t.Errorf("%s: pooled corrected derived err %.4f%% not below raw %.4f%%",
				cat.Arch, 100*dCorr, 100*dRaw)
		}
		if len(rep.Derived) != len(cat.Derived) {
			t.Fatalf("%s: %d derived rows, want %d", cat.Arch, len(rep.Derived), len(cat.Derived))
		}
		for _, d := range rep.Derived {
			if d.Std <= 0 {
				t.Errorf("%s/%s: posterior std %v, want > 0", cat.Arch, d.Name, d.Std)
			}
			// The delta-method std must be in a sane relationship to the
			// value: neither collapsed nor wider than the value itself.
			if d.Std > d.Truth {
				t.Errorf("%s/%s: posterior std %v exceeds the value %v", cat.Arch, d.Name, d.Std, d.Truth)
			}
		}
	}
}

// TestDerivedEnsembleSeedWrap: a base seed near the top of the uint64
// range must still pool a full-size ensemble (member seeds may wrap, the
// loop must not terminate early on overflow).
func TestDerivedEnsembleSeedWrap(t *testing.T) {
	wl := measure.DefaultWorkload(30)
	cfg := measure.DefaultMuxConfig()
	cat := uarch.Skylake()
	seed := ^uint64(0) - 3 // wraps after 4 of the 11 members
	base := mustRunCatalog(t, cat, wl, cfg, seed, 200, 1e-8)
	dRaw, dCorr, err := derivedEnsemble(base, cat, wl, cfg, seed, 200, 1e-8, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dRaw <= 0 || dCorr <= 0 {
		t.Errorf("wrapped-seed ensemble pooled nothing: raw %v corrected %v", dRaw, dCorr)
	}
}

// TestHighNoiseRegime stresses the observation model: with 5× the default
// measurement noise the correction must still deliver at default seed.
func TestHighNoiseRegime(t *testing.T) {
	wl := measure.DefaultWorkload(150)
	cfg := measure.DefaultMuxConfig()
	cfg.NoiseFrac = 0.05
	for _, cat := range uarch.Catalogs() {
		rep := mustRunCatalog(t, cat, wl, cfg, 42, 500, 1e-9)
		if rep.CorrMeanErr >= rep.RawMeanErr {
			t.Errorf("%s: high-noise corrected err %.4f%% not below raw %.4f%%",
				cat.Arch, 100*rep.CorrMeanErr, 100*rep.RawMeanErr)
		}
	}
}
