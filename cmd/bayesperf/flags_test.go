package main

import (
	"flag"
	"strings"
	"testing"

	"bayesperf/internal/uarch"
)

func parseShared(t *testing.T, args ...string) *sharedFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	sf := addSharedFlags(fs, 100)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return sf
}

// TestResolveCatalogsUnknownArchListsChoices: the -arch error must
// enumerate the registry's valid names, from one shared code path for both
// subcommands.
func TestResolveCatalogsUnknownArchListsChoices(t *testing.T) {
	sf := parseShared(t, "-arch", "itanium")
	_, err := resolveCatalogs(sf)
	if err == nil {
		t.Fatal("unknown arch accepted")
	}
	msg := err.Error()
	for _, want := range append([]string{"itanium", "all"}, uarch.Names()...) {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

// TestResolveCatalogsRegistry: named and 'all' resolution go through the
// registry, case-insensitively.
func TestResolveCatalogsRegistry(t *testing.T) {
	cats, err := resolveCatalogs(parseShared(t, "-arch", "SkyLake"))
	if err != nil || len(cats) != 1 || cats[0].Arch != "x86_64-skylake" {
		t.Fatalf("arch skylake resolved to %v (%v)", cats, err)
	}
	all, err := resolveCatalogs(parseShared(t))
	if err != nil || len(all) != len(uarch.Names()) {
		t.Fatalf("arch all resolved to %d catalogs (%v), want %d", len(all), err, len(uarch.Names()))
	}
}

// TestResolveCatalogsFile: -catalog loads a JSON spec file, overriding
// -arch, and validates ground-truth models.
func TestResolveCatalogsFile(t *testing.T) {
	cats, err := resolveCatalogs(parseShared(t, "-catalog", "../../examples/catalogs/zen.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 1 || cats[0].Arch != "x86_64-zen3" {
		t.Fatalf("zen spec resolved to %v", cats)
	}
	if _, err := resolveCatalogs(parseShared(t, "-catalog", "/no/such/file.json")); err == nil {
		t.Error("missing catalog file accepted")
	}
}

// TestResolveCatalogsBadIntervals: the shared interval validation rejects
// non-positive values with an error (the subcommands turn it into exit 2).
func TestResolveCatalogsBadIntervals(t *testing.T) {
	if _, err := resolveCatalogs(parseShared(t, "-intervals", "0")); err == nil {
		t.Error("zero intervals accepted")
	}
}
