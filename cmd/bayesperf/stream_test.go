package main

import (
	"testing"

	"bayesperf/internal/measure"
	"bayesperf/internal/stream"
	"bayesperf/internal/uarch"
)

// TestStreamCLIImproves is the stream subcommand's literal acceptance
// criterion at the CLI defaults (seed 42, 100 intervals/phase, 1% noise):
// the corrected trace's DTW-aligned per-interval error is below the raw
// multiplexed stream's on both catalogs, and the adaptive scheduler beats
// round-robin on mean posterior relative std.
func TestStreamCLIImproves(t *testing.T) {
	wl := measure.DefaultWorkload(100)
	cfg := stream.DefaultConfig().WithDefaults()
	for _, cat := range uarch.Catalogs() {
		rep, err := runStreamCatalog(cat, wl, cfg, 42, true, nil)
		if err != nil {
			t.Fatalf("%s: %v", cat.Arch, err)
		}
		if !rep.AllConverged {
			t.Errorf("%s: some windows did not converge", cat.Arch)
		}
		if rep.CorrectedAligned >= rep.NaiveAligned {
			t.Errorf("%s: corrected aligned error %.4f%% not below raw multiplexed %.4f%%",
				cat.Arch, 100*rep.CorrectedAligned, 100*rep.NaiveAligned)
		}
		if rep.CorrectedAligned >= 1.02*rep.WindowedAligned {
			t.Errorf("%s: corrected aligned error %.4f%% regresses windowed raw %.4f%%",
				cat.Arch, 100*rep.CorrectedAligned, 100*rep.WindowedAligned)
		}
		if rep.AdPostStd >= rep.RRPostStd {
			t.Errorf("%s: adaptive posterior rel std %.5f not below round-robin %.5f",
				cat.Arch, rep.AdPostStd, rep.RRPostStd)
		}
		if rep.AdMoves == 0 {
			t.Errorf("%s: adaptive scheduler never moved a slot", cat.Arch)
		}
	}
}

// TestStreamCLIDerived is the streaming half of the §6.2 derived-event
// acceptance at the CLI defaults: the corrected derived series' aligned
// error is below both the naive stream's and the windowed-raw baseline's
// on both catalogs, every emitted interval carries a strictly positive
// posterior std, and the derived-event improvement over naive is larger
// than the raw events' — correcting the inputs stops ratio errors from
// compounding.
func TestStreamCLIDerived(t *testing.T) {
	wl := measure.DefaultWorkload(100)
	cfg := stream.DefaultConfig().WithDefaults()
	for _, cat := range uarch.Catalogs() {
		rep, err := runStreamCatalog(cat, wl, cfg, 42, true, nil)
		if err != nil {
			t.Fatalf("%s: %v", cat.Arch, err)
		}
		if len(rep.DerivedRows) != len(cat.Derived) {
			t.Fatalf("%s: %d derived rows, want %d", cat.Arch, len(rep.DerivedRows), len(cat.Derived))
		}
		for _, row := range rep.DerivedRows {
			if row.MinPostStd <= 0 {
				t.Errorf("%s/%s: min per-interval posterior std %v, want > 0",
					cat.Arch, row.Name, row.MinPostStd)
			}
		}
		if rep.DerivedCorrectedAligned >= rep.DerivedNaiveAligned {
			t.Errorf("%s: corrected derived aligned error %.4f%% not below naive %.4f%%",
				cat.Arch, 100*rep.DerivedCorrectedAligned, 100*rep.DerivedNaiveAligned)
		}
		if rep.DerivedCorrectedAligned >= rep.DerivedWindowedAligned {
			t.Errorf("%s: corrected derived aligned error %.4f%% not below windowed raw %.4f%%",
				cat.Arch, 100*rep.DerivedCorrectedAligned, 100*rep.DerivedWindowedAligned)
		}
		rawShrink := 1 - rep.CorrectedAligned/rep.NaiveAligned
		derivedShrink := 1 - rep.DerivedCorrectedAligned/rep.DerivedNaiveAligned
		if derivedShrink <= rawShrink {
			t.Errorf("%s: derived error shrink %.1f%% not above raw-event shrink %.1f%%",
				cat.Arch, 100*derivedShrink, 100*rawShrink)
		}
	}
}

// TestStreamCLITotalsCrossCheck: summing the stream's corrected
// per-interval series must land in the same accuracy regime as the batch
// pipeline's totals (each stream window sees only a fraction of the run,
// so some accuracy loss versus batch is expected — but bounded).
func TestStreamCLITotalsCrossCheck(t *testing.T) {
	wl := measure.DefaultWorkload(100)
	cfg := stream.DefaultConfig().WithDefaults()
	for _, cat := range uarch.Catalogs() {
		rep, err := runStreamCatalog(cat, wl, cfg, 42, true, nil)
		if err != nil {
			t.Fatalf("%s: %v", cat.Arch, err)
		}
		if rep.StreamCorrTotals > 0.05 {
			t.Errorf("%s: stream corrected totals error %.3f%% above 5%%",
				cat.Arch, 100*rep.StreamCorrTotals)
		}
		if rep.StreamCorrTotals > 10*rep.BatchCorrTotals {
			t.Errorf("%s: stream totals error %.3f%% more than 10x batch %.3f%%",
				cat.Arch, 100*rep.StreamCorrTotals, 100*rep.BatchCorrTotals)
		}
	}
}

// TestStreamCLIGumbelFlag: with corrupted readings injected, the -gumbel
// path must lower the corrected aligned error.
func TestStreamCLIGumbelFlag(t *testing.T) {
	wl := measure.DefaultWorkload(80)
	cfg := stream.DefaultConfig().WithDefaults()
	cfg.Mux.OutlierProb = 0.02
	cfg.Mux.OutlierMag = 8

	cat := uarch.Skylake()
	plain, err := runStreamCatalog(cat, wl, cfg, 7, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mux.GumbelReject = true
	filtered, err := runStreamCatalog(cat, wl, cfg, 7, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if filtered.CorrectedAligned >= plain.CorrectedAligned {
		t.Errorf("gumbel rejection did not help: %.4f%% -> %.4f%%",
			100*plain.CorrectedAligned, 100*filtered.CorrectedAligned)
	}
}
