// Shared flag plumbing for the run and stream subcommands: both modes take
// the same seed/arch/catalog/noise/inference/reporting knobs, so they are
// defined once here and cannot drift between subcommands.
package main

import (
	"flag"
	"fmt"
	"strings"

	"bayesperf/internal/measure"
	"bayesperf/internal/uarch"
)

// sharedFlags are the knobs common to `bayesperf run` and
// `bayesperf stream`.
type sharedFlags struct {
	seed      *uint64
	intervals *int
	noise     *float64
	maxIter   *int
	tol       *float64
	arch      *string
	catalog   *string
	fast      *bool
	derived   *bool
	quiet     *bool

	metrics     *string
	metricsAddr *string
}

// addSharedFlags registers the shared flag set on fs. defaultIntervals
// differs between the modes (batch sees whole-run totals and wants longer
// runs; stream pays per-window inference).
func addSharedFlags(fs *flag.FlagSet, defaultIntervals int) *sharedFlags {
	return &sharedFlags{
		seed:      fs.Uint64("seed", 42, "RNG seed (whole pipeline is deterministic per seed)"),
		intervals: fs.Int("intervals", defaultIntervals, "sampling intervals per workload phase"),
		noise:     fs.Float64("noise", 0.01, "relative per-interval measurement noise"),
		maxIter:   fs.Int("maxiter", 0, "max message-passing sweeps per inference (0 = default 500)"),
		tol:       fs.Float64("tol", 0, "convergence tolerance on posterior means (0 = default 1e-9)"),
		arch:      fs.String("arch", "all", "registered catalog to run ('all' for every one; see -catalog for files)"),
		catalog:   fs.String("catalog", "", "load the catalog from a JSON spec file instead of the registry"),
		fast:      fs.Bool("fast", false, "fast-math inference kernel (O(k) fused cavities + AVX2 where available; posteriors match the exact kernel to a tight tolerance, not bit for bit)"),
		derived:   fs.Bool("derived", false, "evaluate derived events (IPC, MPKI, …) with propagated posterior stds and gate on their improvement"),
		quiet:     fs.Bool("q", false, "only print per-catalog summary lines"),

		metrics:     fs.String("metrics", "", "write a pipeline metrics snapshot at exit ('-' = stdout; Prometheus text, or JSON with a .json suffix)"),
		metricsAddr: fs.String("metrics-addr", "", "serve live pipeline metrics over HTTP (e.g. :9090; GET /metrics and /metrics.json)"),
	}
}

// resolveCatalogs validates the shared flags and resolves -catalog/-arch
// into the catalogs to run: a JSON spec file when -catalog is given,
// otherwise the named registry entry (or every entry for "all"). Unknown
// -arch values report the valid choices.
func resolveCatalogs(sf *sharedFlags) ([]*uarch.Catalog, error) {
	if *sf.intervals < 1 {
		return nil, fmt.Errorf("-intervals must be >= 1 (got %d)", *sf.intervals)
	}
	if *sf.catalog != "" {
		spec, err := uarch.LoadSpecFile(*sf.catalog)
		if err != nil {
			return nil, err
		}
		cat, err := spec.Catalog()
		if err != nil {
			return nil, err
		}
		if err := measure.ValidateModels(cat); err != nil {
			return nil, fmt.Errorf("%s: %w", *sf.catalog, err)
		}
		return []*uarch.Catalog{cat}, nil
	}
	names := uarch.Names()
	arch := strings.ToLower(*sf.arch)
	if arch == "all" {
		cats := make([]*uarch.Catalog, 0, len(names))
		for _, name := range names {
			spec, _ := uarch.Lookup(name)
			cats = append(cats, spec.MustCatalog())
		}
		return cats, nil
	}
	spec, ok := uarch.Lookup(arch)
	if !ok {
		return nil, fmt.Errorf("unknown -arch %q (valid: all, %s)", *sf.arch, strings.Join(names, ", "))
	}
	return []*uarch.Catalog{spec.MustCatalog()}, nil
}

// muxConfig builds the observation model from the shared flags plus the
// stream-only outlier/Gumbel knobs (zero-valued for the batch mode).
func (sf *sharedFlags) muxConfig(gumbel bool, outliers float64) measure.MuxConfig {
	cfg := measure.DefaultMuxConfig()
	cfg.NoiseFrac = *sf.noise
	cfg.GumbelReject = gumbel
	if outliers > 0 {
		cfg.OutlierProb = outliers
		cfg.OutlierMag = 8
	}
	return cfg
}

// inference resolves the -maxiter/-tol pair (0 = defaults, filled by
// bayesperf.WithInference).
func (sf *sharedFlags) inference() (maxIter int, tol float64) {
	return *sf.maxIter, *sf.tol
}

// kernelName names the inference kernel for the config lines both
// subcommands print.
func kernelName(fast bool) string {
	if fast {
		return "fast"
	}
	return "exact"
}
