// Command bayesvet is BayesPerf's domain-specific static-analysis suite: it
// encodes the pipeline's determinism, purity, and hot-path invariants as
// lint rules and checks them on every code path of every package — the
// static counterpart of the reference goldens, lane-invariance tests, and
// 0-alloc bench gates, which can only catch a violation the moment a test
// happens to execute it.
//
// Usage:
//
//	go run ./cmd/bayesvet ./...
//	go run ./cmd/bayesvet -rules maporder,floateq ./internal/stream
//
// Rules (see internal/lint for the full documentation of each):
//
//	maporder      numeric/output packages must not let map iteration order
//	              reach output (internal/graph, stream, measure, uarch,
//	              timeseries, obs)
//	kernelpurity  inference kernels (internal/graph) must be pure: no wall
//	              clock, no math/rand, no package-level writes, no map
//	              iteration
//	floateq       no ==/!= on floats outside _test.go files and lines
//	              annotated //bayesvet:bitwise
//	hotalloc      functions annotated //bayesperf:hotpath must not allocate
//	nilrecv       types annotated //bayesvet:nilsafe must nil-guard their
//	              exported pointer-receiver methods
//
// Exit status: 0 when the tree is clean, 1 when any rule fired, 2 on usage
// or load/type-check errors.
package main

import (
	"flag"
	"fmt"
	"go/build"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"bayesperf/internal/lint"
)

// scope maps each path-scoped rule to the module-relative package
// directories it applies to; rules absent from the map (the
// annotation-driven hotalloc and nilrecv, plus the everywhere-on floateq)
// run on every package.
var scope = map[string][]string{
	"maporder": {
		"internal/graph", "internal/stream", "internal/measure",
		"internal/uarch", "internal/timeseries", "internal/obs",
	},
	"kernelpurity": {"internal/graph"},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("bayesvet", flag.ContinueOnError)
	fl.SetOutput(stderr)
	rules := fl.String("rules", "", "comma-separated subset of rules to run (default: all)")
	fl.Usage = func() {
		fmt.Fprintf(stderr, "usage: bayesvet [-rules r1,r2] [packages]\n\npatterns are directories, with the go-style /... suffix for recursion\n(testdata directories are skipped); default is ./...\n")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "bayesvet: %v\n", err)
		return 2
	}
	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "bayesvet: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintf(stderr, "bayesvet: no Go packages matched %v\n", patterns)
		return 2
	}

	loaders := make(map[string]*lint.Loader) // by module root
	exit := 0
	for _, dir := range dirs {
		loader, err := loaderFor(loaders, dir)
		if err != nil {
			fmt.Fprintf(stderr, "bayesvet: %v\n", err)
			return 2
		}
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "bayesvet: %v\n", err)
			return 2
		}
		for _, d := range lint.RunAnalyzers(pkg, applicable(analyzers, pkg.Rel)) {
			fmt.Fprintf(stdout, "%s: %s: %s\n", relPos(d), d.Rule, d.Message)
			exit = 1
		}
	}
	return exit
}

// loaderFor returns the (cached) loader for the module containing dir.
func loaderFor(loaders map[string]*lint.Loader, dir string) (*lint.Loader, error) {
	probe, err := lint.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	if cached, ok := loaders[probe.ModuleRoot]; ok {
		return cached, nil
	}
	loaders[probe.ModuleRoot] = probe
	return probe, nil
}

// applicable filters the requested analyzers down to those scoped to the
// package's module-relative directory.
func applicable(analyzers []*lint.Analyzer, rel string) []*lint.Analyzer {
	var out []*lint.Analyzer
	for _, a := range analyzers {
		dirs, scoped := scope[a.Name]
		if !scoped {
			out = append(out, a)
			continue
		}
		for _, d := range dirs {
			if rel == d || strings.HasPrefix(rel, d+"/") {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// expandPatterns resolves go-style package patterns (dir or dir/...) into
// the list of directories containing buildable Go files, skipping testdata
// and hidden/underscore directories.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		clean := filepath.Clean(dir)
		if !seen[clean] {
			seen[clean] = true
			dirs = append(dirs, clean)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "" || pat == "..." {
			base = "."
			recursive = recursive || pat == "..."
		}
		if !recursive {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("no buildable Go files in %s", base)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir holds at least one buildable non-test Go
// file under the current build context.
func hasGoFiles(dir string) bool {
	bp, err := build.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}

// relPos renders a diagnostic position with the filename relative to the
// working directory when possible.
func relPos(d lint.Diagnostic) string {
	pos := d.Pos
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
	}
	return pos.String()
}
