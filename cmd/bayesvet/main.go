// Command bayesvet is BayesPerf's domain-specific static-analysis suite: it
// encodes the pipeline's determinism, purity, and hot-path invariants as
// lint rules and checks them on every code path of every package — the
// static counterpart of the reference goldens, lane-invariance tests, and
// 0-alloc bench gates, which can only catch a violation the moment a test
// happens to execute it.
//
// Usage:
//
//	go run ./cmd/bayesvet ./...
//	go run ./cmd/bayesvet -rules maporder,floateq ./internal/stream
//	go run ./cmd/bayesvet -format github -stats ./...
//
// Rules (see internal/lint for the full documentation of each):
//
//	maporder      numeric/output packages must not let map iteration order
//	              reach output (internal/graph, stream, measure, uarch,
//	              timeseries, obs)
//	kernelpurity  inference kernels (internal/graph) must be pure: no wall
//	              clock, no math/rand, no package-level writes, no map
//	              iteration
//	floateq       no ==/!= on floats outside _test.go files and lines
//	              annotated //bayesvet:bitwise
//	hotalloc      functions annotated //bayesperf:hotpath must not allocate
//	nilrecv       types annotated //bayesvet:nilsafe must nil-guard their
//	              exported pointer-receiver methods
//	locksafe      lock-set dataflow over each function's CFG: no lock leaked
//	              to a return, no double Lock / RLock-Lock mixing, no
//	              Unlock/RUnlock mismatch, no copied locks (concurrency
//	              packages)
//	atomicmix     a variable accessed via sync/atomic must never be accessed
//	              plainly (concurrency packages)
//	wgdiscipline  WaitGroup.Add must precede the go statement it gates; no
//	              Wait while a lock is held (concurrency packages)
//	blockinglock  no blocking channel ops, Wait, or nested Lock while a
//	              mutex is held (concurrency packages)
//
// Output formats (-format): "text" (default) prints one finding per line;
// "json" prints a machine-readable array; "github" prints GitHub Actions
// ::error workflow annotations so CI findings land inline on PRs. -stats
// prints per-rule finding counts and analysis wall time to stderr.
//
// Exit status: 0 when the tree is clean, 1 when any rule fired, 2 on usage
// or load/type-check errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/build"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	"bayesperf/internal/lint"
)

// scope maps each path-scoped rule to the module-relative package
// directories it applies to; rules absent from the map (the
// annotation-driven hotalloc and nilrecv, plus the everywhere-on floateq)
// run on every package.
var scope = map[string][]string{
	"maporder": {
		"internal/graph", "internal/stream", "internal/measure",
		"internal/uarch", "internal/timeseries", "internal/obs",
	},
	"kernelpurity": {"internal/graph"},
	// The concurrency family runs where goroutines, locks, and atomics
	// live today — plus the packages the fleet-scale engine will grow into.
	"locksafe":     concurrencyScope,
	"atomicmix":    concurrencyScope,
	"wgdiscipline": concurrencyScope,
	"blockinglock": concurrencyScope,
}

var concurrencyScope = []string{
	"internal/graph", "internal/stream", "internal/measure",
	"internal/uarch", "internal/timeseries", "internal/obs",
	"pkg/bayesperf", "cmd/bayesperf",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("bayesvet", flag.ContinueOnError)
	fl.SetOutput(stderr)
	rules := fl.String("rules", "", "comma-separated subset of rules to run (default: all)")
	format := fl.String("format", "text", "output format: text, json, or github")
	stats := fl.Bool("stats", false, "print per-rule finding counts and wall time to stderr")
	fl.Usage = func() {
		fmt.Fprintf(stderr, "usage: bayesvet [-rules r1,r2] [-format text|json|github] [-stats] [packages]\n\npatterns are directories, with the go-style /... suffix for recursion\n(testdata directories are skipped); default is ./...\n")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(stderr, "bayesvet: unknown -format %q (have text, json, github)\n", *format)
		return 2
	}
	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "bayesvet: %v\n", err)
		return 2
	}
	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "bayesvet: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintf(stderr, "bayesvet: no Go packages matched %v\n", patterns)
		return 2
	}

	loaders := make(map[string]*lint.Loader) // by module root
	var (
		diags    []lint.Diagnostic
		loadTime time.Duration
		ruleTime = make(map[string]time.Duration)
		ruleHits = make(map[string]int)
	)
	for _, dir := range dirs {
		loadStart := time.Now()
		loader, err := loaderFor(loaders, dir)
		if err != nil {
			fmt.Fprintf(stderr, "bayesvet: %v\n", err)
			return 2
		}
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "bayesvet: %v\n", err)
			return 2
		}
		loadTime += time.Since(loadStart)
		for _, a := range applicable(analyzers, pkg.Rel) {
			start := time.Now()
			found := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
			ruleTime[a.Name] += time.Since(start)
			ruleHits[a.Name] += len(found)
			diags = append(diags, found...)
		}
	}
	lint.SortDiagnostics(diags)

	if err := emit(stdout, *format, diags); err != nil {
		fmt.Fprintf(stderr, "bayesvet: %v\n", err)
		return 2
	}
	if *stats {
		emitStats(stderr, analyzers, len(dirs), loadTime, ruleTime, ruleHits)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// emit renders the sorted findings in the selected format. Text is the
// historical line format; json is a machine-readable array (emitted even
// when empty, so consumers can rely on valid JSON); github is the GitHub
// Actions workflow-annotation format, which CI surfaces inline on PRs.
func emit(stdout io.Writer, format string, diags []lint.Diagnostic) error {
	switch format {
	case "text":
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s: %s\n", relPos(d), d.Rule, d.Message)
		}
	case "json":
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				File:    relFile(d.Pos.Filename),
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	case "github":
		for _, d := range diags {
			// %s inside the message is free-form; GitHub only parses the
			// key=value properties before the double colon.
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=bayesvet %s::%s: %s\n",
				relFile(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Rule, d.Message)
		}
	}
	return nil
}

// emitStats prints the per-rule cost table CI uses to watch the suite's
// cost trend as the tree grows.
func emitStats(stderr io.Writer, analyzers []*lint.Analyzer, pkgs int, loadTime time.Duration, ruleTime map[string]time.Duration, ruleHits map[string]int) {
	var analysis time.Duration
	for _, d := range ruleTime {
		analysis += d
	}
	fmt.Fprintf(stderr, "bayesvet: %d packages, load %s, analysis %s\n",
		pkgs, loadTime.Round(time.Millisecond), analysis.Round(time.Millisecond))
	tw := tabwriter.NewWriter(stderr, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "\trule\tfindings\ttime\n")
	for _, a := range analyzers {
		fmt.Fprintf(tw, "\t%s\t%d\t%s\n", a.Name, ruleHits[a.Name], ruleTime[a.Name].Round(time.Millisecond))
	}
	tw.Flush()
}

// loaderFor returns the (cached) loader for the module containing dir.
func loaderFor(loaders map[string]*lint.Loader, dir string) (*lint.Loader, error) {
	probe, err := lint.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	if cached, ok := loaders[probe.ModuleRoot]; ok {
		return cached, nil
	}
	loaders[probe.ModuleRoot] = probe
	return probe, nil
}

// applicable filters the requested analyzers down to those scoped to the
// package's module-relative directory.
func applicable(analyzers []*lint.Analyzer, rel string) []*lint.Analyzer {
	var out []*lint.Analyzer
	for _, a := range analyzers {
		dirs, scoped := scope[a.Name]
		if !scoped {
			out = append(out, a)
			continue
		}
		for _, d := range dirs {
			if rel == d || strings.HasPrefix(rel, d+"/") {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// expandPatterns resolves go-style package patterns (dir or dir/...) into
// the list of directories containing buildable Go files, skipping testdata
// and hidden/underscore directories.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		clean := filepath.Clean(dir)
		if !seen[clean] {
			seen[clean] = true
			dirs = append(dirs, clean)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "" || pat == "..." {
			base = "."
			recursive = recursive || pat == "..."
		}
		if !recursive {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("no buildable Go files in %s", base)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir holds at least one buildable non-test Go
// file under the current build context.
func hasGoFiles(dir string) bool {
	bp, err := build.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}

// relFile renders a filename relative to the working directory when
// possible.
func relFile(name string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return name
}

// relPos renders a diagnostic position with the filename relative to the
// working directory when possible.
func relPos(d lint.Diagnostic) string {
	pos := d.Pos
	pos.Filename = relFile(pos.Filename)
	return pos.String()
}
