package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const seedGoMod = "module seed\n\ngo 1.22\n"

// writeTree materializes a throwaway module for the driver to analyze.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runBayesvet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestSeededViolations seeds one violation of each rule into a scratch
// module and asserts the driver exits 1 naming that rule.
func TestSeededViolations(t *testing.T) {
	cases := []struct {
		rule, path, src string
	}{
		{"maporder", "internal/stream/bad.go", `package stream

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`},
		{"kernelpurity", "internal/graph/bad.go", `package graph

import "time"

func stamp() time.Time { return time.Now() }
`},
		{"floateq", "pkg/bad.go", `package pkg

func eq(a, b float64) bool { return a == b }
`},
		{"hotalloc", "pkg/bad.go", `package pkg

//bayesperf:hotpath
func hot(n int) []int { return make([]int, n) }
`},
		{"nilrecv", "pkg/bad.go", `package pkg

//bayesvet:nilsafe
type C struct{ n int }

func (c *C) Add() { c.n++ }
`},
		{"locksafe", "internal/stream/bad.go", `package stream

import "sync"

func leak(mu *sync.Mutex, err error) error {
	mu.Lock()
	if err != nil {
		return err
	}
	mu.Unlock()
	return nil
}
`},
		{"atomicmix", "internal/obs/bad.go", `package obs

import "sync/atomic"

var hits uint64

func inc()         { atomic.AddUint64(&hits, 1) }
func peek() uint64 { return hits }
`},
		{"wgdiscipline", "internal/stream/bad.go", `package stream

import "sync"

func spawn(wg *sync.WaitGroup, work func()) {
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
`},
		{"blockinglock", "internal/stream/bad.go", `package stream

import "sync"

func drain(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	return <-ch
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			dir := writeTree(t, map[string]string{"go.mod": seedGoMod, tc.path: tc.src})
			code, out, errOut := runBayesvet(t, filepath.Join(dir, "..."))
			if code != 1 {
				t.Fatalf("exit %d, want 1 (stdout %q, stderr %q)", code, out, errOut)
			}
			if !strings.Contains(out, tc.rule+": ") {
				t.Fatalf("stdout %q does not name rule %s", out, tc.rule)
			}
		})
	}
}

// TestScopedRulesIgnoreOutOfScopePackages: the same constructs that fire
// inside internal/stream and internal/graph are legal in a package outside
// the scoped directories.
func TestScopedRulesIgnoreOutOfScopePackages(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": seedGoMod,
		"pkg/free.go": `package pkg

import "time"

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func stamp() time.Time { return time.Now() }
`,
	})
	code, out, errOut := runBayesvet(t, filepath.Join(dir, "..."))
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stdout %q, stderr %q)", code, out, errOut)
	}
}

func TestRulesFlag(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": seedGoMod,
		"internal/stream/bad.go": `package stream

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
	})
	if code, out, errOut := runBayesvet(t, "-rules", "floateq", filepath.Join(dir, "...")); code != 0 {
		t.Fatalf("-rules floateq: exit %d, want 0 (stdout %q, stderr %q)", code, out, errOut)
	}
	if code, _, errOut := runBayesvet(t, "-rules", "bogus", filepath.Join(dir, "...")); code != 2 {
		t.Fatalf("-rules bogus: exit %d, want 2 (stderr %q)", code, errOut)
	}
}

const formatFixture = `package stream

import "sync"

func leak(mu *sync.Mutex, err error) error {
	mu.Lock()
	if err != nil {
		return err
	}
	mu.Unlock()
	return nil
}
`

func TestFormatJSON(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":                 seedGoMod,
		"internal/stream/bad.go": formatFixture,
	})
	code, out, errOut := runBayesvet(t, "-format", "json", filepath.Join(dir, "..."))
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errOut)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(findings) != 1 {
		t.Fatalf("%d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Rule != "locksafe" || f.Line != 8 || !strings.HasSuffix(f.File, "bad.go") || f.Message == "" {
		t.Fatalf("unexpected finding %+v", f)
	}
}

func TestFormatJSONEmitsEmptyArrayWhenClean(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":      seedGoMod,
		"pkg/fine.go": "package pkg\n\nfunc fine() {}\n",
	})
	code, out, _ := runBayesvet(t, "-format", "json", filepath.Join(dir, "..."))
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Fatalf("clean json output %q, want []", out)
	}
}

func TestFormatGitHub(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":                 seedGoMod,
		"internal/stream/bad.go": formatFixture,
	})
	code, out, _ := runBayesvet(t, "-format", "github", filepath.Join(dir, "..."))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	line := strings.TrimSpace(out)
	if !strings.HasPrefix(line, "::error file=") {
		t.Fatalf("not a workflow annotation: %q", line)
	}
	for _, want := range []string{"line=8", "locksafe", "bad.go"} {
		if !strings.Contains(line, want) {
			t.Fatalf("annotation %q missing %q", line, want)
		}
	}
}

func TestFormatUnknownIsUsageError(t *testing.T) {
	if code, _, _ := runBayesvet(t, "-format", "xml", "."); code != 2 {
		t.Fatalf("-format xml: exit %d, want 2", code)
	}
}

func TestStatsFlag(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":                 seedGoMod,
		"internal/stream/bad.go": formatFixture,
	})
	code, out, errOut := runBayesvet(t, "-stats", filepath.Join(dir, "..."))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "locksafe: ") {
		t.Fatalf("stdout lost the finding: %q", out)
	}
	// Stats go to stderr so stdout stays parseable.
	for _, want := range []string{"packages, load", "rule", "locksafe", "wgdiscipline"} {
		if !strings.Contains(errOut, want) {
			t.Fatalf("stats output %q missing %q", errOut, want)
		}
	}
}

// TestRepoTreeIsClean runs the full suite over this repository — the same
// invocation CI gates on.
func TestRepoTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole tree")
	}
	code, out, errOut := runBayesvet(t, "../../...")
	if code != 0 {
		t.Fatalf("bayesvet over the repo tree: exit %d\nstdout:\n%sstderr:\n%s", code, out, errOut)
	}
}
