package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: bayesperf/internal/graph
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInferBatch/B=64/exact-4         	     200	    290101 ns/op	      4533 ns/window	     867 B/op	       0 allocs/op
BenchmarkInferBatch/B=64/fast-4          	     200	     93080 ns/op	      1454 ns/window	     967 B/op	       0 allocs/op
BenchmarkInfer-4   	   10000	     12696 ns/op	    1941 B/op	       9 allocs/op
PASS
ok  	bayesperf/internal/graph	0.098s
`

func TestParseBench(t *testing.T) {
	benches, cpu, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	// Sub-benchmark keeps its path, loses Benchmark prefix and -GOMAXPROCS;
	// the ns/window metric wins over ns/op when present.
	e, ok := benches["InferBatch/B=64/fast"]
	if !ok {
		t.Fatalf("fast entry missing; parsed %v", benches)
	}
	if e.NsPerWindow != 1454 || e.AllocsPerOp != 0 {
		t.Errorf("fast entry = %+v, want ns/window 1454 allocs 0", e)
	}
	// A benchmark without the custom metric falls back to ns/op.
	if e := benches["Infer"]; e.NsPerWindow != 12696 || e.AllocsPerOp != 9 {
		t.Errorf("Infer entry = %+v, want ns/op 12696 allocs 9", e)
	}
	if len(benches) != 3 {
		t.Errorf("parsed %d entries, want 3: %v", len(benches), benches)
	}
}

func TestCheckAgainst(t *testing.T) {
	base := map[string]entry{
		"a": {NsPerWindow: 1000, AllocsPerOp: 0},
		"b": {NsPerWindow: 2000, AllocsPerOp: 9},
		"c": {NsPerWindow: 500, AllocsPerOp: 0},
	}
	cur := map[string]entry{
		"a": {NsPerWindow: 1400, AllocsPerOp: 1},  // within 1.5× and alloc slack
		"b": {NsPerWindow: 3100, AllocsPerOp: 40}, // both gates blown
		"d": {NsPerWindow: 100},                   // new, not in baseline
	}
	regs, missing, fresh := checkAgainst(base, cur, 1.5, 2, 2)
	if len(regs) != 2 || regs[0].name != "b" || regs[1].name != "b" {
		t.Fatalf("regressions = %+v, want ns/window and allocs/op for b", regs)
	}
	if len(missing) != 1 || missing[0] != "c" {
		t.Errorf("missing = %v, want [c]", missing)
	}
	if len(fresh) != 1 || fresh[0] != "d" {
		t.Errorf("fresh = %v, want [d]", fresh)
	}
	// A clean run reports nothing.
	regs, missing, _ = checkAgainst(base, map[string]entry{
		"a": {NsPerWindow: 900}, "b": {NsPerWindow: 2000, AllocsPerOp: 9}, "c": {NsPerWindow: 700},
	}, 1.5, 2, 2)
	if len(regs) != 0 || len(missing) != 0 {
		t.Errorf("clean run flagged: regs %+v missing %v", regs, missing)
	}
}

func TestParseBenchKeepsMin(t *testing.T) {
	out := `goos: linux
BenchmarkX-8   100   5000 ns/op   12 allocs/op
BenchmarkX-8   100   4000 ns/op   12 allocs/op
BenchmarkX-8   100   6000 ns/op   12 allocs/op
`
	benches, _, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got := benches["X"]; got.NsPerWindow != 4000 || got.AllocsPerOp != 12 {
		t.Errorf("X = %+v, want min ns 4000 allocs 12", got)
	}
}

func TestCheckObsOverhead(t *testing.T) {
	cur := map[string]entry{
		"s/batch=8/exact":     {NsPerWindow: 10000},
		"s/batch=8/exact/obs": {NsPerWindow: 10300}, // 3% — within 5%
		"s/batch=8/fast":      {NsPerWindow: 8000},
		"s/batch=8/fast/obs":  {NsPerWindow: 8900}, // 11.25% — over
		"s/batch=1/obs":       {NsPerWindow: 100},  // twin absent: skipped
	}
	regs := checkObsOverhead(cur, 1.05)
	if len(regs) != 1 || regs[0].name != "s/batch=8/fast/obs" {
		t.Fatalf("regs = %+v, want only the fast/obs pair", regs)
	}
	if regs[0].gate != 1.05*8000 {
		t.Errorf("gate = %v, want %v", regs[0].gate, 1.05*8000)
	}
	if regs = checkObsOverhead(cur, 1.2); len(regs) != 0 {
		t.Errorf("relaxed ratio still flagged: %+v", regs)
	}
}
