// Command benchjson turns `go test -bench` output into a committed JSON
// perf baseline and gates later runs against it — the enforcement half of
// the repo's committed perf trajectory (BENCH_graph.json, BENCH_stream.json,
// BENCH_obs.json).
//
// Baseline mode (refreshing the committed trajectory is an explicit,
// reviewed act — rerun these and commit the diff). Repeated benchmarks
// (-count, or several concatenated runs) keep their minimum, so noisy
// machines converge on the honest number:
//
//	go test -run='^$' -bench=InferBatch -benchtime=200x ./internal/graph |
//	    go run ./cmd/benchjson -out BENCH_graph.json
//	{ go test -run='^$' -bench=StreamBatched -benchtime=20x -count=3 ./internal/stream
//	  for i in 1 2 3 4 5 6; do
//	    go test -run='^$' -bench='StreamBatched/batch=8/' -benchtime=20x ./internal/stream
//	  done; } | go run ./cmd/benchjson -out BENCH_stream.json
//	go test -run='^$' -bench=Obs -benchtime=10000000x -count=3 ./internal/obs |
//	    go run ./cmd/benchjson -out BENCH_obs.json
//
// (The stream refresh appends interleaved runs of the batch=8 pairs so the
// '/obs' instrumented variants and their metrics-off twins are measured
// under the same machine conditions — see the obs gate below.)
//
// Check mode (CI): parse a fresh run, optionally emit it as a JSON
// artifact, and fail loudly when any benchmark's per-window time regresses
// beyond -max-ratio of the committed baseline or its allocations grow past
// -max-alloc-ratio (plus a small absolute slack for lazily-allocated
// scratch amortized over short -benchtime runs):
//
//	go test -run='^$' -bench=InferBatch -benchtime=200x ./internal/graph |
//	    go run ./cmd/benchjson -check BENCH_graph.json -emit bench_graph_ci.json
//
// Obs-overhead mode (CI's metrics overhead gate): with -obs-max-ratio and
// no -out/-check, every '<name>/obs' benchmark is compared against its
// '<name>' twin from the SAME input and fails past the ratio — the bound
// on what live instrumentation may cost the pipeline:
//
//	for i in 1 2 3 4 5 6; do
//	    go test -run='^$' -bench='StreamBatched/batch=8/' -benchtime=20x ./internal/stream
//	done | go run ./cmd/benchjson -obs-max-ratio 1.05
//
// The recorded metric is ns/window when the benchmark reports one
// (b.ReportMetric), ns/op otherwise; allocs/op always rides along.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark's recorded trajectory point.
type entry struct {
	NsPerWindow float64 `json:"ns_per_window"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// baseline is the committed JSON document.
type baseline struct {
	Note       string           `json:"note"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

const refreshNote = "Committed perf baseline (ns/window, allocs/op). Machines differ; CI " +
	"gates on the ratio to this file, not the absolute numbers. Refreshing is an " +
	"explicit, reviewed act: rerun the matching `go test -bench` command piped " +
	"through `go run ./cmd/benchjson -out <this file>` and commit the diff."

// parseBench extracts benchmark entries and the reported cpu line from
// `go test -bench` output. Benchmark names lose the "Benchmark" prefix and
// the trailing -GOMAXPROCS suffix so they are stable across machines. When
// the run repeats a benchmark (`go test -count=N`) the MINIMUM time is
// kept — the best observation is the one least polluted by machine load,
// which is what a shared CI runner needs for tight ratio gates.
func parseBench(r io.Reader) (map[string]entry, string, error) {
	benches := make(map[string]entry)
	var cpu string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		metrics := make(map[string]float64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, "", fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			metrics[fields[i+1]] = v
		}
		ns, ok := metrics["ns/window"]
		if !ok {
			if ns, ok = metrics["ns/op"]; !ok {
				continue
			}
		}
		e := entry{NsPerWindow: ns, AllocsPerOp: metrics["allocs/op"]}
		if prev, seen := benches[name]; seen {
			if prev.NsPerWindow < e.NsPerWindow {
				e.NsPerWindow = prev.NsPerWindow
			}
			if prev.AllocsPerOp < e.AllocsPerOp {
				e.AllocsPerOp = prev.AllocsPerOp
			}
		}
		benches[name] = e
	}
	return benches, cpu, sc.Err()
}

// regression describes one failed gate.
type regression struct {
	name, what string
	have, want float64
	gate       float64
}

// checkAgainst compares a fresh run to the committed baseline. Every
// baseline benchmark must be present and within the ratio gates; fresh
// benchmarks absent from the baseline are surfaced (the trajectory file
// needs a reviewed refresh) but do not fail the run. allocSlack absorbs
// lazily-allocated scratch amortized over short -benchtime runs.
func checkAgainst(base, cur map[string]entry, maxRatio, maxAllocRatio, allocSlack float64) (regs []regression, missing, fresh []string) {
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		if c.NsPerWindow > maxRatio*b.NsPerWindow {
			regs = append(regs, regression{name, "ns/window", c.NsPerWindow, b.NsPerWindow, maxRatio * b.NsPerWindow})
		}
		if c.AllocsPerOp > maxAllocRatio*b.AllocsPerOp+allocSlack {
			regs = append(regs, regression{name, "allocs/op", c.AllocsPerOp, b.AllocsPerOp, maxAllocRatio*b.AllocsPerOp + allocSlack})
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].name < regs[j].name })
	sort.Strings(missing)
	sort.Strings(fresh)
	return regs, missing, fresh
}

// checkObsOverhead pairs each "<name>/obs" benchmark with its metrics-off
// twin "<name>" from the SAME run and fails when instrumentation costs more
// than obsMaxRatio of the uninstrumented time. Comparing within one run
// (not against the committed baseline) keeps the gate machine-independent:
// both sides saw the same CPU, load, and scaling.
func checkObsOverhead(cur map[string]entry, obsMaxRatio float64) (regs []regression) {
	for name, c := range cur {
		base, ok := strings.CutSuffix(name, "/obs")
		if !ok {
			continue
		}
		b, ok := cur[base]
		if !ok {
			continue
		}
		if c.NsPerWindow > obsMaxRatio*b.NsPerWindow {
			regs = append(regs, regression{name, "obs overhead ns/window", c.NsPerWindow, b.NsPerWindow, obsMaxRatio * b.NsPerWindow})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].name < regs[j].name })
	return regs
}

func writeJSON(path string, doc baseline) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func main() {
	out := flag.String("out", "", "write the parsed run as a new committed baseline to this file")
	check := flag.String("check", "", "compare the parsed run against this committed baseline and fail on regression")
	emit := flag.String("emit", "", "with -check: also write the parsed run to this file (CI artifact)")
	maxRatio := flag.Float64("max-ratio", 1.5, "fail when ns/window exceeds this multiple of the baseline")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 2, "fail when allocs/op exceeds this multiple of the baseline (plus -alloc-slack)")
	allocSlack := flag.Float64("alloc-slack", 2, "absolute allocs/op headroom for scratch amortized over short -benchtime runs")
	obsMaxRatio := flag.Float64("obs-max-ratio", 0, "fail when a '<name>/obs' benchmark exceeds this multiple of '<name>' in the same run (0 = skip). Works with -check or standalone; standalone is the CI metrics-overhead gate, run on an isolated obs/non-obs pair so the two sides share machine conditions")
	flag.Parse()
	obsOnly := *obsMaxRatio > 0 && *out == "" && *check == ""
	if !obsOnly && (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -out or -check is required (or -obs-max-ratio alone)")
		os.Exit(2)
	}

	cur, cpu, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin (pipe `go test -bench` output)")
		os.Exit(2)
	}
	doc := baseline{Note: refreshNote, CPU: cpu, Benchmarks: cur}

	if obsOnly {
		regs := checkObsOverhead(cur, *obsMaxRatio)
		pairs := 0
		for name := range cur {
			if strings.HasSuffix(name, "/obs") {
				if _, ok := cur[strings.TrimSuffix(name, "/obs")]; ok {
					pairs++
				}
			}
		}
		if pairs == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: no '<name>/obs' + '<name>' pairs on stdin for the overhead gate")
			os.Exit(2)
		}
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: %s %s at %.4g (metrics-off twin %.4g, gate %.4g)\n",
				r.name, r.what, r.have, r.want, r.gate)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: metrics overhead gate FAILED (max ratio %.3g)\n", *obsMaxRatio)
			os.Exit(1)
		}
		fmt.Printf("benchjson: %d obs pairs within the %.3g× metrics overhead gate\n", pairs, *obsMaxRatio)
		return
	}

	if *out != "" {
		if err := writeJSON(*out, doc); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(cur), *out)
		return
	}

	raw, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *check, err)
		os.Exit(2)
	}
	if *emit != "" {
		if err := writeJSON(*emit, doc); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
	}

	regs, missing, freshNames := checkAgainst(base.Benchmarks, cur, *maxRatio, *maxAllocRatio, *allocSlack)
	if *obsMaxRatio > 0 {
		regs = append(regs, checkObsOverhead(cur, *obsMaxRatio)...)
	}
	for _, name := range freshNames {
		fmt.Printf("benchjson: note: %s is not in %s (refresh the baseline to start tracking it)\n", name, *check)
	}
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: baseline benchmark %s missing from this run — if it was renamed or removed on purpose, refresh %s\n", name, *check)
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: %s %s regressed to %.4g (reference %.4g, gate %.4g)\n",
			r.name, r.what, r.have, r.want, r.gate)
	}
	if len(regs) > 0 || len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: perf trajectory check FAILED against %s.\n"+
			"If the regression is intentional and reviewed, refresh the baseline:\n"+
			"  <the matching go test -bench command> | go run ./cmd/benchjson -out %s\n", *check, *check)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmarks within the committed trajectory (%s)\n", len(base.Benchmarks), *check)
}
