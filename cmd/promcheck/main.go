// Command promcheck validates Prometheus text-exposition output (format
// 0.0.4) from stdin or a file — the CI back-stop behind `bayesperf
// -metrics`. It tolerates a non-metrics preamble (the CLI prints its
// summary lines before the `-metrics -` snapshot) by skipping everything
// before the first `# HELP` line, then checks the rest strictly:
//
//   - every sample line parses (name, optional labels, finite-or-special
//     float value) and its metric family was declared with # TYPE first;
//   - histogram families expose _bucket/_sum/_count series, each bucket
//     ladder is cumulative (monotone, le-sorted, terminated by +Inf) and
//     agrees with its _count;
//   - -require name1,name2,... all appear with at least one sample.
//
// Exit status: 0 valid, 1 validation/requirement failure, 2 usage error.
//
// Usage:
//
//	bayesperf stream -q -metrics - | promcheck -require bayesperf_stream_windows_total
//	promcheck -require a,b,c snapshot.prom
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// sample is one parsed exposition line: metric name, sorted flat label
// string, and value.
type sample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// checker accumulates the parsed exposition and the errors found.
type checker struct {
	types   map[string]string // family → counter|gauge|histogram|untyped...
	helps   map[string]bool
	samples []sample
	errs    []string
}

func (c *checker) errorf(line int, format string, args ...any) {
	c.errs = append(c.errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

// family maps a sample name to its declared metric family: histogram
// samples report under <family>_bucket/_sum/_count.
func (c *checker) family(name string) (string, bool) {
	if _, ok := c.types[name]; ok {
		return name, true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if c.types[base] == "histogram" {
				return base, true
			}
		}
	}
	return "", false
}

// parseLabels parses `key="value",...` (the braces already stripped),
// handling the \\, \", \n escapes of the exposition format.
func parseLabels(s string, lineNo int, c *checker) map[string]string {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			c.errorf(lineNo, "malformed label pair %q", s)
			return labels
		}
		key := strings.TrimSpace(s[:eq])
		if !labelRe.MatchString(key) {
			c.errorf(lineNo, "invalid label name %q", key)
		}
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			c.errorf(lineNo, "label %s: value must be quoted", key)
			return labels
		}
		// Scan the quoted value, honoring backslash escapes.
		var val strings.Builder
		i := 1
		closed := false
		for i < len(rest) {
			ch := rest[i]
			if ch == '\\' {
				if i+1 >= len(rest) {
					c.errorf(lineNo, "label %s: dangling escape", key)
					return labels
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					c.errorf(lineNo, "label %s: unknown escape \\%c", key, rest[i+1])
				}
				i += 2
				continue
			}
			if ch == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(ch)
			i++
		}
		if !closed {
			c.errorf(lineNo, "label %s: unterminated value", key)
			return labels
		}
		labels[key] = val.String()
		s = rest[i:]
		if len(s) > 0 {
			if s[0] != ',' {
				c.errorf(lineNo, "expected ',' between labels, got %q", s)
				return labels
			}
			s = s[1:]
		}
	}
	return labels
}

// parse consumes the exposition text, skipping everything before the first
// `# HELP` line (CLI summary preamble).
func (c *checker) parse(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	started := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if !started {
			if strings.HasPrefix(line, "# HELP ") {
				started = true
			} else {
				continue
			}
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !nameRe.MatchString(name) {
				c.errorf(lineNo, "HELP for invalid metric name %q", name)
			}
			if c.helps[name] {
				c.errorf(lineNo, "duplicate HELP for %s", name)
			}
			c.helps[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				c.errorf(lineNo, "TYPE line missing type: %q", line)
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				c.errorf(lineNo, "unknown metric type %q for %s", typ, name)
			}
			if _, dup := c.types[name]; dup {
				c.errorf(lineNo, "duplicate TYPE for %s", name)
			}
			c.types[name] = typ
		case strings.HasPrefix(line, "#"):
			// Free-form comment: legal, ignored.
		case strings.TrimSpace(line) == "":
			// Blank lines are legal separators.
		default:
			c.parseSample(line, lineNo)
		}
	}
	return sc.Err()
}

// parseSample validates one `name[{labels}] value` line.
func (c *checker) parseSample(line string, lineNo int) {
	rest := line
	var labels map[string]string

	brace := strings.IndexByte(rest, '{')
	var name string
	if brace >= 0 {
		name = rest[:brace]
		close := strings.LastIndexByte(rest, '}')
		if close < brace {
			c.errorf(lineNo, "unbalanced braces: %q", line)
			return
		}
		labels = parseLabels(rest[brace+1:close], lineNo, c)
		rest = strings.TrimSpace(rest[close+1:])
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			c.errorf(lineNo, "sample missing value: %q", line)
			return
		}
		rest = strings.TrimSpace(rest)
	}
	if !nameRe.MatchString(name) {
		c.errorf(lineNo, "invalid metric name %q", name)
		return
	}
	// Value (a trailing timestamp is legal in 0.0.4; the first field is
	// the value either way).
	valStr, _, _ := strings.Cut(rest, " ")
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		c.errorf(lineNo, "%s: bad sample value %q", name, valStr)
		return
	}
	if _, ok := c.family(name); !ok {
		c.errorf(lineNo, "sample %s has no preceding # TYPE", name)
	}
	c.samples = append(c.samples, sample{name: name, labels: labels, value: val, line: lineNo})
}

// labelKey flattens a label set minus `le` into a grouping key.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// checkHistograms verifies every histogram family's bucket ladders.
func (c *checker) checkHistograms() {
	type ladder struct {
		les    []float64
		counts []float64
		line   int
	}
	buckets := map[string]map[string]*ladder{} // family → series → ladder
	counts := map[string]map[string]float64{}  // family → series → _count

	for _, s := range c.samples {
		base, okB := strings.CutSuffix(s.name, "_bucket")
		if okB && c.types[base] == "histogram" {
			le, ok := s.labels["le"]
			if !ok {
				c.errorf(s.line, "%s: bucket without le label", s.name)
				continue
			}
			var leV float64
			if le == "+Inf" {
				leV = infLE
			} else {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					c.errorf(s.line, "%s: bad le %q", s.name, le)
					continue
				}
				leV = v
			}
			if buckets[base] == nil {
				buckets[base] = map[string]*ladder{}
			}
			key := labelKey(s.labels)
			if buckets[base][key] == nil {
				buckets[base][key] = &ladder{line: s.line}
			}
			l := buckets[base][key]
			l.les = append(l.les, leV)
			l.counts = append(l.counts, s.value)
			continue
		}
		if base, ok := strings.CutSuffix(s.name, "_count"); ok && c.types[base] == "histogram" {
			if counts[base] == nil {
				counts[base] = map[string]float64{}
			}
			counts[base][labelKey(s.labels)] = s.value
		}
	}

	for fam, series := range buckets {
		for key, l := range series {
			where := fam
			if key != "" {
				where = fam + "{" + key + "}"
			}
			for i := 1; i < len(l.les); i++ {
				if l.les[i] <= l.les[i-1] {
					c.errorf(l.line, "%s: bucket le values not increasing", where)
					break
				}
				if l.counts[i] < l.counts[i-1] {
					c.errorf(l.line, "%s: bucket counts not cumulative", where)
					break
				}
			}
			if len(l.les) == 0 || l.les[len(l.les)-1] != infLE { //bayesvet:bitwise le="+Inf" parses to exactly math.Inf(1)
				c.errorf(l.line, "%s: bucket ladder missing le=\"+Inf\"", where)
				continue
			}
			cnt, ok := counts[fam][key]
			if !ok {
				c.errorf(l.line, "%s: histogram missing _count series", where)
			} else if cnt != l.counts[len(l.counts)-1] { //bayesvet:bitwise _count must equal the +Inf bucket exactly per the exposition format
				c.errorf(l.line, "%s: _count %v != +Inf bucket %v", where, cnt, l.counts[len(l.counts)-1])
			}
		}
	}
}

// infLE is the sort sentinel for le="+Inf".
var infLE = func() float64 { v, _ := strconv.ParseFloat("+Inf", 64); return v }()

// checkRequired verifies each required family has at least one sample.
func (c *checker) checkRequired(required []string) {
	seen := map[string]bool{}
	for _, s := range c.samples {
		if fam, ok := c.family(s.name); ok {
			seen[fam] = true
		}
	}
	for _, name := range required {
		if !seen[name] {
			c.errs = append(c.errs, fmt.Sprintf("required metric %s: no samples found", name))
		}
	}
}

// run executes the full check; split from main for testing.
func run(r io.Reader, required []string) (errs []string, err error) {
	c := &checker{types: map[string]string{}, helps: map[string]bool{}}
	if err := c.parse(r); err != nil {
		return nil, err
	}
	if len(c.samples) == 0 {
		c.errs = append(c.errs, "no metric samples found (is the input Prometheus text?)")
	}
	c.checkHistograms()
	c.checkRequired(required)
	return c.errs, nil
}

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be present with samples")
	flag.Parse()

	in := io.Reader(os.Stdin)
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	default:
		fmt.Fprintln(os.Stderr, "usage: promcheck [-require a,b,c] [file]")
		os.Exit(2)
	}

	var required []string
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name != "" {
			required = append(required, name)
		}
	}

	errs, err := run(in, required)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: read: %v\n", err)
		os.Exit(2)
	}
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "promcheck: %s\n", e)
		}
		os.Exit(1)
	}
	fmt.Println("promcheck: ok")
}
