package main

import (
	"strings"
	"testing"
)

const valid = `=== skylake · streaming ===
window=24 hop=4 ... summary preamble to skip ...
# HELP demo_total A counter.
# TYPE demo_total counter
demo_total{kind="a b\"c\\d\ne"} 3
demo_total 7
# HELP demo_seconds A histogram.
# TYPE demo_seconds histogram
demo_seconds_bucket{le="0.1"} 1
demo_seconds_bucket{le="1"} 3
demo_seconds_bucket{le="+Inf"} 4
demo_seconds_sum 2.5
demo_seconds_count 4
`

func check(t *testing.T, input string, required ...string) []string {
	t.Helper()
	errs, err := run(strings.NewReader(input), required)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return errs
}

func TestValidWithPreamble(t *testing.T) {
	if errs := check(t, valid, "demo_total", "demo_seconds"); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
}

func TestMissingRequired(t *testing.T) {
	errs := check(t, valid, "demo_total", "absent_metric")
	if len(errs) != 1 || !strings.Contains(errs[0], "absent_metric") {
		t.Fatalf("want one missing-metric error, got %v", errs)
	}
}

func TestSampleWithoutType(t *testing.T) {
	errs := check(t, "# HELP x a\nundeclared_total 1\n")
	found := false
	for _, e := range errs {
		if strings.Contains(e, "no preceding # TYPE") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want missing-TYPE error, got %v", errs)
	}
}

func TestNonCumulativeBuckets(t *testing.T) {
	input := `# HELP h x
# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`
	errs := check(t, input)
	found := false
	for _, e := range errs {
		if strings.Contains(e, "not cumulative") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want cumulative-bucket error, got %v", errs)
	}
}

func TestMissingInfBucket(t *testing.T) {
	input := `# HELP h x
# TYPE h histogram
h_bucket{le="1"} 5
h_sum 1
h_count 5
`
	errs := check(t, input)
	found := false
	for _, e := range errs {
		if strings.Contains(e, `+Inf`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("want missing-+Inf error, got %v", errs)
	}
}

func TestCountBucketMismatch(t *testing.T) {
	input := `# HELP h x
# TYPE h histogram
h_bucket{le="+Inf"} 5
h_sum 1
h_count 9
`
	errs := check(t, input)
	found := false
	for _, e := range errs {
		if strings.Contains(e, "_count") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want count-mismatch error, got %v", errs)
	}
}

func TestBadValue(t *testing.T) {
	errs := check(t, "# HELP x a\n# TYPE x counter\nx notanumber\n")
	found := false
	for _, e := range errs {
		if strings.Contains(e, "bad sample value") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want bad-value error, got %v", errs)
	}
}

func TestEmptyInput(t *testing.T) {
	if errs := check(t, "just a summary line, no metrics\n"); len(errs) == 0 {
		t.Fatal("want no-samples error for metric-free input")
	}
}

// Histogram ladders with the same family but different label sets must be
// validated per series, not mixed.
func TestLabelledLadders(t *testing.T) {
	input := `# HELP h x
# TYPE h histogram
h_bucket{stage="a",le="1"} 2
h_bucket{stage="a",le="+Inf"} 3
h_sum{stage="a"} 1.5
h_count{stage="a"} 3
h_bucket{stage="b",le="1"} 0
h_bucket{stage="b",le="+Inf"} 1
h_sum{stage="b"} 9
h_count{stage="b"} 1
`
	if errs := check(t, input, "h"); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
}
